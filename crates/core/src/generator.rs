//! Parameterized dataset generators (paper Sec. III-B, Table III).
//!
//! A dataset generator maps a point of the unit hypercube to a complete
//! [`Workload`] (program + synthesized dataset + offered load). The four
//! generators below implement exactly the Table III parameterizations. The
//! generators never see the target dataset: e.g. the memcached generator
//! assumes *Gaussian* key/value sizes while the `mem-fb` target draws
//! values from a generalized Pareto — reproducing the paper's setup where
//! matching the performance profile does not require matching the dataset
//! family.

use crate::workload::{AppConfig, Workload};
use datamime_apps::{KvConfig, NetSpec, SearchConfig, SiloConfig, SizeDist};
use datamime_loadgen::{ArrivalProcess, WorkloadSpec};

/// One searchable parameter: its range and scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Human-readable name (e.g. `"value_size_mean"`).
    pub name: &'static str,
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
    /// Round the denormalized value to the nearest integer.
    pub integer: bool,
    /// Map the unit interval through a log scale (for ranges spanning
    /// orders of magnitude).
    pub log: bool,
    /// Search resolution: `Some(s)` snaps the unit coordinate to a grid
    /// of `s + 1` evenly spaced values before scaling, `None` keeps the
    /// axis continuous. Bounding the resolution makes re-suggested points
    /// *exactly* equal (so the evaluation memo cache can serve them) at
    /// the cost of sub-cell detail the profiler cannot resolve anyway.
    pub steps: Option<u32>,
}

impl ParamSpec {
    /// A linear-scale parameter.
    pub fn linear(name: &'static str, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "empty range for {name}");
        ParamSpec {
            name,
            lo,
            hi,
            integer: false,
            log: false,
            steps: None,
        }
    }

    /// A log-scale parameter (both bounds must be positive).
    pub fn log(name: &'static str, lo: f64, hi: f64) -> Self {
        assert!(0.0 < lo && lo < hi, "invalid log range for {name}");
        ParamSpec {
            name,
            lo,
            hi,
            integer: false,
            log: true,
            steps: None,
        }
    }

    /// An integer-valued parameter.
    pub fn int(name: &'static str, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "empty range for {name}");
        ParamSpec {
            name,
            lo,
            hi,
            integer: true,
            log: false,
            steps: None,
        }
    }

    /// An integer-valued, log-scale parameter.
    pub fn int_log(name: &'static str, lo: f64, hi: f64) -> Self {
        assert!(0.0 < lo && lo < hi, "invalid log range for {name}");
        ParamSpec {
            name,
            lo,
            hi,
            integer: true,
            log: true,
            steps: None,
        }
    }

    /// The same parameter with its unit axis snapped to `steps + 1` grid
    /// values (see [`ParamSpec::steps`]).
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn with_steps(mut self, steps: u32) -> Self {
        assert!(steps > 0, "resolution needs at least one step");
        self.steps = Some(steps);
        self
    }

    /// Projects a unit coordinate onto this parameter's grid (identity
    /// for continuous axes). Idempotent; every [`ParamSpec::denormalize`]
    /// passes through this first, so two unit points that snap together
    /// are guaranteed to describe the same native value.
    pub fn snap(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match self.steps {
            Some(s) => {
                let s = f64::from(s);
                (u * s).round() / s
            }
            None => u,
        }
    }

    /// Maps a unit-interval coordinate to the parameter's native range.
    pub fn denormalize(&self, u: f64) -> f64 {
        let u = self.snap(u);
        let v = if self.log {
            (self.lo.ln() + u * (self.hi.ln() - self.lo.ln())).exp()
        } else {
            self.lo + u * (self.hi - self.lo)
        };
        if self.integer {
            v.round().clamp(self.lo, self.hi)
        } else {
            v
        }
    }

    /// Maps a native value back to its unit-interval coordinate (the
    /// inverse of [`ParamSpec::denormalize`], up to integer rounding).
    /// Values outside the range clamp to the nearest end.
    pub fn normalize(&self, v: f64) -> f64 {
        let v = v.clamp(self.lo, self.hi);
        let u = if self.log {
            (v.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln())
        } else {
            (v - self.lo) / (self.hi - self.lo)
        };
        u.clamp(0.0, 1.0)
    }
}

/// A dataset generator: the unit-hypercube → [`Workload`] mapping that
/// Datamime's optimizer searches.
pub trait DatasetGenerator {
    /// The generator's name (matches the program it feeds).
    fn name(&self) -> &str;

    /// The searchable parameters, in the order `instantiate` expects.
    fn param_specs(&self) -> &[ParamSpec];

    /// Builds the workload for a unit-hypercube point.
    ///
    /// # Panics
    ///
    /// Panics if `unit.len()` differs from `param_specs().len()`.
    fn instantiate(&self, unit: &[f64]) -> Workload;

    /// Number of parameters (dimension of the search space).
    fn dims(&self) -> usize {
        self.param_specs().len()
    }

    /// Denormalizes a unit point into named parameter values, for reports.
    fn describe(&self, unit: &[f64]) -> Vec<(&'static str, f64)> {
        self.param_specs()
            .iter()
            .zip(unit)
            .map(|(spec, &u)| (spec.name, spec.denormalize(u)))
            .collect()
    }
}

/// Boxed generators are generators too, so trait objects returned by
/// [`generator_for_program`] compose with wrappers like
/// [`QuantizedGenerator`] without re-dispatching by hand.
impl<G: DatasetGenerator + ?Sized> DatasetGenerator for Box<G> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn param_specs(&self) -> &[ParamSpec] {
        (**self).param_specs()
    }

    fn instantiate(&self, unit: &[f64]) -> Workload {
        (**self).instantiate(unit)
    }
}

fn check_dims(specs: &[ParamSpec], unit: &[f64]) {
    assert_eq!(
        unit.len(),
        specs.len(),
        "parameter vector dimension mismatch"
    );
}

/// Table III `memcached` generator: QPS, GET/SET ratio, and Gaussian key /
/// value size distributions (mean and standard deviation of each).
#[derive(Debug, Clone)]
pub struct KvGenerator {
    specs: Vec<ParamSpec>,
}

impl KvGenerator {
    /// Creates the generator with the default parameter ranges.
    pub fn new() -> Self {
        KvGenerator {
            specs: vec![
                ParamSpec::log("qps", 20_000.0, 400_000.0),
                ParamSpec::linear("get_ratio", 0.0, 1.0),
                ParamSpec::linear("key_size_mean", 8.0, 128.0),
                ParamSpec::linear("key_size_std", 0.0, 48.0),
                ParamSpec::log("value_size_mean", 16.0, 8192.0),
                ParamSpec::log("value_size_std", 1.0, 4096.0),
            ],
        }
    }
}

impl Default for KvGenerator {
    fn default() -> Self {
        KvGenerator::new()
    }
}

impl DatasetGenerator for KvGenerator {
    fn name(&self) -> &str {
        "memcached"
    }

    fn param_specs(&self) -> &[ParamSpec] {
        &self.specs
    }

    fn instantiate(&self, unit: &[f64]) -> Workload {
        check_dims(&self.specs, unit);
        let v: Vec<f64> = self
            .specs
            .iter()
            .zip(unit)
            .map(|(s, &u)| s.denormalize(u))
            .collect();
        let cfg = KvConfig {
            n_keys: 120_000,
            key_size: SizeDist::Normal {
                mean: v[2],
                std: v[3],
            },
            value_size: SizeDist::Normal {
                mean: v[4],
                std: v[5],
            },
            get_ratio: v[1],
            popularity_skew: 1.0, // mutilate-style default popularity
            networked: false,
            value_redundancy: None,
            multiget_fraction: 0.0, // mutilate issues single-key requests
            seed: 0x5EED,
        };
        Workload {
            name: "memcached-synth".to_owned(),
            app: AppConfig::Kv(cfg),
            load: WorkloadSpec {
                qps: v[0],
                arrivals: ArrivalProcess::bursty_default(),
            },
        }
    }
}

/// Table III `silo` generator: QPS, number of warehouses, and the ratios
/// of the five TPC-C transaction types.
#[derive(Debug, Clone)]
pub struct SiloGenerator {
    specs: Vec<ParamSpec>,
}

impl SiloGenerator {
    /// Creates the generator with the default parameter ranges.
    pub fn new() -> Self {
        SiloGenerator {
            specs: vec![
                ParamSpec::log("qps", 20_000.0, 1_000_000.0),
                ParamSpec::int_log("warehouses", 1.0, 64.0),
                ParamSpec::linear("ratio_new_order", 0.0, 1.0),
                ParamSpec::linear("ratio_payment", 0.0, 1.0),
                ParamSpec::linear("ratio_delivery", 0.0, 1.0),
                ParamSpec::linear("ratio_order_status", 0.0, 1.0),
                ParamSpec::linear("ratio_stock_level", 0.0, 1.0),
            ],
        }
    }
}

impl Default for SiloGenerator {
    fn default() -> Self {
        SiloGenerator::new()
    }
}

impl DatasetGenerator for SiloGenerator {
    fn name(&self) -> &str {
        "silo"
    }

    fn param_specs(&self) -> &[ParamSpec] {
        &self.specs
    }

    fn instantiate(&self, unit: &[f64]) -> Workload {
        check_dims(&self.specs, unit);
        let v: Vec<f64> = self
            .specs
            .iter()
            .zip(unit)
            .map(|(s, &u)| s.denormalize(u))
            .collect();
        // Keep the mix valid even when the optimizer zeroes every ratio.
        let cfg = SiloConfig {
            n_warehouses: v[1] as u32,
            tx_mix: [
                v[2].max(1e-3),
                v[3].max(1e-3),
                v[4].max(1e-3),
                v[5].max(1e-3),
                v[6].max(1e-3),
                0.0, // the bidding transaction is not a generator knob
            ],
            n_bid_items: 1,
            seed: 0x5EED,
        };
        Workload {
            name: "silo-synth".to_owned(),
            app: AppConfig::Silo(cfg),
            load: WorkloadSpec {
                qps: v[0],
                arrivals: ArrivalProcess::bursty_default(),
            },
        }
    }
}

/// Table III `xapian` generator: QPS, Zipfian skew, term-frequency cap,
/// and average document length.
#[derive(Debug, Clone)]
pub struct XapianGenerator {
    specs: Vec<ParamSpec>,
}

impl XapianGenerator {
    /// Creates the generator with the default parameter ranges.
    pub fn new() -> Self {
        XapianGenerator {
            specs: vec![
                ParamSpec::log("qps", 3_000.0, 150_000.0),
                ParamSpec::linear("zipf_skew", 0.0, 1.4),
                ParamSpec::linear("term_freq_cap", 0.0, 0.9),
                ParamSpec::log("avg_doc_length", 128.0, 16_384.0),
            ],
        }
    }
}

impl Default for XapianGenerator {
    fn default() -> Self {
        XapianGenerator::new()
    }
}

impl DatasetGenerator for XapianGenerator {
    fn name(&self) -> &str {
        "xapian"
    }

    fn param_specs(&self) -> &[ParamSpec] {
        &self.specs
    }

    fn instantiate(&self, unit: &[f64]) -> Workload {
        check_dims(&self.specs, unit);
        let v: Vec<f64> = self
            .specs
            .iter()
            .zip(unit)
            .map(|(s, &u)| s.denormalize(u))
            .collect();
        let cfg = SearchConfig {
            n_docs: 50_000,
            n_terms: 24_000,
            // StackOverflow pages selected within a band of the requested
            // average length (paper Sec. IV): a tight normal around it.
            doc_length: SizeDist::Normal {
                mean: v[3],
                std: v[3] / 3.0,
            },
            query_skew: v[1],
            term_freq_cap: v[2],
            seed: 0x5EED,
        };
        Workload {
            name: "xapian-synth".to_owned(),
            app: AppConfig::Search(cfg),
            load: WorkloadSpec {
                qps: v[0],
                arrivals: ArrivalProcess::bursty_default(),
            },
        }
    }
}

/// Table III `dnn` generator: QPS, counts of 3×3 conv / strided conv /
/// max-pool / FC layers, and the first layer's output channels. The
/// network itself is the dataset.
#[derive(Debug, Clone)]
pub struct DnnGenerator {
    specs: Vec<ParamSpec>,
}

impl DnnGenerator {
    /// Creates the generator with the default parameter ranges.
    pub fn new() -> Self {
        DnnGenerator {
            specs: vec![
                ParamSpec::log("qps", 30.0, 3_000.0),
                ParamSpec::int("n_conv3x3", 1.0, 12.0),
                ParamSpec::int("n_strided_conv", 0.0, 4.0),
                ParamSpec::int("n_maxpool", 0.0, 3.0),
                ParamSpec::int("n_fc", 0.0, 3.0),
                ParamSpec::int_log("first_out_channels", 4.0, 128.0),
            ],
        }
    }
}

impl Default for DnnGenerator {
    fn default() -> Self {
        DnnGenerator::new()
    }
}

impl DatasetGenerator for DnnGenerator {
    fn name(&self) -> &str {
        "dnn"
    }

    fn param_specs(&self) -> &[ParamSpec] {
        &self.specs
    }

    fn instantiate(&self, unit: &[f64]) -> Workload {
        check_dims(&self.specs, unit);
        let v: Vec<f64> = self
            .specs
            .iter()
            .zip(unit)
            .map(|(s, &u)| s.denormalize(u))
            .collect();
        let spec = NetSpec::from_generator_params(
            v[1] as u32,
            v[2] as u32,
            v[3] as u32,
            v[4] as u32,
            v[5] as u32,
        );
        Workload {
            name: "dnn-synth".to_owned(),
            app: AppConfig::Dnn(spec),
            load: WorkloadSpec {
                qps: v[0],
                arrivals: ArrivalProcess::bursty_default(),
            },
        }
    }
}

/// Wraps any generator with a bounded search resolution: every parameter
/// axis is snapped to `steps + 1` evenly spaced unit-grid values before
/// the inner generator sees it.
///
/// In a fully continuous space, two optimizer suggestions are never
/// bit-equal, so the evaluation memo cache can only fire on journal
/// replay. Bounding the resolution makes repeat visits *exact*: as the
/// optimizer converges its proposals cluster into a few grid cells, and
/// every revisit is served from the memo instead of paying another
/// simulator run. The grid lives in unit space and [`ParamSpec::snap`] is
/// idempotent, so the memo key (the denormalized parameter vector) and
/// the instantiated workload agree exactly.
#[derive(Debug, Clone)]
pub struct QuantizedGenerator<G> {
    inner: G,
    specs: Vec<ParamSpec>,
}

impl<G: DatasetGenerator> QuantizedGenerator<G> {
    /// Wraps `inner`, snapping every axis to `steps + 1` grid values.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn new(inner: G, steps: u32) -> Self {
        let specs = inner
            .param_specs()
            .iter()
            .cloned()
            .map(|s| s.with_steps(steps))
            .collect();
        QuantizedGenerator { inner, specs }
    }
}

impl<G: DatasetGenerator> DatasetGenerator for QuantizedGenerator<G> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn param_specs(&self) -> &[ParamSpec] {
        &self.specs
    }

    fn instantiate(&self, unit: &[f64]) -> Workload {
        check_dims(&self.specs, unit);
        let snapped: Vec<f64> = self
            .specs
            .iter()
            .zip(unit)
            .map(|(s, &u)| s.snap(u))
            .collect();
        self.inner.instantiate(&snapped)
    }
}

/// Returns the generator matching a target workload's program, used by the
/// experiments (the Sec. V-C case study deliberately mismatches them).
pub fn generator_for_program(program: &str) -> Option<Box<dyn DatasetGenerator + Send + Sync>> {
    match program {
        "memcached" | "masstree" => Some(Box::new(KvGenerator::new())),
        "silo" => Some(Box::new(SiloGenerator::new())),
        "xapian" => Some(Box::new(XapianGenerator::new())),
        "dnn" | "img-dnn" => Some(Box::new(DnnGenerator::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_spec_denormalization() {
        let lin = ParamSpec::linear("x", 10.0, 20.0);
        assert_eq!(lin.denormalize(0.0), 10.0);
        assert_eq!(lin.denormalize(1.0), 20.0);
        assert_eq!(lin.denormalize(0.5), 15.0);

        let log = ParamSpec::log("y", 1.0, 100.0);
        assert!((log.denormalize(0.5) - 10.0).abs() < 1e-9);

        let int = ParamSpec::int("z", 1.0, 5.0);
        assert_eq!(int.denormalize(0.49), 3.0);
        assert_eq!(int.denormalize(1.2), 5.0); // clamped

        let il = ParamSpec::int_log("w", 1.0, 64.0);
        assert_eq!(il.denormalize(0.5), 8.0);
    }

    #[test]
    fn snapping_is_idempotent_and_bounds_the_axis() {
        let spec = ParamSpec::linear("x", 0.0, 10.0).with_steps(4);
        // Grid of 5 values: 0, 0.25, 0.5, 0.75, 1.
        assert_eq!(spec.snap(0.3), 0.25);
        assert_eq!(spec.snap(0.13), 0.25);
        assert_eq!(spec.snap(0.12), 0.0);
        assert_eq!(spec.snap(spec.snap(0.3)), spec.snap(0.3));
        assert_eq!(spec.denormalize(0.3), 2.5);
        assert_eq!(spec.denormalize(0.26), 2.5);
        // Continuous axes are untouched.
        let cont = ParamSpec::linear("x", 0.0, 10.0);
        assert_eq!(cont.snap(0.3), 0.3);
    }

    #[test]
    fn quantized_generator_collapses_nearby_points() {
        let g = QuantizedGenerator::new(KvGenerator::new(), 8);
        assert_eq!(g.dims(), 6);
        assert_eq!(g.name(), "memcached");
        let a = [0.26, 0.5, 0.5, 0.5, 0.5, 0.5];
        let b = [0.24, 0.5, 0.5, 0.5, 0.5, 0.5];
        assert_eq!(g.describe(&a), g.describe(&b));
        // The instantiated workloads agree with the snapped description.
        let wa = g.instantiate(&a);
        let wb = g.instantiate(&b);
        assert_eq!(format!("{:?}", wa.app), format!("{:?}", wb.app));
        assert_eq!(wa.load.qps.to_bits(), wb.load.qps.to_bits());
        // And disagree once the points land in different grid cells.
        let c = [0.40, 0.5, 0.5, 0.5, 0.5, 0.5];
        assert_ne!(g.instantiate(&c).load.qps.to_bits(), wa.load.qps.to_bits());
    }

    #[test]
    fn table_iii_dimensions() {
        assert_eq!(KvGenerator::new().dims(), 6);
        assert_eq!(SiloGenerator::new().dims(), 7);
        assert_eq!(XapianGenerator::new().dims(), 4);
        assert_eq!(DnnGenerator::new().dims(), 6);
    }

    #[test]
    fn all_generators_instantiate_at_cube_corners_and_center() {
        let gens: Vec<Box<dyn DatasetGenerator>> = vec![
            Box::new(KvGenerator::new()),
            Box::new(SiloGenerator::new()),
            Box::new(XapianGenerator::new()),
            Box::new(DnnGenerator::new()),
        ];
        for g in &gens {
            for u in [0.0, 0.5, 1.0] {
                let unit = vec![u; g.dims()];
                let w = g.instantiate(&unit);
                // Building the app validates the configuration end to end.
                let app = w.app.build();
                assert!(app.footprint_bytes() > 0, "{} at {u}", g.name());
                assert!(w.load.qps > 0.0);
            }
        }
    }

    #[test]
    fn describe_names_every_parameter() {
        let g = KvGenerator::new();
        let d = g.describe(&vec![0.5; g.dims()]);
        assert_eq!(d.len(), 6);
        assert_eq!(d[0].0, "qps");
        assert!(d[0].1 > 20_000.0 && d[0].1 < 400_000.0);
    }

    #[test]
    fn generator_lookup() {
        assert_eq!(
            generator_for_program("memcached").unwrap().name(),
            "memcached"
        );
        assert_eq!(
            generator_for_program("masstree").unwrap().name(),
            "memcached"
        );
        assert_eq!(generator_for_program("img-dnn").unwrap().name(), "dnn");
        assert!(generator_for_program("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dims_panic() {
        KvGenerator::new().instantiate(&[0.5]);
    }

    #[test]
    fn generators_span_wide_footprints() {
        let g = KvGenerator::new();
        let mut lo = g.instantiate(&[0.0; 6]);
        let mut hi = g.instantiate(&[1.0; 6]);
        lo.name.clear();
        hi.name.clear();
        let small = lo.app.build().footprint_bytes();
        let large = hi.app.build().footprint_bytes();
        assert!(large > small * 10, "footprint range {small}..{large}");
    }
}
