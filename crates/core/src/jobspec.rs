//! Serializable job specifications for the serve daemon.
//!
//! A [`JobSpec`] is everything a search job needs, in a single-line
//! `key=value` form that survives the wire (the `SubmitJob` frame), the
//! manifest WAL, and a human's shell history. The encoding is
//! deliberately not JSON: values are bare tokens with no quoting, which
//! keeps the round-trip trivially canonical — [`JobSpec::parse`] of
//! [`JobSpec::to_line`] is always the identity, and the daemon can log
//! the line verbatim.
//!
//! The spec builds the same objects the CLI's `clone` command builds
//! ([`Workload::by_name`], [`SearchConfig`], [`RuntimeOptions`],
//! [`generator_for_program`]), so a job submitted to the daemon runs the
//! identical fixed-seed search a one-shot `datamime clone` would.

use crate::generator::{generator_for_program, QuantizedGenerator};
use crate::profiler::ProfilingConfig;
use crate::search::{BackendChoice, ProcOptions, RuntimeOptions, SearchConfig};
use crate::workload::Workload;
use datamime_sim::MachineConfig;
use std::path::PathBuf;

/// The boxed generator shape [`JobSpec::generator`] returns.
pub type BoxedGenerator = Box<dyn crate::generator::DatasetGenerator + Send + Sync>;

/// One search job, in `key=value` line form. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Target workload short name (see `datamime list`).
    pub workload: String,
    /// Search iterations.
    pub iters: usize,
    /// Optimizer seed (the paper seed by default).
    pub seed: u64,
    /// Machine preset name (`broadwell` | `zen2` | `silvermont`).
    pub machine: String,
    /// Suggestions drawn per optimizer batch.
    pub batch: usize,
    /// Worker threads/processes (0 = the batch width).
    pub workers: usize,
    /// Where evaluations run.
    pub backend: JobBackend,
    /// Paper-fidelity profiling instead of the fast configuration.
    pub paper: bool,
    /// Keep the cache-sensitivity curve sweep (dropping it makes smoke
    /// jobs much cheaper).
    pub curves: bool,
    /// Snap every generator axis to a uniform grid of this many steps —
    /// re-suggested points then hit the evaluation memo cache.
    pub grid: Option<u32>,
    /// Explicit `datamime-worker` binary for the process backend (tests;
    /// the default resolution is the `DATAMIME_WORKER` environment
    /// variable, then a sibling of the current executable).
    pub worker_bin: Option<PathBuf>,
    /// Evaluation quota: stop (with the best-so-far result) once this
    /// many observations exist. Checked at batch boundaries, counted
    /// over the deterministic observation order, so a resumed job stops
    /// at the identical point.
    pub max_evals: Option<usize>,
    /// Wall-clock quota in seconds. Checked at batch boundaries; the
    /// clock restarts on resume (it bounds one process's effort and is
    /// deliberately not part of the deterministic state).
    pub wall_clock_s: Option<u64>,
}

/// Where a job's evaluations execute (the spec-level mirror of
/// [`BackendChoice`], minus the unserializable options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobBackend {
    /// In-process worker threads.
    #[default]
    Thread,
    /// `datamime-worker` OS processes under a broker.
    Proc,
}

impl JobSpec {
    /// A spec for `workload` with the `clone` command's defaults:
    /// 40 iterations, the paper seed, broadwell, sequential, thread
    /// backend, fast profiling with curves.
    pub fn new(workload: &str) -> Self {
        JobSpec {
            workload: workload.to_string(),
            iters: 40,
            seed: SearchConfig::paper_default().seed,
            machine: "broadwell".to_string(),
            batch: 1,
            workers: 0,
            backend: JobBackend::Thread,
            paper: false,
            curves: true,
            grid: None,
            worker_bin: None,
            max_evals: None,
            wall_clock_s: None,
        }
    }

    /// Serializes the spec as one `key=value` line (no newline). Optional
    /// fields are omitted when unset; defaults are written out so the
    /// line is self-contained.
    ///
    /// # Errors
    ///
    /// Fails if a value contains whitespace (only `worker_bin` can), as
    /// the encoding could not round-trip it.
    pub fn to_line(&self) -> Result<String, String> {
        let mut parts = vec![
            format!("workload={}", self.workload),
            format!("iters={}", self.iters),
            format!("seed={}", self.seed),
            format!("machine={}", self.machine),
            format!("batch={}", self.batch),
            format!("workers={}", self.workers),
            format!(
                "backend={}",
                match self.backend {
                    JobBackend::Thread => "thread",
                    JobBackend::Proc => "proc",
                }
            ),
            format!("paper={}", self.paper),
            format!("curves={}", self.curves),
        ];
        if let Some(g) = self.grid {
            parts.push(format!("grid={g}"));
        }
        if let Some(bin) = &self.worker_bin {
            parts.push(format!("worker_bin={}", bin.display()));
        }
        if let Some(n) = self.max_evals {
            parts.push(format!("max_evals={n}"));
        }
        if let Some(s) = self.wall_clock_s {
            parts.push(format!("wall_clock_s={s}"));
        }
        for p in &parts {
            if p.chars().any(char::is_whitespace) {
                return Err(format!("job-spec value contains whitespace: `{p}`"));
            }
        }
        Ok(parts.join(" "))
    }

    /// Parses a `key=value` line produced by [`JobSpec::to_line`] (or a
    /// human). `workload=` is required; every other key is optional and
    /// defaults as in [`JobSpec::new`]. Unknown and duplicate keys are
    /// errors, so typos fail loudly at submit time rather than silently
    /// running a different job.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token.
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut spec = JobSpec::new("");
        let mut seen = Vec::new();
        for tok in line.split_whitespace() {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| format!("job-spec token `{tok}` is not key=value"))?;
            if seen.contains(&key.to_string()) {
                return Err(format!("duplicate job-spec key `{key}`"));
            }
            seen.push(key.to_string());
            let bad = |what: &str| format!("job-spec key `{key}`: {what}: `{value}`");
            match key {
                "workload" => spec.workload = value.to_string(),
                "iters" => spec.iters = value.parse().map_err(|_| bad("not a count"))?,
                "seed" => spec.seed = value.parse().map_err(|_| bad("not a u64"))?,
                "machine" => spec.machine = value.to_string(),
                "batch" => spec.batch = value.parse().map_err(|_| bad("not a count"))?,
                "workers" => spec.workers = value.parse().map_err(|_| bad("not a count"))?,
                "backend" => {
                    spec.backend = match value {
                        "thread" => JobBackend::Thread,
                        "proc" => JobBackend::Proc,
                        _ => return Err(bad("must be thread or proc")),
                    }
                }
                "paper" => spec.paper = value.parse().map_err(|_| bad("not a bool"))?,
                "curves" => spec.curves = value.parse().map_err(|_| bad("not a bool"))?,
                "grid" => spec.grid = Some(value.parse().map_err(|_| bad("not a step count"))?),
                "worker_bin" => spec.worker_bin = Some(PathBuf::from(value)),
                "max_evals" => {
                    let n: usize = value.parse().map_err(|_| bad("not a count"))?;
                    if n == 0 {
                        return Err(bad("must be at least 1"));
                    }
                    spec.max_evals = Some(n);
                }
                "wall_clock_s" => {
                    let s: u64 = value.parse().map_err(|_| bad("not a second count"))?;
                    if s == 0 {
                        return Err(bad("must be at least 1"));
                    }
                    spec.wall_clock_s = Some(s);
                }
                _ => return Err(format!("unknown job-spec key `{key}`")),
            }
        }
        if spec.workload.is_empty() {
            return Err("job spec needs workload=<name>; see `datamime list`".to_string());
        }
        Ok(spec)
    }

    /// The target workload named by the spec.
    ///
    /// # Errors
    ///
    /// Fails on an unknown workload name.
    pub fn target(&self) -> Result<Workload, String> {
        Workload::by_name(&self.workload)
            .ok_or_else(|| format!("unknown workload {}; see `datamime list`", self.workload))
    }

    /// The search configuration the spec describes (machine, iterations,
    /// seed, profiling fidelity).
    ///
    /// # Errors
    ///
    /// Fails on an unknown machine preset.
    pub fn search_config(&self) -> Result<SearchConfig, String> {
        let machine = match self.machine.as_str() {
            "broadwell" => MachineConfig::broadwell(),
            "zen2" => MachineConfig::zen2(),
            "silvermont" => MachineConfig::silvermont(),
            other => return Err(format!("unknown machine {other}")),
        };
        let mut cfg = SearchConfig::paper_default();
        cfg.machine = machine;
        cfg.iterations = self.iters;
        cfg.seed = self.seed;
        if !self.paper {
            cfg.profiling = ProfilingConfig::fast();
        }
        if !self.curves {
            cfg.profiling = cfg.profiling.without_curves();
        }
        Ok(cfg)
    }

    /// The dataset generator for the spec's workload, grid-quantized when
    /// `grid` is set.
    ///
    /// # Errors
    ///
    /// Fails when the workload's program has no generator.
    pub fn generator(&self) -> Result<BoxedGenerator, String> {
        let program = self.target()?.app.program();
        let inner = generator_for_program(program)
            .ok_or_else(|| format!("no dataset generator for program {program}"))?;
        Ok(match self.grid {
            Some(steps) => Box::new(QuantizedGenerator::new(inner, steps)),
            None => inner,
        })
    }

    /// The runtime options the spec describes: batching, workers, and the
    /// backend. Journal, resume, sinks, gates, and metrics are the
    /// caller's (the daemon's) concern and are left unset.
    pub fn runtime_options(&self) -> RuntimeOptions {
        let batch = self.batch.max(1);
        let workers = if self.workers == 0 {
            batch
        } else {
            self.workers
        };
        RuntimeOptions {
            batch_k: batch,
            workers,
            backend: match self.backend {
                JobBackend::Thread => BackendChoice::Thread,
                JobBackend::Proc => BackendChoice::Process(ProcOptions {
                    workers,
                    worker_bin: self.worker_bin.clone(),
                }),
            },
            max_evals: self.max_evals,
            wall_clock: self.wall_clock_s.map(std::time::Duration::from_secs),
            ..RuntimeOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_round_trips() {
        let mut spec = JobSpec::new("mem-fb");
        spec.iters = 12;
        spec.seed = 77;
        spec.batch = 3;
        spec.backend = JobBackend::Proc;
        spec.grid = Some(4);
        spec.worker_bin = Some(PathBuf::from("/tmp/datamime-worker"));
        spec.max_evals = Some(8);
        spec.wall_clock_s = Some(120);
        let line = spec.to_line().unwrap();
        assert_eq!(JobSpec::parse(&line).unwrap(), spec);
    }

    #[test]
    fn defaults_match_new() {
        let spec = JobSpec::parse("workload=xapian").unwrap();
        assert_eq!(spec, JobSpec::new("xapian"));
        assert_eq!(spec.seed, SearchConfig::paper_default().seed);
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(JobSpec::parse("").is_err()); // no workload
        assert!(JobSpec::parse("workload=mem-fb bogus=1").is_err());
        assert!(JobSpec::parse("workload=mem-fb iters=x").is_err());
        assert!(JobSpec::parse("workload=mem-fb backend=fiber").is_err());
        assert!(JobSpec::parse("workload=mem-fb iters=1 iters=2").is_err());
        assert!(JobSpec::parse("workload").is_err());
        // Zero quotas would strand the run before its first observation.
        assert!(JobSpec::parse("workload=mem-fb max_evals=0").is_err());
        assert!(JobSpec::parse("workload=mem-fb wall_clock_s=0").is_err());
    }

    #[test]
    fn quotas_reach_the_runtime_options() {
        let spec = JobSpec::parse("workload=mem-fb max_evals=6 wall_clock_s=30").unwrap();
        let opts = spec.runtime_options();
        assert_eq!(opts.max_evals, Some(6));
        assert_eq!(opts.wall_clock, Some(std::time::Duration::from_secs(30)));
        let plain = JobSpec::parse("workload=mem-fb").unwrap().runtime_options();
        assert_eq!(plain.max_evals, None);
        assert_eq!(plain.wall_clock, None);
    }

    #[test]
    fn whitespace_values_cannot_serialize() {
        let mut spec = JobSpec::new("mem-fb");
        spec.worker_bin = Some(PathBuf::from("/tmp/has space/worker"));
        assert!(spec.to_line().is_err());
    }

    #[test]
    fn builds_the_clone_objects() {
        let spec =
            JobSpec::parse("workload=mem-fb iters=8 seed=5 machine=zen2 curves=false").unwrap();
        assert_eq!(spec.target().unwrap().name, "mem-fb");
        let cfg = spec.search_config().unwrap();
        assert_eq!(cfg.iterations, 8);
        assert_eq!(cfg.seed, 5);
        assert_eq!(cfg.machine.name, "zen2");
        assert!(cfg.profiling.curve_ways.is_empty());
        assert!(spec.generator().is_ok());
        let opts = spec.runtime_options();
        assert_eq!((opts.batch_k, opts.workers), (1, 1));
        assert!(JobSpec::parse("workload=nope").unwrap().target().is_err());
        assert!(JobSpec::parse("workload=mem-fb machine=m1")
            .unwrap()
            .search_config()
            .is_err());
    }

    #[test]
    fn grid_quantizes_the_generator() {
        let spec = JobSpec::parse("workload=mem-fb grid=4").unwrap();
        let g = spec.generator().unwrap();
        assert!(g.param_specs().iter().all(|p| p.steps == Some(4)));
    }
}
