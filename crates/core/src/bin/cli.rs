//! The `datamime` command-line tool: profile workloads and synthesize
//! representative benchmarks from the terminal.
//!
//! ```text
//! datamime list                          # available workloads
//! datamime machines                      # the Table-II platforms
//! datamime profile mem-fb --machine zen2 # print a profile
//! datamime clone mem-fb --iters 60       # run the Datamime search
//! ```

#![forbid(unsafe_code)]
use datamime::generator::generator_for_program;
use datamime::metrics::DistMetric;
use datamime::profiler::{profile_workload, ProfilingConfig};
use datamime::search::{
    search, search_with_runtime, BackendChoice, ProcOptions, RuntimeOptions, SearchConfig,
};
use datamime::servectl::ServeClient;
use datamime::workload::Workload;
use datamime_runtime::FailPolicy;
use datamime_sim::MachineConfig;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
datamime — generate representative benchmarks by synthesizing datasets

USAGE:
    datamime <COMMAND> [OPTIONS]

COMMANDS:
    list                       list available target workloads
    machines                   describe the simulated platforms
    profile <workload>         profile a workload and print its metrics
    clone <workload>           search for a matching synthetic dataset
    validate <workload>        clone, then validate across all machines
    ctl <action> [...]         talk to a running datamime-served daemon:
                                 submit key=value...   (workload=<name> ...,
                                 optional quotas max_evals=<n> wall_clock_s=<s>)
                                 status|result|wait|cancel <job-id>
                                 list | stats | health | version | shutdown
                               the daemon root comes from --root or the
                               DATAMIME_SERVE_ROOT environment variable

OPTIONS:
    --machine <name>           broadwell (default) | zen2 | silvermont
    --iters <n>                search iterations (default 40)
    --parallel <k>             evaluate k candidates per batch in parallel
    --backend <kind>           with `clone`: where evaluations run —
                               thread (default, in-process pool) | proc
                               (datamime-worker OS processes; deadlines
                               are enforced by SIGKILL and a crashing
                               evaluation cannot take the search down)
    --workers <n>              with `--backend proc`: worker processes
                               (default: the --parallel batch width)
    --journal <path>           with `clone`: log every evaluation to a
                               crash-safe JSONL run journal
    --resume <path>            with `clone`: resume an interrupted search
                               from its journal (journaled points are
                               re-observed, not re-profiled)
    --eval-timeout <secs>      with `clone`: wall-clock budget per
                               evaluation; a runaway profile is cancelled
                               and the point penalized
    --max-retries <n>          with `clone`: retries (with deterministic
                               backoff) before a failing evaluation is
                               penalized or aborts (default 1)
    --fail-policy <policy>     with `clone`: what to do when an evaluation
                               still fails after retries —
                               penalize (default) | abort (fail fast)
    --progress-every <n>       with `clone`: emit a stderr progress line
                               every n evaluations (default 10)
    --root <dir>               with `ctl`: the daemon state root
    --timeout <n>              with `ctl wait`: give up (and exit nonzero)
                               after n seconds (default 600); --timeout-secs
                               is accepted as an alias
    --paper                    paper-fidelity profiling (slower)
    --tsv                      with `profile`: dump raw samples as TSV
";

fn machine_by_name(name: &str) -> Option<MachineConfig> {
    match name {
        "broadwell" => Some(MachineConfig::broadwell()),
        "zen2" => Some(MachineConfig::zen2()),
        "silvermont" => Some(MachineConfig::silvermont()),
        _ => None,
    }
}

#[derive(Debug, Default)]
struct Options {
    machine: Option<String>,
    iters: Option<usize>,
    parallel: Option<usize>,
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
    eval_timeout: Option<Duration>,
    max_retries: Option<u32>,
    fail_policy: Option<FailPolicy>,
    backend: Option<String>,
    workers: Option<usize>,
    progress_every: Option<usize>,
    root: Option<PathBuf>,
    timeout_secs: Option<u64>,
    paper: bool,
    tsv: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--machine" => {
                o.machine = Some(args.get(i + 1).ok_or("--machine needs a value")?.clone());
                i += 2;
            }
            "--iters" => {
                o.iters = Some(
                    args.get(i + 1)
                        .ok_or("--iters needs a value")?
                        .parse()
                        .map_err(|_| "--iters must be a number")?,
                );
                i += 2;
            }
            "--parallel" => {
                o.parallel = Some(
                    args.get(i + 1)
                        .ok_or("--parallel needs a value")?
                        .parse()
                        .map_err(|_| "--parallel must be a number")?,
                );
                i += 2;
            }
            "--journal" => {
                o.journal = Some(args.get(i + 1).ok_or("--journal needs a path")?.into());
                i += 2;
            }
            "--resume" => {
                o.resume = Some(args.get(i + 1).ok_or("--resume needs a path")?.into());
                i += 2;
            }
            "--eval-timeout" => {
                let secs: f64 = args
                    .get(i + 1)
                    .ok_or("--eval-timeout needs a value in seconds")?
                    .parse()
                    .map_err(|_| "--eval-timeout must be a number of seconds")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--eval-timeout must be positive".to_string());
                }
                o.eval_timeout = Some(Duration::from_secs_f64(secs));
                i += 2;
            }
            "--max-retries" => {
                o.max_retries = Some(
                    args.get(i + 1)
                        .ok_or("--max-retries needs a value")?
                        .parse()
                        .map_err(|_| "--max-retries must be a number")?,
                );
                i += 2;
            }
            "--fail-policy" => {
                o.fail_policy = Some(
                    match args
                        .get(i + 1)
                        .ok_or("--fail-policy needs a value")?
                        .as_str()
                    {
                        "penalize" => FailPolicy::Penalize,
                        "abort" => FailPolicy::Abort,
                        _ => return Err("--fail-policy must be abort or penalize".to_string()),
                    },
                );
                i += 2;
            }
            "--backend" => {
                let kind = args.get(i + 1).ok_or("--backend needs a value")?;
                if kind != "thread" && kind != "proc" {
                    return Err("--backend must be thread or proc".to_string());
                }
                o.backend = Some(kind.clone());
                i += 2;
            }
            "--workers" => {
                o.workers = Some(
                    args.get(i + 1)
                        .ok_or("--workers needs a value")?
                        .parse()
                        .map_err(|_| "--workers must be a number")?,
                );
                i += 2;
            }
            "--progress-every" => {
                let n: usize = args
                    .get(i + 1)
                    .ok_or("--progress-every needs a value")?
                    .parse()
                    .map_err(|_| "--progress-every must be a number")?;
                if n == 0 {
                    return Err("--progress-every must be at least 1".to_string());
                }
                o.progress_every = Some(n);
                i += 2;
            }
            "--root" => {
                o.root = Some(args.get(i + 1).ok_or("--root needs a path")?.into());
                i += 2;
            }
            "--timeout-secs" | "--timeout" => {
                o.timeout_secs = Some(
                    args.get(i + 1)
                        .ok_or("--timeout needs a value")?
                        .parse()
                        .map_err(|_| "--timeout must be a number of seconds")?,
                );
                i += 2;
            }
            "--paper" => {
                o.paper = true;
                i += 1;
            }
            "--tsv" => {
                o.tsv = true;
                i += 1;
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(o)
}

fn cmd_list() {
    println!("target workloads:");
    for w in [
        Workload::mem_fb(),
        Workload::mem_twtr(),
        Workload::silo_bidding(),
        Workload::xapian_wiki(),
        Workload::dnn_resnet(),
        Workload::masstree_ycsb(),
        Workload::img_dnn_mnist(),
    ] {
        println!(
            "  {:<12} program={:<10} qps={}",
            w.name,
            w.app.program(),
            w.load.qps
        );
    }
    println!("public-dataset baselines:");
    for w in [
        Workload::mem_public(),
        Workload::silo_public(),
        Workload::xapian_public(),
        Workload::dnn_public(),
    ] {
        println!(
            "  {:<14} program={:<10} qps={}",
            w.name,
            w.app.program(),
            w.load.qps
        );
    }
}

fn cmd_machines() {
    for m in [
        MachineConfig::broadwell(),
        MachineConfig::zen2(),
        MachineConfig::silvermont(),
    ] {
        println!(
            "{:<11} {:.2} GHz, width {}, L1I {}, L1D {}, L2 {}, LLC {}",
            m.name,
            m.freq_ghz,
            m.issue_width,
            m.l1i,
            m.l1d,
            m.l2,
            m.llc.map_or("none".to_owned(), |c| c.to_string()),
        );
    }
}

fn cmd_profile(workload: &Workload, opts: &Options) -> Result<(), String> {
    let machine = machine_by_name(opts.machine.as_deref().unwrap_or("broadwell"))
        .ok_or("unknown machine (broadwell | zen2 | silvermont)")?;
    let cfg = if opts.paper {
        ProfilingConfig::paper_default()
    } else {
        ProfilingConfig::fast()
    };
    eprintln!("profiling {} on {} ...", workload.name, machine.name);
    let p = profile_workload(workload, &machine, &cfg);
    if opts.tsv {
        print!("{}", p.to_tsv());
        return Ok(());
    }
    for m in DistMetric::ALL {
        let d = p.dist(m);
        println!(
            "{:<14} mean={:<10.4} p50={:<10.4} p95={:<10.4}",
            m.key(),
            d.mean(),
            d.quantile(0.5),
            d.quantile(0.95)
        );
    }
    if !p.curve().is_empty() {
        println!("cache sensitivity (MB: llc_mpki / ipc):");
        for pt in p.curve() {
            println!(
                "  {:>3}: {:.3} / {:.3}",
                pt.cache_bytes >> 20,
                pt.llc_mpki,
                pt.ipc
            );
        }
    }
    Ok(())
}

fn cmd_validate(workload: &Workload, opts: &Options) -> Result<(), String> {
    let generator = generator_for_program(workload.app.program()).ok_or_else(|| {
        format!(
            "no dataset generator for program {}",
            workload.app.program()
        )
    })?;
    let mut cfg = SearchConfig::paper_default();
    cfg.iterations = opts.iters.unwrap_or(40);
    if !opts.paper {
        cfg.profiling = ProfilingConfig::fast();
    }
    eprintln!(
        "cloning {} ({} iterations) ...",
        workload.name, cfg.iterations
    );
    let target = profile_workload(workload, &cfg.machine, &cfg.profiling);
    let outcome = search(generator.as_ref(), &target, &cfg);
    eprintln!("validating across machines ...");
    let report =
        datamime::validate::validate_paper_setup(workload, &outcome.best_workload, &cfg.profiling);
    print!("{report}");
    if let Some(mape) = report.mape(DistMetric::Ipc) {
        println!("IPC MAPE across machines: {:.1}%", mape * 100.0);
    }
    if opts.tsv {
        print!("{}", report.to_tsv());
    }
    Ok(())
}

fn cmd_clone(workload: &Workload, opts: &Options) -> Result<(), String> {
    let machine = machine_by_name(opts.machine.as_deref().unwrap_or("broadwell"))
        .ok_or("unknown machine (broadwell | zen2 | silvermont)")?;
    let generator = generator_for_program(workload.app.program()).ok_or_else(|| {
        format!(
            "no dataset generator for program {}",
            workload.app.program()
        )
    })?;
    let mut cfg = SearchConfig::paper_default();
    cfg.machine = machine;
    cfg.iterations = opts.iters.unwrap_or(40);
    if !opts.paper {
        cfg.profiling = ProfilingConfig::fast();
    }
    eprintln!(
        "profiling {} and searching {} dataset parameters ({} iterations{}) ...",
        workload.name,
        generator.dims(),
        cfg.iterations,
        opts.parallel
            .map_or(String::new(), |k| format!(", batch {k}")),
    );
    let target = profile_workload(workload, &cfg.machine, &cfg.profiling);
    let batch = opts.parallel.unwrap_or(1).max(1);
    let backend = match opts.backend.as_deref() {
        Some("proc") => BackendChoice::Process(ProcOptions {
            workers: opts.workers.unwrap_or(batch).max(1),
            worker_bin: None,
        }),
        _ => BackendChoice::Thread,
    };
    let runtime = RuntimeOptions {
        batch_k: batch,
        workers: batch,
        backend,
        // An interrupted run resumed in place keeps appending to its own
        // journal unless a different --journal is given.
        journal: opts.journal.clone().or_else(|| opts.resume.clone()),
        resume: opts.resume.clone(),
        progress: true,
        eval_timeout: opts.eval_timeout,
        // One retry by default: a long search should shrug off a
        // transient failure without being asked.
        max_retries: opts.max_retries.unwrap_or(1),
        fail_policy: opts.fail_policy.unwrap_or_default(),
        progress_every: opts.progress_every,
        ..RuntimeOptions::default()
    };
    let outcome = search_with_runtime(generator.as_ref(), &target, &cfg, &runtime)
        .map_err(|e| e.to_string())?;
    println!("best total EMD error: {:.4}", outcome.best_error);
    println!("synthesized dataset parameters:");
    for (name, value) in generator.describe(&outcome.best_unit_params) {
        println!("  {name:>20} = {value:.3}");
    }
    println!("\n{:>14}  {:>9}  {:>9}", "metric", "target", "datamime");
    for m in DistMetric::ALL {
        println!(
            "{:>14}  {:>9.3}  {:>9.3}",
            m.key(),
            target.mean(m),
            outcome.best_profile.mean(m)
        );
    }
    Ok(())
}

/// Splits a `ctl` argument list into the `key=value`/id positionals and
/// the `--flag`-style options (parsed with [`parse_options`]).
fn split_ctl_args(args: &[String]) -> Result<(Vec<String>, Options), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if a.starts_with("--") {
            flags.push(a.clone());
            if let Some(v) = it.peek() {
                if !v.starts_with("--") {
                    flags.push(it.next().unwrap().clone());
                }
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, parse_options(&flags)?))
}

fn cmd_ctl(args: &[String]) -> Result<(), String> {
    let action = args
        .first()
        .ok_or("ctl needs an action: submit | status | result | wait | cancel | list | stats | health | version | shutdown")?
        .clone();
    let (positional, opts) = split_ctl_args(&args[1..])?;
    let root = opts
        .root
        .or_else(|| std::env::var_os("DATAMIME_SERVE_ROOT").map(PathBuf::from))
        .ok_or("ctl needs the daemon root: pass --root <dir> or set DATAMIME_SERVE_ROOT")?;
    let client = ServeClient::new(root);
    let job_arg = || {
        positional
            .first()
            .cloned()
            .ok_or(format!("ctl {action} needs a job id"))
    };
    match action.as_str() {
        "submit" => {
            let spec = datamime::jobspec::JobSpec::parse(&positional.join(" "))?;
            let job = client.submit(&spec)?;
            println!("{job}");
        }
        "status" => {
            let s = client.status(&job_arg()?)?;
            println!(
                "state={} evals={} iterations={} best_error={}",
                s.state.as_str(),
                s.evals,
                s.iterations,
                s.best_error
            );
        }
        "result" => {
            let r = client.result(&job_arg()?)?;
            println!("best_error={}", r.best_error);
            println!(
                "best_unit={}",
                r.best_unit
                    .iter()
                    .map(f64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            );
            println!("journal={}", r.journal);
        }
        "wait" => {
            let timeout = Duration::from_secs(opts.timeout_secs.unwrap_or(600));
            let s = client.wait(&job_arg()?, timeout)?;
            println!("state={} best_error={}", s.state.as_str(), s.best_error);
            // Quota-exhausted jobs still carry a best-so-far result, so
            // they count as success; cancelled/failed jobs do not.
            if !s.state.has_result() {
                return Err(format!("job finished {}", s.state.as_str()));
            }
        }
        "cancel" => {
            client.cancel(&job_arg()?)?;
            println!("cancelled");
        }
        "list" => {
            for (job, state) in client.list()? {
                println!("{job} {state}");
            }
        }
        "stats" => {
            for (name, value) in client.stats()? {
                println!("STAT {name} {value}");
            }
        }
        "version" => print!("{}", client.admin("version")?),
        "health" => print!("{}", client.admin("health")?),
        "shutdown" => print!("{}", client.admin("shutdown")?),
        other => return Err(format!("unknown ctl action {other}")),
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            Ok(())
        }
        Some("machines") => {
            cmd_machines();
            Ok(())
        }
        Some("ctl") => cmd_ctl(&args[1..]),
        Some(cmd @ ("profile" | "clone" | "validate")) => {
            let name = args
                .get(1)
                .ok_or(format!("{cmd} needs a workload name; see `datamime list`"))?;
            let workload = Workload::by_name(name)
                .ok_or(format!("unknown workload {name}; see `datamime list`"))?;
            let opts = parse_options(&args[2..])?;
            match cmd {
                "profile" => cmd_profile(&workload, &opts),
                "clone" => cmd_clone(&workload, &opts),
                _ => cmd_validate(&workload, &opts),
            }
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other}\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_all_options() {
        let o = parse_options(&args(&[
            "--machine",
            "zen2",
            "--iters",
            "7",
            "--parallel",
            "3",
            "--journal",
            "run.jsonl",
            "--resume",
            "old.jsonl",
            "--eval-timeout",
            "2.5",
            "--max-retries",
            "4",
            "--fail-policy",
            "abort",
            "--backend",
            "proc",
            "--workers",
            "3",
            "--progress-every",
            "5",
            "--root",
            "/tmp/serve-root",
            "--timeout-secs",
            "30",
            "--paper",
            "--tsv",
        ]))
        .unwrap();
        assert_eq!(o.machine.as_deref(), Some("zen2"));
        assert_eq!(o.iters, Some(7));
        assert_eq!(o.parallel, Some(3));
        assert_eq!(
            o.journal.as_deref(),
            Some(std::path::Path::new("run.jsonl"))
        );
        assert_eq!(o.resume.as_deref(), Some(std::path::Path::new("old.jsonl")));
        assert_eq!(o.eval_timeout, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(o.max_retries, Some(4));
        assert_eq!(o.fail_policy, Some(FailPolicy::Abort));
        assert_eq!(o.backend.as_deref(), Some("proc"));
        assert_eq!(o.workers, Some(3));
        assert_eq!(o.progress_every, Some(5));
        assert_eq!(
            o.root.as_deref(),
            Some(std::path::Path::new("/tmp/serve-root"))
        );
        assert_eq!(o.timeout_secs, Some(30));
        assert!(o.paper && o.tsv);
    }

    #[test]
    fn parses_thread_backend() {
        let o = parse_options(&args(&["--backend", "thread"])).unwrap();
        assert_eq!(o.backend.as_deref(), Some("thread"));
        assert_eq!(o.workers, None);
    }

    #[test]
    fn parses_penalize_fail_policy() {
        let o = parse_options(&args(&["--fail-policy", "penalize"])).unwrap();
        assert_eq!(o.fail_policy, Some(FailPolicy::Penalize));
    }

    #[test]
    fn rejects_unknown_and_incomplete_options() {
        assert!(parse_options(&args(&["--bogus"])).is_err());
        assert!(parse_options(&args(&["--iters"])).is_err());
        assert!(parse_options(&args(&["--iters", "x"])).is_err());
        assert!(parse_options(&args(&["--journal"])).is_err());
        assert!(parse_options(&args(&["--resume"])).is_err());
        assert!(parse_options(&args(&["--eval-timeout"])).is_err());
        assert!(parse_options(&args(&["--eval-timeout", "-3"])).is_err());
        assert!(parse_options(&args(&["--eval-timeout", "zero"])).is_err());
        assert!(parse_options(&args(&["--max-retries", "x"])).is_err());
        assert!(parse_options(&args(&["--fail-policy", "explode"])).is_err());
        assert!(parse_options(&args(&["--backend"])).is_err());
        assert!(parse_options(&args(&["--backend", "fiber"])).is_err());
        assert!(parse_options(&args(&["--workers", "x"])).is_err());
        assert!(parse_options(&args(&["--progress-every", "0"])).is_err());
        assert!(parse_options(&args(&["--progress-every", "x"])).is_err());
        assert!(parse_options(&args(&["--root"])).is_err());
        assert!(parse_options(&args(&["--timeout-secs", "x"])).is_err());
        assert!(parse_options(&args(&["--timeout", "x"])).is_err());
    }

    #[test]
    fn timeout_is_an_alias_for_timeout_secs() {
        let o = parse_options(&args(&["--timeout", "42"])).unwrap();
        assert_eq!(o.timeout_secs, Some(42));
    }

    #[test]
    fn workload_and_machine_lookup() {
        assert!(Workload::by_name("mem-fb").is_some());
        assert!(Workload::by_name("img-dnn").is_some());
        assert!(Workload::by_name("nope").is_none());
        assert!(machine_by_name("silvermont").is_some());
        assert!(machine_by_name("alderlake").is_none());
    }

    #[test]
    fn ctl_args_split_positionals_from_flags() {
        let (pos, opts) = split_ctl_args(&args(&[
            "workload=mem-fb",
            "iters=8",
            "--root",
            "/tmp/r",
            "--timeout-secs",
            "9",
        ]))
        .unwrap();
        assert_eq!(pos, args(&["workload=mem-fb", "iters=8"]));
        assert_eq!(opts.root.as_deref(), Some(std::path::Path::new("/tmp/r")));
        assert_eq!(opts.timeout_secs, Some(9));
        assert!(split_ctl_args(&args(&["--bogus"])).is_err());
    }
}
