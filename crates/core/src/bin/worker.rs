//! `datamime-worker`: the evaluation worker process of the distributed
//! search backend.
//!
//! Spawned by the broker (`datamime clone ... --backend proc`), never run
//! by hand: it rebuilds the search's evaluation context from its command
//! line, connects back over the broker's Unix socket, proves protocol
//! version / binary identity / context fingerprint during the handshake,
//! and then serves instantiate → profile → error evaluations until told
//! to shut down. All the logic lives in [`datamime::distproc`].

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    // Broker-spawned workers get their termination sentinel via the
    // environment (no trampoline); SIGTERM/SIGINT then drain gracefully
    // between evaluations. SIGKILL still kills instantly.
    let term = datamime_runtime::termsig::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match datamime::distproc::run_worker_with_signal(&args, Some(term)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("datamime-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
