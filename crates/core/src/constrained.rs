//! Statistically constrained search spaces — the Sec. VI-C proposal.
//!
//! The paper observes that statistical dataset modeling is *complementary*
//! to profile-guided generation: when the operator can disclose coarse
//! statistical properties of the production dataset (e.g. "mean value size
//! is 300 B ± 20%"), Datamime "can confine the possible set of synthetic
//! datasets to those that match the target dataset's statistical
//! properties, which would significantly speed up its search."
//!
//! [`ConstrainedGenerator`] implements that confinement generically: it
//! wraps any [`DatasetGenerator`] and restricts named parameters to
//! sub-ranges, remapping the optimizer's unit cube into the constrained
//! box so the search machinery is unchanged.

use crate::generator::{DatasetGenerator, ParamSpec};
use crate::workload::Workload;
use std::fmt;

/// A native-value constraint on one named parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamConstraint {
    /// Name of the constrained parameter (must exist in the inner
    /// generator's [`ParamSpec`] list).
    pub name: &'static str,
    /// Lower bound in native units.
    pub lo: f64,
    /// Upper bound in native units.
    pub hi: f64,
}

impl ParamConstraint {
    /// A symmetric relative constraint: `value ± fraction * value`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1)` or `value` is not positive.
    pub fn within(name: &'static str, value: f64, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        assert!(value > 0.0 && value.is_finite(), "value must be positive");
        ParamConstraint {
            name,
            lo: value * (1.0 - fraction),
            hi: value * (1.0 + fraction),
        }
    }
}

/// Error returned when a constraint cannot be applied.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintError {
    what: String,
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid constraint: {}", self.what)
    }
}

impl std::error::Error for ConstraintError {}

/// A generator whose search space is confined to a sub-box of the wrapped
/// generator's, per disclosed statistical properties of the target
/// dataset.
#[derive(Debug)]
pub struct ConstrainedGenerator<G> {
    inner: G,
    /// Per-dimension unit-interval bounds.
    unit_bounds: Vec<(f64, f64)>,
}

impl<G: DatasetGenerator> ConstrainedGenerator<G> {
    /// Wraps `inner`, confining the named parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if a constraint names an unknown parameter or its
    /// intersection with the parameter's range is empty.
    pub fn new(inner: G, constraints: &[ParamConstraint]) -> Result<Self, ConstraintError> {
        let mut unit_bounds: Vec<(f64, f64)> =
            inner.param_specs().iter().map(|_| (0.0, 1.0)).collect();
        for c in constraints {
            let idx = inner
                .param_specs()
                .iter()
                .position(|s| s.name == c.name)
                .ok_or_else(|| ConstraintError {
                    what: format!("unknown parameter {}", c.name),
                })?;
            let spec = &inner.param_specs()[idx];
            if c.lo > c.hi || c.hi < spec.lo || c.lo > spec.hi {
                return Err(ConstraintError {
                    what: format!(
                        "{}: [{}, {}] does not intersect [{}, {}]",
                        c.name, c.lo, c.hi, spec.lo, spec.hi
                    ),
                });
            }
            let ulo = spec.normalize(c.lo);
            let uhi = spec.normalize(c.hi);
            if uhi <= ulo {
                return Err(ConstraintError {
                    what: format!("{}: empty unit range", c.name),
                });
            }
            unit_bounds[idx] = (ulo, uhi);
        }
        Ok(ConstrainedGenerator { inner, unit_bounds })
    }

    /// The wrapped generator.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// Unit-interval bounds per dimension (for tests and reports).
    pub fn unit_bounds(&self) -> &[(f64, f64)] {
        &self.unit_bounds
    }
}

impl<G: DatasetGenerator> DatasetGenerator for ConstrainedGenerator<G> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn param_specs(&self) -> &[ParamSpec] {
        self.inner.param_specs()
    }

    fn instantiate(&self, unit: &[f64]) -> Workload {
        assert_eq!(
            unit.len(),
            self.unit_bounds.len(),
            "parameter vector dimension mismatch"
        );
        // Remap the optimizer's cube into the constrained sub-box.
        let remapped: Vec<f64> = unit
            .iter()
            .zip(&self.unit_bounds)
            .map(|(&u, &(lo, hi))| lo + u.clamp(0.0, 1.0) * (hi - lo))
            .collect();
        self.inner.instantiate(&remapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::KvGenerator;
    use crate::workload::AppConfig;
    use datamime_apps::SizeDist;

    fn value_mean_of(w: &Workload) -> f64 {
        match &w.app {
            AppConfig::Kv(c) => match c.value_size {
                SizeDist::Normal { mean, .. } => mean,
                _ => panic!("kv generator emits normal sizes"),
            },
            _ => panic!("kv generator emits kv workloads"),
        }
    }

    #[test]
    fn constrained_values_stay_in_the_disclosed_band() {
        let g = ConstrainedGenerator::new(
            KvGenerator::new(),
            &[ParamConstraint::within("value_size_mean", 300.0, 0.2)],
        )
        .unwrap();
        for u in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let w = g.instantiate(&vec![u; g.dims()]);
            let mean = value_mean_of(&w);
            // Floating-point round-trip through log space allows tiny slop.
            assert!(
                (239.9..=360.1).contains(&mean),
                "u={u}: value mean {mean} outside the band"
            );
        }
    }

    #[test]
    fn unconstrained_dimensions_span_the_full_range() {
        let g = ConstrainedGenerator::new(
            KvGenerator::new(),
            &[ParamConstraint::within("value_size_mean", 300.0, 0.2)],
        )
        .unwrap();
        let lo = g.instantiate(&vec![0.0; g.dims()]);
        let hi = g.instantiate(&vec![1.0; g.dims()]);
        assert!(lo.load.qps < hi.load.qps / 5.0, "qps stays unconstrained");
    }

    #[test]
    fn unknown_parameter_is_rejected() {
        let err = ConstrainedGenerator::new(
            KvGenerator::new(),
            &[ParamConstraint {
                name: "bogus",
                lo: 0.0,
                hi: 1.0,
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn disjoint_constraint_is_rejected() {
        // value_size_mean range is [16, 8192].
        let err = ConstrainedGenerator::new(
            KvGenerator::new(),
            &[ParamConstraint {
                name: "value_size_mean",
                lo: 1e7,
                hi: 2e7,
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("does not intersect"));
    }

    #[test]
    fn normalize_roundtrips_denormalize() {
        for spec in KvGenerator::new().param_specs() {
            for u in [0.0, 0.3, 0.7, 1.0] {
                let v = spec.denormalize(u);
                let u2 = spec.normalize(v);
                if !spec.integer {
                    assert!((u - u2).abs() < 1e-9, "{}: {u} vs {u2}", spec.name);
                }
            }
        }
    }
}
