//! The Datamime profiler (paper Sec. III-A).
//!
//! Profiles a [`Workload`] on a machine: runs it under its load spec,
//! samples all Table-I metrics at fixed intervals, and sweeps LLC way
//! allocations (CAT-style) to measure the cache-sensitivity curves.

use crate::arena::EvalArena;
use crate::profile::{CurvePoint, Profile};
use crate::workload::Workload;
use datamime_apps::App;
use datamime_loadgen::{Driver, WorkloadSpec};
use datamime_runtime::CancelToken;
use datamime_sim::{MachineConfig, MetricSample, Sampler};

/// How cache-sensitivity curves are measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveMethod {
    /// Fresh application + machine per allocation (simple, slower).
    Restart,
    /// DynaWay-style online repartitioning (paper ref. \[11\]): one run,
    /// the LLC is resized in place per point with a one-sample warm-up.
    Dynaway,
}

/// Controls profiling fidelity (number of samples, intervals, curve
/// resolution).
///
/// [`ProfilingConfig::paper_default`] mirrors the paper's methodology
/// (20 M-cycle counter intervals, 11-point curve sweep);
/// [`ProfilingConfig::fast`] is a cheaper setting used by tests and quick
/// experiments. Absolute interval lengths are scaled down relative to the
/// paper's wall-clock numbers because the simulated applications serve
/// requests at full simulation speed (there is no OS noise to average
/// out).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilingConfig {
    /// Counter sampling interval in cycles.
    pub interval_cycles: u64,
    /// Number of interval samples per profile.
    pub n_samples: usize,
    /// LLC way allocations to sweep for the curves (empty to skip).
    pub curve_ways: Vec<u32>,
    /// Interval samples per curve point.
    pub curve_samples: usize,
    /// Curve measurement method.
    pub curve_method: CurveMethod,
    /// Seed for the load generator.
    pub seed: u64,
}

impl ProfilingConfig {
    /// The paper's methodology: 20 M-cycle intervals and an 11-point curve
    /// (1 MB steps plus the full 12 MB on Broadwell).
    pub fn paper_default() -> Self {
        ProfilingConfig {
            interval_cycles: 20_000_000,
            n_samples: 30,
            curve_ways: (1..=12).collect(),
            curve_samples: 3,
            curve_method: CurveMethod::Dynaway,
            seed: 0xDA7A,
        }
    }

    /// A fast configuration for tests and smoke experiments.
    pub fn fast() -> Self {
        ProfilingConfig {
            interval_cycles: 2_000_000,
            n_samples: 10,
            curve_ways: vec![1, 4, 8, 12],
            curve_samples: 2,
            curve_method: CurveMethod::Restart,
            seed: 0xDA7A,
        }
    }

    /// Removes the curve sweep (e.g. for machines without CAT, or for
    /// single-metric scalar-target searches).
    pub fn without_curves(mut self) -> Self {
        self.curve_ways.clear();
        self
    }
}

/// Profiles `workload` on a machine described by `machine_cfg`.
///
/// A fresh application instance and machine are built for the main run and
/// for each curve point (the paper likewise restarts per CAT allocation).
/// Machines without a partitionable LLC (Silvermont) skip the curve sweep.
///
/// # Panics
///
/// Panics if the profiling configuration requests zero samples.
pub fn profile_workload(
    workload: &Workload,
    machine_cfg: &MachineConfig,
    cfg: &ProfilingConfig,
) -> Profile {
    profile_app(&|| workload.app.build(), workload.load, machine_cfg, cfg)
}

/// Like [`profile_workload`], but polls `cancel` inside the sampling
/// loops and between curve points, returning a truncated profile early
/// when it fires (the supervised search discards it and classifies the
/// evaluation as timed out).
pub fn profile_workload_cancellable(
    workload: &Workload,
    machine_cfg: &MachineConfig,
    cfg: &ProfilingConfig,
    cancel: &CancelToken,
) -> Profile {
    profile_app_cancellable(
        &|| workload.app.build(),
        workload.load,
        machine_cfg,
        cfg,
        cancel,
    )
}

/// [`profile_workload_cancellable`] drawing simulator state from `arena`
/// instead of the allocator. The evaluation loops pass their per-worker
/// [`EvalArena`] here so retries and curve sweeps recycle the
/// multi-megabyte machine arrays; results are bit-identical to the
/// non-pooled variant.
pub fn profile_workload_cancellable_in(
    workload: &Workload,
    machine_cfg: &MachineConfig,
    cfg: &ProfilingConfig,
    cancel: &CancelToken,
    arena: &mut EvalArena,
) -> Profile {
    profile_app_cancellable_in(
        &|| workload.app.build(),
        workload.load,
        machine_cfg,
        cfg,
        cancel,
        arena,
    )
}

/// Profiles any [`App`] (built fresh per run by `build`) under a load spec.
///
/// This is the generic entry point; [`profile_workload`] wraps it, and the
/// PerfProx proxy benchmark uses it directly since the proxy is not a
/// dataset-backed [`Workload`].
///
/// # Panics
///
/// Panics if the profiling configuration requests zero samples.
pub fn profile_app(
    build: &dyn Fn() -> Box<dyn App>,
    load: WorkloadSpec,
    machine_cfg: &MachineConfig,
    cfg: &ProfilingConfig,
) -> Profile {
    // A token nobody cancels: the predicate never fires, so this is
    // bit-for-bit the uncancellable profile.
    profile_app_cancellable(build, load, machine_cfg, cfg, &CancelToken::new())
}

/// Like [`profile_app`], but cooperatively cancellable: the sampling
/// loops poll `cancel` once per served request, and the curve sweep
/// checks it between points. When cancellation fires the function
/// returns early with whatever (truncated) profile exists — callers
/// under supervision discard it.
///
/// # Panics
///
/// Panics if the profiling configuration requests zero samples.
pub fn profile_app_cancellable(
    build: &dyn Fn() -> Box<dyn App>,
    load: WorkloadSpec,
    machine_cfg: &MachineConfig,
    cfg: &ProfilingConfig,
    cancel: &CancelToken,
) -> Profile {
    // A throwaway arena: every take falls through to fresh construction,
    // making this exactly the non-pooled profile.
    profile_app_cancellable_in(build, load, machine_cfg, cfg, cancel, &mut EvalArena::new())
}

/// Like [`profile_app_cancellable`], but all machines and samplers are
/// taken from (and recycled into) `arena`, so a worker that profiles many
/// candidates allocates the simulator arrays once and `reinit`s them per
/// run. Pooling is bit-invisible: `reinit` reproduces fresh construction
/// exactly (property-tested in `crates/sim`), so this returns the same
/// profile as the non-pooled variant, sample for sample.
///
/// # Panics
///
/// Panics if the profiling configuration requests zero samples.
pub fn profile_app_cancellable_in(
    build: &dyn Fn() -> Box<dyn App>,
    load: WorkloadSpec,
    machine_cfg: &MachineConfig,
    cfg: &ProfilingConfig,
    cancel: &CancelToken,
    arena: &mut EvalArena,
) -> Profile {
    assert!(cfg.n_samples > 0, "need at least one sample");
    let mut should_stop = || cancel.is_cancelled();

    // Main distribution run. The sampler stays out until its samples are
    // consumed at the end; the machine is recycled as soon as the run ends.
    let mut app = build();
    let mut machine = arena.take_machine(machine_cfg.clone());
    let mut sampler = arena.take_sampler(cfg.interval_cycles);
    let mut driver = Driver::new(load, cfg.seed);
    driver.run_cancellable(
        app.as_mut(),
        &mut machine,
        &mut sampler,
        cfg.n_samples,
        &mut should_stop,
    );
    arena.recycle_machine(machine);

    // Curve sweep with CAT-restricted LLC allocations.
    let mut curve = Vec::new();
    if machine_cfg.llc.is_some() && !cancel.is_cancelled() {
        match cfg.curve_method {
            CurveMethod::Restart => {
                for &ways in &cfg.curve_ways {
                    if cancel.is_cancelled() {
                        break;
                    }
                    if ways == 0 || ways > machine_cfg.llc_partitions() {
                        continue;
                    }
                    let part_cfg = machine_cfg.with_llc_ways(ways);
                    let mut app = build();
                    let mut machine = arena.take_machine(part_cfg.clone());
                    let mut point_sampler = arena.take_sampler(cfg.interval_cycles);
                    let mut driver = Driver::new(load, cfg.seed ^ u64::from(ways));
                    driver.run_cancellable(
                        app.as_mut(),
                        &mut machine,
                        &mut point_sampler,
                        cfg.curve_samples.max(1),
                        &mut should_stop,
                    );
                    curve.push(curve_point(&point_sampler, part_cfg.llc_bytes()));
                    arena.recycle_machine(machine);
                    arena.recycle_sampler(point_sampler);
                }
            }
            CurveMethod::Dynaway => {
                // One application + machine; repartition in place per point
                // and let the driver's built-in warm-up sample absorb the
                // cold restart.
                let mut app = build();
                let mut machine = arena.take_machine(machine_cfg.clone());
                let mut driver = Driver::new(load, cfg.seed ^ 0xD1A);
                for &ways in &cfg.curve_ways {
                    if cancel.is_cancelled() {
                        break;
                    }
                    if ways == 0 || ways > machine_cfg.llc_partitions() {
                        continue;
                    }
                    machine.set_llc_ways(ways);
                    let mut point_sampler = arena.take_sampler(cfg.interval_cycles);
                    driver.run_cancellable(
                        app.as_mut(),
                        &mut machine,
                        &mut point_sampler,
                        cfg.curve_samples.max(1),
                        &mut should_stop,
                    );
                    let bytes = machine_cfg.with_llc_ways(ways).llc_bytes();
                    curve.push(curve_point(&point_sampler, bytes));
                    arena.recycle_sampler(point_sampler);
                }
                arena.recycle_machine(machine);
            }
        }
    }

    // A run cancelled before its first interval sample leaves the sampler
    // empty; fall back to a single zero sample so profiling degrades
    // gracefully instead of panicking into the supervisor's catch_unwind
    // (the cancelled evaluation is recorded as a timeout and this profile
    // is discarded unread).
    let zero_fallback = [MetricSample::default()];
    let samples = if sampler.samples().is_empty() {
        &zero_fallback[..]
    } else {
        sampler.samples()
    };
    // audit:allow(panic-safety): the fallback above makes emptiness impossible; a non-finite sample is a simulator bug worth a loud stop
    let profile = Profile::from_samples(samples, curve).expect("finite samples build a profile");
    arena.recycle_sampler(sampler);
    profile
}

fn curve_point(sampler: &Sampler, cache_bytes: u64) -> CurvePoint {
    let samples = sampler.samples();
    let n = samples.len() as f64;
    CurvePoint {
        cache_bytes,
        llc_mpki: samples.iter().map(|s| s.llc_mpki).sum::<f64>() / n,
        ipc: samples.iter().map(|s| s.ipc).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DistMetric;
    use crate::workload::Workload;
    use datamime_apps::KvConfig;

    #[test]
    fn dynaway_curves_agree_with_restart_curves() {
        let mut restart = ProfilingConfig::fast();
        restart.curve_ways = vec![1, 12];
        restart.curve_samples = 4;
        let mut dynaway = restart.clone();
        dynaway.curve_method = CurveMethod::Dynaway;
        // dnn streams its whole ~10 MB model every inference, so the
        // 1 MB -> 12 MB sweep moves its miss rate strongly and quickly.
        let w = Workload::dnn_resnet();
        let machine = MachineConfig::broadwell();
        let a = profile_workload(&w, &machine, &restart);
        let b = profile_workload(&w, &machine, &dynaway);
        // Same qualitative shape: small allocation misses more than full.
        assert!(b.curve()[0].llc_mpki > b.curve()[1].llc_mpki);
        assert!(a.curve()[0].llc_mpki > a.curve()[1].llc_mpki);
        // Values in the same ballpark as the restart method.
        for (x, y) in a.curve().iter().zip(b.curve()) {
            assert_eq!(x.cache_bytes, y.cache_bytes);
            let rel = (x.llc_mpki - y.llc_mpki).abs() / x.llc_mpki.max(0.5);
            assert!(rel < 0.6, "llc curve diverges: {x:?} vs {y:?}");
        }
    }

    fn tiny_kv() -> Workload {
        let mut w = Workload::mem_public();
        if let crate::workload::AppConfig::Kv(c) = &mut w.app {
            *c = KvConfig {
                n_keys: 3_000,
                ..c.clone()
            };
        }
        w
    }

    #[test]
    fn profiles_have_requested_samples_and_curves() {
        let cfg = ProfilingConfig::fast();
        let p = profile_workload(&tiny_kv(), &MachineConfig::broadwell(), &cfg);
        assert_eq!(p.dist(DistMetric::Ipc).len(), cfg.n_samples);
        assert_eq!(p.curve().len(), cfg.curve_ways.len());
        assert!(p.mean(DistMetric::Ipc) > 0.1);
    }

    #[test]
    fn curves_are_monotone_in_the_right_direction() {
        let mut cfg = ProfilingConfig::fast();
        cfg.curve_ways = vec![1, 12];
        let w = Workload::silo_bidding();
        let p = profile_workload(&w, &MachineConfig::broadwell(), &cfg);
        let c = p.curve();
        assert!(
            c[0].llc_mpki >= c[1].llc_mpki,
            "more cache, fewer misses: {c:?}"
        );
        assert!(c[0].ipc <= c[1].ipc + 0.05, "more cache, no slower: {c:?}");
        assert_eq!(c[0].cache_bytes, 1 << 20);
        assert_eq!(c[1].cache_bytes, 12 << 20);
    }

    #[test]
    fn silvermont_profiles_without_curves() {
        let cfg = ProfilingConfig::fast();
        let p = profile_workload(&tiny_kv(), &MachineConfig::silvermont(), &cfg);
        assert!(p.curve().is_empty());
        assert!(p.mean(DistMetric::Ipc) > 0.0);
    }

    #[test]
    fn pooled_profiles_are_bit_identical_to_fresh() {
        let machine = MachineConfig::broadwell();
        let cfg = ProfilingConfig::fast(); // Restart curves: exercises per-point recycling
        let fresh = profile_workload(&tiny_kv(), &machine, &cfg);

        // Warm the arena on a different workload AND machine model first,
        // so every take has to reinit across state and geometry.
        let mut arena = EvalArena::new();
        let cancel = CancelToken::new();
        let _ = profile_workload_cancellable_in(
            &Workload::silo_bidding(),
            &MachineConfig::silvermont(),
            &ProfilingConfig::fast().without_curves(),
            &cancel,
            &mut arena,
        );
        let pooled =
            profile_workload_cancellable_in(&tiny_kv(), &machine, &cfg, &cancel, &mut arena);

        for m in DistMetric::ALL {
            assert_eq!(fresh.dist(m).samples(), pooled.dist(m).samples(), "{m}");
        }
        assert_eq!(fresh.curve(), pooled.curve());
    }

    #[test]
    fn profiling_is_deterministic() {
        let cfg = ProfilingConfig::fast().without_curves();
        let a = profile_workload(&tiny_kv(), &MachineConfig::broadwell(), &cfg);
        let b = profile_workload(&tiny_kv(), &MachineConfig::broadwell(), &cfg);
        assert_eq!(
            a.dist(DistMetric::Ipc).samples(),
            b.dist(DistMetric::Ipc).samples()
        );
    }
}
