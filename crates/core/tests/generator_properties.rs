//! Property-based tests of the dataset generators and error model at the
//! core-crate level: any unit-cube point must instantiate to a valid,
//! runnable workload (the optimizer explores the whole cube).

use datamime::error_model::{profile_error, MetricWeights};
use datamime::generator::{
    DatasetGenerator, DnnGenerator, KvGenerator, ParamSpec, QuantizedGenerator, SiloGenerator,
    XapianGenerator,
};
use datamime::profile::{CurvePoint, Profile};
use datamime::profiler::{profile_workload, ProfilingConfig};
use datamime_sim::{MachineConfig, MetricSample};
use proptest::prelude::*;

fn unit_vec(dims: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, dims)
}

fn any_profile() -> impl Strategy<Value = Profile> {
    prop::collection::vec(
        (0.0f64..4.0, 0.0f64..100.0, 0.0f64..1.0, 0.0f64..10.0),
        1..24,
    )
    .prop_map(|rows| {
        let samples: Vec<MetricSample> = rows
            .iter()
            .map(|&(ipc, mpki, util, bw)| MetricSample {
                ipc,
                l1i_mpki: mpki,
                l1d_mpki: mpki / 2.0,
                l2_mpki: mpki / 3.0,
                llc_mpki: mpki / 4.0,
                itlb_mpki: mpki / 100.0,
                dtlb_mpki: mpki / 50.0,
                branch_mpki: mpki / 10.0,
                cpu_utilization: util,
                memory_bw_gbps: bw,
            })
            .collect();
        let curve = vec![
            CurvePoint {
                cache_bytes: 1 << 20,
                llc_mpki: rows[0].1,
                ipc: rows[0].0,
            },
            CurvePoint {
                cache_bytes: 12 << 20,
                llc_mpki: rows[0].1 / 2.0,
                ipc: rows[0].0,
            },
        ];
        Profile::from_samples(&samples, curve).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kv_generator_instantiates_anywhere(unit in unit_vec(6)) {
        let g = KvGenerator::new();
        let w = g.instantiate(&unit);
        prop_assert!(w.load.qps > 0.0);
        prop_assert!(w.app.build().footprint_bytes() > 0);
    }

    #[test]
    fn silo_generator_instantiates_anywhere(unit in unit_vec(7)) {
        let g = SiloGenerator::new();
        let w = g.instantiate(&unit);
        prop_assert!(w.app.build().footprint_bytes() > 0);
    }

    #[test]
    fn xapian_generator_instantiates_anywhere(unit in unit_vec(4)) {
        let g = XapianGenerator::new();
        let w = g.instantiate(&unit);
        prop_assert!(w.app.build().footprint_bytes() > 0);
    }

    #[test]
    fn dnn_generator_instantiates_anywhere(unit in unit_vec(6)) {
        let g = DnnGenerator::new();
        let w = g.instantiate(&unit);
        prop_assert!(w.app.build().footprint_bytes() > 0);
    }

    #[test]
    fn denormalize_respects_bounds_and_scale(
        u in 0.0f64..=1.0,
        lo in 0.1f64..100.0,
        span in 1.0f64..1000.0,
    ) {
        let ilo = lo.ceil();
        let ihi = (lo + span).floor().max(ilo + 1.0);
        for spec in [
            ParamSpec::linear("x", lo, lo + span),
            ParamSpec::log("x", lo, lo + span),
            ParamSpec::int("x", ilo, ihi),
            ParamSpec::int_log("x", ilo.max(1.0), ihi.max(2.0)),
        ] {
            let v = spec.denormalize(u);
            prop_assert!(v >= spec.lo - 1e-9 && v <= spec.hi + 1e-9, "{v} not in [{}, {}]", spec.lo, spec.hi);
            if spec.integer {
                prop_assert!((v - v.round()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn profile_error_is_symmetric_nonnegative_identity(a in any_profile(), b in any_profile()) {
        let w = MetricWeights::equal();
        let ab = profile_error(&a, &b, &w).total;
        let ba = profile_error(&b, &a, &w).total;
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9 * (1.0 + ab));
        prop_assert!(profile_error(&a, &a, &w).total.abs() < 1e-12);
    }

    #[test]
    fn error_breakdown_total_matches_weighted_sum(a in any_profile(), b in any_profile()) {
        let w = MetricWeights::equal();
        let e = profile_error(&a, &b, &w);
        let sum: f64 = e.dists.values().sum::<f64>() + e.curves.values().sum::<f64>();
        prop_assert!((e.total - sum).abs() < 1e-9 * (1.0 + sum));
    }
}

// Profiling is a full simulator run, so this property gets its own small
// case budget.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Soundness of the evaluation memo cache, as a property: the cache
    /// keys on the *quantized* parameter point, so a hit is only correct
    /// if (a) every unit point in a grid cell instantiates the identical
    /// workload and (b) profiling that workload is reproducible byte for
    /// byte. (Worker-count independence of a whole cached search is the
    /// deterministic `outcome_is_bit_identical_across_worker_counts`
    /// test in `core::search` — the cache is engine-thread-only, so no
    /// per-point property depends on the worker count.)
    #[test]
    fn cached_and_fresh_evaluation_agree_bit_for_bit(unit in unit_vec(6)) {
        let g = QuantizedGenerator::new(KvGenerator::new(), 4);
        let snapped: Vec<f64> = g
            .param_specs()
            .iter()
            .zip(&unit)
            .map(|(spec, &u)| spec.snap(u))
            .collect();
        // The raw point and its grid representative build one workload…
        let fresh = g.instantiate(&unit);
        let cached = g.instantiate(&snapped);
        prop_assert_eq!(format!("{fresh:?}"), format!("{cached:?}"));
        // …and that workload profiles to identical bytes every time.
        let machine = MachineConfig::broadwell();
        let profiling = ProfilingConfig::fast().without_curves();
        let p_fresh = profile_workload(&fresh, &machine, &profiling);
        let p_cached = profile_workload(&cached, &machine, &profiling);
        prop_assert_eq!(p_fresh.to_tsv(), p_cached.to_tsv());
    }
}
