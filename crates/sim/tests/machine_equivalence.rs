//! Arena-reuse equivalence: a `reinit`ed simulator must be bit-identical
//! to a freshly constructed one on any subsequent event stream.
//!
//! This is what lets `EvalArena` (crates/core) recycle `Machine`s across
//! search evaluations instead of reallocating the multi-megabyte LLC model
//! per candidate: the pool hands out state that behaves exactly like
//! `Machine::new`, counter for counter.

use datamime_sim::{Cache, CacheConfig, Machine, MachineConfig, Replacement, Tlb, TlbConfig};
use proptest::prelude::*;

fn any_machine_config() -> impl Strategy<Value = MachineConfig> {
    prop_oneof![
        Just(MachineConfig::broadwell()),
        Just(MachineConfig::zen2()),
        Just(MachineConfig::silvermont()),
    ]
}

/// One simulated event; streams of these drive both machines.
#[derive(Debug, Clone)]
enum Event {
    Exec { pc: u64, bytes: u64, instrs: u64 },
    Load { addr: u64, size: u64 },
    Store { addr: u64, size: u64 },
    Branch { pc: u64, taken: bool },
}

fn any_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u64..1 << 30, 0u64..1024, 1u64..256).prop_map(|(pc, bytes, instrs)| Event::Exec {
            pc,
            bytes,
            instrs
        }),
        (0u64..1 << 30, 1u64..64).prop_map(|(addr, size)| Event::Load { addr, size }),
        (0u64..1 << 30, 1u64..64).prop_map(|(addr, size)| Event::Store { addr, size }),
        (0u64..1 << 20, any::<bool>()).prop_map(|(pc, taken)| Event::Branch { pc, taken }),
    ]
}

fn replay(m: &mut Machine, events: &[Event]) {
    for e in events {
        match *e {
            Event::Exec { pc, bytes, instrs } => m.exec(pc, bytes, instrs),
            Event::Load { addr, size } => m.load(addr, size),
            Event::Store { addr, size } => m.store(addr, size),
            Event::Branch { pc, taken } => m.branch(pc, taken),
        }
    }
}

proptest! {
    /// Run a machine through one stream, `reinit` it, replay a second
    /// stream — the counters must equal a fresh machine's bit for bit.
    #[test]
    fn reinit_machine_matches_fresh(
        cfg in any_machine_config(),
        warmup in prop::collection::vec(any_event(), 0..60),
        stream in prop::collection::vec(any_event(), 1..120),
    ) {
        let mut recycled = Machine::new(cfg.clone());
        replay(&mut recycled, &warmup);
        recycled.reinit(cfg.clone());

        let mut fresh = Machine::new(cfg);
        replay(&mut recycled, &stream);
        replay(&mut fresh, &stream);
        prop_assert_eq!(recycled.counters(), fresh.counters());
    }

    /// Same property one level down, for a pooled cache: `reinit` must
    /// reproduce `Cache::new` exactly, including replacement state and the
    /// DRRIP set-dueling counters — even across a geometry change, which
    /// exercises the reallocation path.
    #[test]
    fn reinit_cache_matches_fresh(
        warm_cfg in prop_oneof![
            Just(CacheConfig::new(4 * 1024, 8)),
            Just(CacheConfig {
                size_bytes: 48 * 1024,
                ways: 12,
                line_bytes: 64,
                replacement: Replacement::Drrip,
            }),
        ],
        cfg in prop_oneof![
            Just(CacheConfig::new(4 * 1024, 8)),
            Just(CacheConfig::new(2 * 1024, 4)),
            Just(CacheConfig {
                size_bytes: 16 * 1024,
                ways: 8,
                line_bytes: 64,
                replacement: Replacement::Drrip,
            }),
        ],
        warmup in prop::collection::vec((0u64..1 << 18, any::<bool>()), 0..200),
        stream in prop::collection::vec((0u64..1 << 18, any::<bool>()), 1..400),
    ) {
        let mut recycled = Cache::new(warm_cfg);
        for &(addr, write) in &warmup {
            recycled.access(addr, write);
        }
        recycled.reinit(cfg);

        let mut fresh = Cache::new(cfg);
        for &(addr, write) in &stream {
            prop_assert_eq!(recycled.access(addr, write), fresh.access(addr, write));
        }
        prop_assert_eq!(recycled.hits(), fresh.hits());
        prop_assert_eq!(recycled.misses(), fresh.misses());
    }

    /// And for a pooled TLB.
    #[test]
    fn reinit_tlb_matches_fresh(
        warm_cfg in prop_oneof![Just(TlbConfig::new(64, 4)), Just(TlbConfig::new(128, 8))],
        cfg in prop_oneof![Just(TlbConfig::new(64, 4)), Just(TlbConfig::new(32, 32))],
        warmup in prop::collection::vec(0u64..1 << 26, 0..200),
        stream in prop::collection::vec(0u64..1 << 26, 1..400),
    ) {
        let mut recycled = Tlb::new(warm_cfg);
        for &addr in &warmup {
            recycled.access(addr);
        }
        recycled.reinit(cfg);

        let mut fresh = Tlb::new(cfg);
        for &addr in &stream {
            prop_assert_eq!(recycled.access(addr), fresh.access(addr));
        }
        prop_assert_eq!(recycled.hits(), fresh.hits());
        prop_assert_eq!(recycled.misses(), fresh.misses());
    }
}
