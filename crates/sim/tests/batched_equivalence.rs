//! Equivalence of the batched/specialized cache and TLB paths with the
//! straight-line reference transcriptions in `datamime_sim::reference`.
//!
//! These are the gate for every hot-path rewrite (see docs/PERFORMANCE.md):
//! the optimized `Cache`/`Tlb` must match `RefCache`/`RefTlb` — and the
//! span/block batch APIs must match their own per-access formulation —
//! access for access, counter for counter, on arbitrary streams.

use datamime_sim::{Cache, CacheConfig, RefCache, RefTlb, Replacement, Tlb, TlbConfig, LINE_BYTES};
use proptest::prelude::*;

/// Geometries covering every specialized path: 8-way LRU (fused span/block
/// fast path), narrow LRU (generic scalar path), and the const-width DRRIP
/// specializations for 8/12/16 ways plus the runtime-width fallback.
fn any_cache_config() -> impl Strategy<Value = CacheConfig> {
    prop_oneof![
        Just(CacheConfig::new(32 * 1024, 8)),
        Just(CacheConfig::new(4 * 1024, 8)),
        Just(CacheConfig::new(2 * 1024, 4)),
        Just(CacheConfig::new(512, 2)),
        Just(CacheConfig {
            size_bytes: 16 * 1024,
            ways: 8,
            line_bytes: 64,
            replacement: Replacement::Drrip,
        }),
        Just(CacheConfig {
            size_bytes: 48 * 1024,
            ways: 12,
            line_bytes: 64,
            replacement: Replacement::Drrip,
        }),
        Just(CacheConfig {
            size_bytes: 64 * 1024,
            ways: 16,
            line_bytes: 64,
            replacement: Replacement::Drrip,
        }),
        Just(CacheConfig {
            size_bytes: 24 * 1024,
            ways: 6,
            line_bytes: 64,
            replacement: Replacement::Drrip,
        }),
    ]
}

proptest! {
    /// Per-access API versus the reference model: identical outcomes
    /// (including write-back victim addresses) and identical counters on
    /// arbitrary read/write streams.
    #[test]
    fn cache_matches_reference(
        cfg in any_cache_config(),
        addrs in prop::collection::vec((0u64..1 << 22, any::<bool>()), 1..600),
    ) {
        let mut fast = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for &(addr, write) in &addrs {
            prop_assert_eq!(fast.access(addr, write), reference.access(addr, write));
        }
        prop_assert_eq!(fast.hits(), reference.hits());
        prop_assert_eq!(fast.misses(), reference.misses());
    }

    /// CAT-style repartitioning mid-stream preserves equivalence: retained
    /// ways keep their lines in both models.
    #[test]
    fn cache_matches_reference_across_set_ways(
        before in prop::collection::vec((0u64..1 << 20, any::<bool>()), 1..200),
        after in prop::collection::vec((0u64..1 << 20, any::<bool>()), 1..200),
        new_ways in 1u32..12,
    ) {
        let cfg = CacheConfig {
            size_bytes: 48 * 1024,
            ways: 12,
            line_bytes: 64,
            replacement: Replacement::Drrip,
        };
        let mut fast = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for &(addr, write) in &before {
            prop_assert_eq!(fast.access(addr, write), reference.access(addr, write));
        }
        fast.set_ways(new_ways);
        reference.set_ways(new_ways);
        for &(addr, write) in &after {
            prop_assert_eq!(fast.access(addr, write), reference.access(addr, write));
        }
        prop_assert_eq!(fast.hits(), reference.hits());
        prop_assert_eq!(fast.misses(), reference.misses());
    }

    /// `access_span_clean` versus `n` per-access calls on the same cache
    /// state: identical miss masks, write-back lists, and counters. The
    /// interleaved dirtying stream makes span installs evict dirty victims,
    /// and the small 8-way geometry drives spans across the set-array end,
    /// exercising both the fused fast path and the wrapping fallback.
    #[test]
    fn span_clean_matches_per_access(
        cfg in prop_oneof![
            Just(CacheConfig::new(4 * 1024, 8)),
            Just(CacheConfig::new(2 * 1024, 4)),
            Just(CacheConfig {
                size_bytes: 16 * 1024,
                ways: 8,
                line_bytes: 64,
                replacement: Replacement::Drrip,
            }),
        ],
        ops in prop::collection::vec(
            (0u64..1 << 16, 1u32..=Cache::SPAN_LINES, any::<bool>()),
            1..300,
        ),
    ) {
        let mut spanning = Cache::new(cfg);
        let mut scalar = Cache::new(cfg);
        let (mut wb_span, mut wb_scalar) = (Vec::new(), Vec::new());
        for &(addr, n, dirtying) in &ops {
            if dirtying {
                // A write through the per-access API on both caches seeds
                // dirty lines for later span evictions to report.
                prop_assert_eq!(spanning.access(addr, true), scalar.access(addr, true));
                continue;
            }
            let mask = spanning.access_span_clean(addr, n, &mut wb_span);
            let mut expect = 0u64;
            for k in 0..u64::from(n) {
                match scalar.access(addr + k * LINE_BYTES, false) {
                    datamime_sim::Access::Hit => {}
                    datamime_sim::Access::Miss { writeback_of } => {
                        expect |= 1 << k;
                        if let Some(victim) = writeback_of {
                            wb_scalar.push(victim);
                        }
                    }
                }
            }
            prop_assert_eq!(mask, expect);
        }
        prop_assert_eq!(&wb_span, &wb_scalar);
        prop_assert_eq!(spanning.hits(), scalar.hits());
        prop_assert_eq!(spanning.misses(), scalar.misses());
    }

    /// `access_block_clean` versus a per-access loop: identical miss lists,
    /// write-back lists, and counters, across the fused 8-way LRU arm, the
    /// generic LRU arm, and the DRRIP arm.
    #[test]
    fn block_clean_matches_per_access(
        cfg in any_cache_config(),
        seed_writes in prop::collection::vec(0u64..1 << 18, 0..100),
        blocks in prop::collection::vec(
            prop::collection::vec(0u64..1 << 18, 0..64),
            1..20,
        ),
    ) {
        let mut batched = Cache::new(cfg);
        let mut scalar = Cache::new(cfg);
        for &addr in &seed_writes {
            prop_assert_eq!(batched.access(addr, true), scalar.access(addr, true));
        }
        let (mut wb_batched, mut wb_scalar) = (Vec::new(), Vec::new());
        for block in &blocks {
            let mut miss_batched = Vec::new();
            batched.access_block_clean(block, &mut miss_batched, &mut wb_batched);
            let mut miss_scalar = Vec::new();
            for &addr in block {
                if let datamime_sim::Access::Miss { writeback_of } = scalar.access(addr, false) {
                    miss_scalar.push(addr);
                    if let Some(victim) = writeback_of {
                        wb_scalar.push(victim);
                    }
                }
            }
            prop_assert_eq!(&miss_batched, &miss_scalar);
        }
        prop_assert_eq!(&wb_batched, &wb_scalar);
        prop_assert_eq!(batched.hits(), scalar.hits());
        prop_assert_eq!(batched.misses(), scalar.misses());
    }

    /// TLB versus the reference model on arbitrary translation streams.
    #[test]
    fn tlb_matches_reference(
        cfg in prop_oneof![
            Just(TlbConfig::new(64, 4)),
            Just(TlbConfig::new(128, 8)),
            Just(TlbConfig::new(32, 32)),
            Just(TlbConfig::new(16, 2)),
        ],
        addrs in prop::collection::vec(0u64..1 << 26, 1..600),
    ) {
        let mut fast = Tlb::new(cfg);
        let mut reference = RefTlb::new(cfg);
        for &addr in &addrs {
            prop_assert_eq!(fast.access(addr), reference.access(addr));
        }
        prop_assert_eq!(fast.hits(), reference.hits());
        prop_assert_eq!(fast.misses(), reference.misses());
    }
}
