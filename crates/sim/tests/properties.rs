//! Property-based tests of the simulator's physical invariants.

use datamime_sim::{
    lines_of, Cache, CacheConfig, Machine, MachineConfig, Replacement, Tlb, TlbConfig, LINE_BYTES,
};
use proptest::prelude::*;

fn any_machine() -> impl Strategy<Value = MachineConfig> {
    prop_oneof![
        Just(MachineConfig::broadwell()),
        Just(MachineConfig::zen2()),
        Just(MachineConfig::silvermont()),
    ]
}

proptest! {
    #[test]
    fn lines_of_covers_exactly_the_byte_range(addr in 0u64..1u64 << 40, size in 0u64..100_000) {
        let lines: Vec<u64> = lines_of(addr, size).collect();
        // Line-aligned, strictly increasing by one line.
        for w in lines.windows(2) {
            prop_assert_eq!(w[1] - w[0], LINE_BYTES);
        }
        prop_assert_eq!(lines[0], addr / LINE_BYTES * LINE_BYTES);
        let last_byte = if size == 0 { addr } else { addr + size - 1 };
        prop_assert_eq!(*lines.last().unwrap(), last_byte / LINE_BYTES * LINE_BYTES);
    }

    #[test]
    fn cache_misses_bounded_by_accesses(
        addrs in prop::collection::vec(0u64..1u64 << 24, 1..512),
        replacement in prop_oneof![Just(Replacement::Lru), Just(Replacement::Drrip)],
    ) {
        let mut c = Cache::new(CacheConfig { size_bytes: 16 * 1024, ways: 4, line_bytes: 64, replacement });
        for &a in &addrs {
            c.access(a, a % 3 == 0);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        // Distinct lines lower-bound misses (cold misses are compulsory).
        let mut distinct: Vec<u64> = addrs.iter().map(|a| a / 64).collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(c.misses() >= distinct.len() as u64);
    }

    #[test]
    fn repeated_single_line_hits_after_first(addr in 0u64..1u64 << 40, n in 2usize..64) {
        let mut c = Cache::new(CacheConfig::new(4096, 4));
        for _ in 0..n {
            c.access(addr, false);
        }
        prop_assert_eq!(c.misses(), 1);
        prop_assert_eq!(c.hits(), (n - 1) as u64);
    }

    #[test]
    fn tlb_miss_count_bounded_by_distinct_pages(addrs in prop::collection::vec(0u64..1u64 << 30, 1..256)) {
        let mut t = Tlb::new(TlbConfig::new(1024, 4)); // large enough to never evict here
        for &a in &addrs {
            t.access(a);
        }
        let mut pages: Vec<u64> = addrs.iter().map(|a| a / 4096).collect();
        pages.sort_unstable();
        pages.dedup();
        prop_assert_eq!(t.misses(), pages.len() as u64);
    }

    #[test]
    fn machine_counters_are_consistent(
        cfg in any_machine(),
        ops in prop::collection::vec((0u64..1u64 << 30, 1u64..4096, any::<bool>()), 1..200),
    ) {
        let mut m = Machine::new(cfg.clone());
        let mut instrs = 0u64;
        for &(addr, size, write) in &ops {
            m.exec(0x4000_0000 + addr % 65536, 64 + addr % 4096, 50);
            instrs += 50;
            if write {
                m.store(0x10_0000_0000 + addr, size);
            } else {
                m.load(0x10_0000_0000 + addr, size);
            }
        }
        let c = m.counters();
        prop_assert_eq!(c.instructions, instrs);
        prop_assert!(c.busy_cycles >= (instrs as f64 / cfg.issue_width) as u64);
        // Miss hierarchy: L2 misses cannot exceed L1 misses (I+D), LLC
        // misses cannot exceed L2 misses (demand path; write-backs allocate
        // below L1 without counting as demand misses).
        prop_assert!(c.l2_misses <= c.l1i_misses + c.l1d_misses);
        prop_assert!(c.llc_misses <= c.l2_misses + 1);
        // Memory traffic covers at least the LLC fills.
        prop_assert!(c.memory_bytes >= c.llc_misses * 64);
        prop_assert!(c.ipc() <= cfg.issue_width + 1e-9);
    }

    #[test]
    fn partitioned_llc_never_outperforms_full(seed_addrs in prop::collection::vec(0u64..1u64 << 26, 32..256)) {
        let full_cfg = MachineConfig::broadwell();
        let slim_cfg = full_cfg.with_llc_ways(1);
        let mut full = Machine::new(full_cfg);
        let mut slim = Machine::new(slim_cfg);
        for _ in 0..3 {
            for &a in &seed_addrs {
                full.load(0x10_0000_0000 + a, 64);
                slim.load(0x10_0000_0000 + a, 64);
            }
        }
        prop_assert!(slim.counters().llc_misses >= full.counters().llc_misses);
    }

    #[test]
    fn idle_time_never_changes_microarch_counters(cycles in 0u64..1u64 << 32) {
        let mut m = Machine::new(MachineConfig::broadwell());
        m.exec(0x4000_0000, 256, 100);
        let before = *m.counters();
        m.idle(cycles);
        let after = m.counters();
        prop_assert_eq!(after.busy_cycles, before.busy_cycles);
        prop_assert_eq!(after.instructions, before.instructions);
        prop_assert_eq!(after.idle_cycles, before.idle_cycles + cycles);
    }
}
