//! Interval sampling of performance counters.
//!
//! The paper samples all performance counters at 20 M-cycle intervals and
//! builds *distributions* from the samples (Sec. III-A). [`Sampler`] is the
//! analog: the harness polls it as simulation advances, and whenever a full
//! wall-clock interval has elapsed it appends one [`MetricSample`] computed
//! from the counter delta over that interval.

use crate::counters::Counters;
use crate::machine::Machine;

/// Default sampling interval: 20 M cycles, as in the paper.
pub const DEFAULT_INTERVAL_CYCLES: u64 = 20_000_000;

/// Derived metrics over one sampling interval — one row of the profile.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricSample {
    /// Instructions per busy cycle.
    pub ipc: f64,
    /// L1 instruction-cache misses per kilo-instruction.
    pub l1i_mpki: f64,
    /// L1 data-cache misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// Last-level-cache misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Instruction-TLB misses per kilo-instruction.
    pub itlb_mpki: f64,
    /// Data-TLB misses per kilo-instruction.
    pub dtlb_mpki: f64,
    /// Branch mispredictions per kilo-instruction.
    pub branch_mpki: f64,
    /// Core busy fraction over the wall-clock interval.
    pub cpu_utilization: f64,
    /// Memory traffic in GB/s over the wall-clock interval.
    pub memory_bw_gbps: f64,
}

impl MetricSample {
    /// Computes a sample from a counter delta at `freq_ghz`.
    pub fn from_delta(d: &Counters, freq_ghz: f64) -> Self {
        MetricSample {
            ipc: d.ipc(),
            l1i_mpki: d.mpki(d.l1i_misses),
            l1d_mpki: d.mpki(d.l1d_misses),
            l2_mpki: d.mpki(d.l2_misses),
            llc_mpki: d.mpki(d.llc_misses),
            itlb_mpki: d.mpki(d.itlb_misses),
            dtlb_mpki: d.mpki(d.dtlb_misses),
            branch_mpki: d.mpki(d.branch_mispredicts),
            cpu_utilization: d.utilization(),
            memory_bw_gbps: d.memory_bandwidth_gbps(freq_ghz),
        }
    }
}

/// Polls a [`Machine`]'s counters and cuts one [`MetricSample`] per elapsed
/// wall-clock interval.
///
/// # Examples
///
/// ```
/// use datamime_sim::{Machine, MachineConfig, Sampler};
///
/// let mut m = Machine::new(MachineConfig::broadwell());
/// let mut s = Sampler::new(1_000_000); // 1 M-cycle intervals for the demo
/// for _ in 0..1000 {
///     m.exec(0x4000_0000, 4096, 4096);
///     s.poll(&m);
/// }
/// assert!(!s.samples().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Sampler {
    interval: u64,
    last: Counters,
    /// Wall-cycle threshold for the next sample (`last_wall + interval`),
    /// precomputed so the per-poll fast path is a single compare with no
    /// subtraction that could roll over.
    next_wall: u64,
    samples: Vec<MetricSample>,
}

impl Sampler {
    /// Creates a sampler cutting samples every `interval_cycles` wall-clock
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval_cycles` is zero.
    pub fn new(interval_cycles: u64) -> Self {
        assert!(interval_cycles > 0, "interval must be positive");
        Sampler {
            interval: interval_cycles,
            last: Counters::new(),
            next_wall: interval_cycles,
            samples: Vec::new(),
        }
    }

    /// Creates a sampler with the paper's 20 M-cycle interval.
    pub fn paper_default() -> Self {
        Sampler::new(DEFAULT_INTERVAL_CYCLES)
    }

    /// Checks whether at least one interval has elapsed since the last
    /// sample and, if so, cuts a sample from the delta.
    ///
    /// Polling granularity is expected to be much finer than the interval
    /// (the harness polls after every request), so each elapsed interval
    /// yields exactly one sample with negligible boundary jitter.
    #[inline]
    pub fn poll(&mut self, machine: &Machine) {
        let wall = machine.wall_cycles();
        if wall < self.next_wall {
            return;
        }
        self.cut_sample(machine, wall);
    }

    /// Slow path of [`Sampler::poll`]: cuts a sample from the counter delta
    /// and arms the next threshold. Kept out of line so the per-request
    /// fast path stays a compare-and-return.
    #[cold]
    fn cut_sample(&mut self, machine: &Machine, wall: u64) {
        let delta = machine.counters().delta_since(&self.last);
        self.samples
            .push(MetricSample::from_delta(&delta, machine.config().freq_ghz));
        self.last = *machine.counters();
        self.next_wall = wall.saturating_add(self.interval);
    }

    /// Resets the sampler in place to exactly the state
    /// [`Sampler::new(interval_cycles)`](Sampler::new) would produce,
    /// keeping the sample buffer's allocation (the arena-reuse hook: a
    /// pooled sampler stops reallocating its samples vector once it has
    /// grown to a search's steady-state profile length).
    ///
    /// # Panics
    ///
    /// Panics if `interval_cycles` is zero.
    pub fn reinit(&mut self, interval_cycles: u64) {
        assert!(interval_cycles > 0, "interval must be positive");
        self.interval = interval_cycles;
        self.last = Counters::new();
        self.next_wall = interval_cycles;
        self.samples.clear();
    }

    /// Discards accumulated state so the next sample starts fresh — used to
    /// skip warm-up.
    pub fn restart(&mut self, machine: &Machine) {
        self.last = *machine.counters();
        self.next_wall = machine.wall_cycles().saturating_add(self.interval);
        self.samples.clear();
    }

    /// Samples collected so far.
    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    /// Consumes the sampler, returning its samples.
    pub fn into_samples(self) -> Vec<MetricSample> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn cuts_one_sample_per_interval() {
        let mut m = Machine::new(MachineConfig::broadwell());
        let mut s = Sampler::new(10_000);
        // Each exec burns ~250 busy cycles; poll frequently.
        for _ in 0..400 {
            m.exec(0x4000_0000, 64, 1000);
            s.poll(&m);
        }
        let wall = m.wall_cycles();
        let expected = wall / 10_000;
        let got = s.samples().len() as u64;
        assert!(
            got >= expected.saturating_sub(2) && got <= expected + 1,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn samples_reflect_phase_changes() {
        let mut m = Machine::new(MachineConfig::broadwell());
        let mut s = Sampler::new(50_000);
        // Phase 1: core-bound.
        for _ in 0..200 {
            m.exec(0x4000_0000, 64, 2000);
            s.poll(&m);
        }
        let phase1 = s.samples().len();
        assert!(phase1 > 0);
        // Phase 2: memory-bound streaming.
        for i in 0..30_000u64 {
            m.exec(0x4000_0000, 64, 50);
            m.load(0x10_0000_0000 + i * 4096, 8);
            s.poll(&m);
        }
        let all = s.samples();
        let ipc1 = all[..phase1].iter().map(|x| x.ipc).sum::<f64>() / phase1 as f64;
        let ipc2 = all[phase1..].iter().map(|x| x.ipc).sum::<f64>() / (all.len() - phase1) as f64;
        assert!(ipc2 < ipc1 * 0.7, "phase2 ipc {ipc2} vs phase1 {ipc1}");
    }

    #[test]
    fn restart_discards_warmup() {
        let mut m = Machine::new(MachineConfig::broadwell());
        let mut s = Sampler::new(1_000);
        m.exec(0x4000_0000, 64, 100_000);
        s.poll(&m);
        assert!(!s.samples().is_empty());
        s.restart(&m);
        assert!(s.samples().is_empty());
    }

    #[test]
    fn idle_time_counts_toward_intervals() {
        let mut m = Machine::new(MachineConfig::broadwell());
        let mut s = Sampler::new(10_000);
        m.exec(0x4000_0000, 64, 100);
        m.idle(100_000);
        s.poll(&m);
        assert_eq!(s.samples().len(), 1);
        let sample = s.samples()[0];
        assert!(sample.cpu_utilization < 0.01);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        Sampler::new(0);
    }
}
