//! Branch direction prediction (gshare).

use crate::mem::Addr;

/// Geometry of a [`BranchPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchConfig {
    /// log2 of the pattern history table size.
    pub table_bits: u32,
    /// Number of global history bits folded into the index.
    pub history_bits: u32,
}

impl BranchConfig {
    /// Creates a branch predictor configuration.
    pub fn new(table_bits: u32, history_bits: u32) -> Self {
        BranchConfig {
            table_bits,
            history_bits,
        }
    }
}

/// A gshare branch predictor: a table of 2-bit saturating counters indexed
/// by `pc XOR global_history`.
///
/// Data-dependent branches emitted by the workloads (key comparisons, hash
/// probes, zipf-skewed dispatch) exercise it exactly the way real datasets
/// exercise hardware predictors: higher entropy in the data means more
/// mispredictions.
///
/// # Examples
///
/// ```
/// use datamime_sim::{BranchPredictor, BranchConfig};
///
/// let mut bp = BranchPredictor::new(BranchConfig::new(12, 8));
/// // A branch that is always taken becomes perfectly predicted.
/// for _ in 0..10 { bp.predict_and_update(0x400, true); }
/// assert!(bp.predict_and_update(0x400, true));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    cfg: BranchConfig,
    table: Vec<u8>,
    history: u64,
    lookups: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    /// Builds a predictor.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is zero or above 28.
    pub fn new(cfg: BranchConfig) -> Self {
        assert!(
            cfg.table_bits > 0 && cfg.table_bits <= 28,
            "unreasonable table size"
        );
        BranchPredictor {
            cfg,
            table: vec![1; 1 << cfg.table_bits], // weakly not-taken
            history: 0,
            lookups: 0,
            mispredicts: 0,
        }
    }

    /// Predicts the branch at `pc`, updates the predictor with the actual
    /// `taken` outcome, and returns whether the prediction was correct.
    pub fn predict_and_update(&mut self, pc: Addr, taken: bool) -> bool {
        self.lookups += 1;
        let mask = (1u64 << self.cfg.table_bits) - 1;
        let hist = self.history & ((1u64 << self.cfg.history_bits) - 1);
        let idx = (((pc >> 2) ^ hist) & mask) as usize;
        let ctr = self.table[idx];
        let predicted = ctr >= 2;
        let correct = predicted == taken;
        if !correct {
            self.mispredicts += 1;
        }
        self.table[idx] = match (taken, ctr) {
            (true, c) if c < 3 => c + 1,
            (false, c) if c > 0 => c - 1,
            (_, c) => c,
        };
        self.history = (self.history << 1) | u64::from(taken);
        correct
    }

    /// Resets the predictor in place to exactly the state
    /// [`BranchPredictor::new(cfg)`](BranchPredictor::new) would produce,
    /// reusing the pattern-history table allocation when its size is
    /// unchanged (the arena-reuse hook).
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is zero or above 28.
    pub fn reinit(&mut self, cfg: BranchConfig) {
        assert!(
            cfg.table_bits > 0 && cfg.table_bits <= 28,
            "unreasonable table size"
        );
        let n = 1usize << cfg.table_bits;
        if n == self.table.len() {
            self.table.fill(1); // weakly not-taken
        } else {
            self.table.clear();
            self.table.resize(n, 1);
        }
        self.cfg = cfg;
        self.history = 0;
        self.lookups = 0;
        self.mispredicts = 0;
    }

    /// Cumulative predictions made.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Cumulative mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamime_stats::Rng;

    #[test]
    fn learns_monomorphic_branch() {
        let mut bp = BranchPredictor::new(BranchConfig::new(10, 4));
        for _ in 0..100 {
            bp.predict_and_update(0x1000, true);
        }
        let before = bp.mispredicts();
        for _ in 0..100 {
            bp.predict_and_update(0x1000, true);
        }
        assert_eq!(bp.mispredicts(), before);
    }

    #[test]
    fn random_branch_mispredicts_half() {
        let mut bp = BranchPredictor::new(BranchConfig::new(12, 8));
        let mut rng = Rng::with_seed(2);
        let n = 20_000;
        for _ in 0..n {
            bp.predict_and_update(0x2000, rng.bool(0.5));
        }
        let rate = bp.mispredicts() as f64 / bp.lookups() as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn biased_branch_mispredict_rate_tracks_bias() {
        let mut bp = BranchPredictor::new(BranchConfig::new(12, 0));
        let mut rng = Rng::with_seed(3);
        let n = 50_000;
        for _ in 0..n {
            bp.predict_and_update(0x3000, rng.bool(0.9));
        }
        let rate = bp.mispredicts() as f64 / bp.lookups() as f64;
        // With history disabled, a 90/10 branch mispredicts close to 10%.
        assert!(rate > 0.05 && rate < 0.2, "rate {rate}");
    }

    #[test]
    fn history_learns_alternating_pattern() {
        let mut with_hist = BranchPredictor::new(BranchConfig::new(12, 8));
        let mut no_hist = BranchPredictor::new(BranchConfig::new(12, 0));
        for i in 0..20_000u64 {
            let taken = i % 2 == 0;
            with_hist.predict_and_update(0x4000, taken);
            no_hist.predict_and_update(0x4000, taken);
        }
        assert!(with_hist.mispredicts() * 4 < no_hist.mispredicts());
    }

    #[test]
    #[should_panic(expected = "unreasonable table size")]
    fn zero_table_panics() {
        BranchPredictor::new(BranchConfig::new(0, 0));
    }
}
