//! Simulated address space and allocator.
//!
//! Workload applications in this reproduction operate on *simulated*
//! addresses: their data structures (hash tables, B-trees, posting lists,
//! tensors) are laid out in a flat 64-bit address space by [`SimAlloc`], and
//! every access they perform is replayed through the machine's cache
//! hierarchy. This is the substitution for running real binaries under
//! hardware performance counters: the data-structure shape — and therefore
//! the dataset — determines the access stream, exactly as in the paper.

use std::fmt;

/// A simulated virtual address.
pub type Addr = u64;

/// Size of a cache line in bytes (fixed at 64 across all modeled machines).
pub const LINE_BYTES: u64 = 64;

/// Size of a page in bytes (4 KiB, used by the TLB models).
pub const PAGE_BYTES: u64 = 4096;

/// Segments of the simulated address space.
///
/// Code and data live in disjoint gigabyte-aligned segments so instruction
/// and data footprints never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Program text: code regions, one per modeled function.
    Code,
    /// Heap data: application objects.
    Heap,
    /// Stack-like scratch data: request buffers, temporaries.
    Scratch,
}

impl Segment {
    fn base(self) -> Addr {
        match self {
            Segment::Code => 0x0000_4000_0000,
            Segment::Heap => 0x0010_0000_0000,
            Segment::Scratch => 0x0700_0000_0000,
        }
    }
}

/// Error returned when an allocation request is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    size: u64,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid allocation request of {} bytes", self.size)
    }
}

impl std::error::Error for AllocError {}

/// A bump allocator with size-class free lists over the simulated address
/// space.
///
/// Freed blocks are recycled by size class (powers of two up to 1 MiB),
/// which keeps long-running workloads like the key-value store's LRU
/// eviction from growing their footprint without bound — mirroring how
/// slab allocators behave in memcached.
///
/// # Examples
///
/// ```
/// use datamime_sim::{SimAlloc, Segment};
///
/// let mut a = SimAlloc::new();
/// let p = a.alloc(Segment::Heap, 100).unwrap();
/// let q = a.alloc(Segment::Heap, 100).unwrap();
/// assert_ne!(p, q);
/// a.free(Segment::Heap, p, 100);
/// let r = a.alloc(Segment::Heap, 100).unwrap();
/// assert_eq!(r, p); // recycled
/// ```
#[derive(Debug, Clone)]
pub struct SimAlloc {
    cursors: [u64; 3],
    free_lists: Vec<Vec<Addr>>,
}

const NUM_CLASSES: usize = 21; // 2^0 .. 2^20 (1 MiB)

fn class_of(size: u64) -> Option<usize> {
    if size == 0 || size > (1 << 20) {
        return None;
    }
    Some((64 - (size - 1).leading_zeros()) as usize)
}

impl SimAlloc {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        SimAlloc {
            cursors: [0; 3],
            free_lists: vec![Vec::new(); NUM_CLASSES],
        }
    }

    /// Allocates `size` bytes in `segment`, aligned to the cache-line size
    /// for allocations of a line or more.
    ///
    /// Allocations up to 1 MiB are recycled through size-class free lists;
    /// larger allocations always bump.
    ///
    /// # Errors
    ///
    /// Returns an error if `size` is zero.
    pub fn alloc(&mut self, segment: Segment, size: u64) -> Result<Addr, AllocError> {
        if size == 0 {
            return Err(AllocError { size });
        }
        if segment == Segment::Heap {
            if let Some(class) = class_of(size) {
                if let Some(addr) = self.free_lists[class].pop() {
                    return Ok(addr);
                }
            }
        }
        let idx = segment as usize;
        let align = if size >= LINE_BYTES { LINE_BYTES } else { 8 };
        let cur = self.cursors[idx].div_ceil(align) * align;
        // Round the *stored* size up to the size class so a recycled block
        // can hold anything in its class.
        let stored = class_of(size).map_or(size, |c| 1u64 << c);
        self.cursors[idx] = cur + stored;
        Ok(segment.base() + cur)
    }

    /// Returns a block to its size-class free list (heap only; other
    /// segments are arena-style and never recycled).
    pub fn free(&mut self, segment: Segment, addr: Addr, size: u64) {
        if segment != Segment::Heap {
            return;
        }
        if let Some(class) = class_of(size) {
            self.free_lists[class].push(addr);
        }
    }

    /// Total bytes ever bumped in a segment (an upper bound on footprint).
    pub fn used(&self, segment: Segment) -> u64 {
        self.cursors[segment as usize]
    }
}

impl Default for SimAlloc {
    fn default() -> Self {
        SimAlloc::new()
    }
}

/// Splits a byte range `[addr, addr + size)` into the cache lines it
/// touches, yielding each line-aligned address once.
pub fn lines_of(addr: Addr, size: u64) -> impl Iterator<Item = Addr> {
    let first = addr / LINE_BYTES;
    let last = if size == 0 {
        first
    } else {
        (addr + size - 1) / LINE_BYTES
    };
    (first..=last).map(|l| l * LINE_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_disjoint() {
        let mut a = SimAlloc::new();
        let c = a.alloc(Segment::Code, 1 << 20).unwrap();
        let h = a.alloc(Segment::Heap, 1 << 20).unwrap();
        let s = a.alloc(Segment::Scratch, 1 << 20).unwrap();
        assert!(c < h && h < s);
        assert!(h - c > (1 << 20));
    }

    #[test]
    fn zero_alloc_fails() {
        assert!(SimAlloc::new().alloc(Segment::Heap, 0).is_err());
    }

    #[test]
    fn line_alignment_for_large_allocs() {
        let mut a = SimAlloc::new();
        a.alloc(Segment::Heap, 10).unwrap();
        let p = a.alloc(Segment::Heap, 128).unwrap();
        assert_eq!(p % LINE_BYTES, 0);
    }

    #[test]
    fn free_then_alloc_recycles_same_class() {
        let mut a = SimAlloc::new();
        let p = a.alloc(Segment::Heap, 200).unwrap();
        a.free(Segment::Heap, p, 200);
        // 129..=256 share the class with 200.
        let q = a.alloc(Segment::Heap, 256).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn huge_allocations_bump() {
        let mut a = SimAlloc::new();
        let p = a.alloc(Segment::Heap, 4 << 20).unwrap();
        a.free(Segment::Heap, p, 4 << 20); // no-op: above the classed range
        let q = a.alloc(Segment::Heap, 4 << 20).unwrap();
        assert_ne!(p, q);
    }

    #[test]
    fn lines_of_spans() {
        let ls: Vec<_> = lines_of(0, 64).collect();
        assert_eq!(ls, vec![0]);
        let ls: Vec<_> = lines_of(60, 8).collect();
        assert_eq!(ls, vec![0, 64]);
        let ls: Vec<_> = lines_of(128, 130).collect();
        assert_eq!(ls, vec![128, 192, 256]);
        let ls: Vec<_> = lines_of(10, 0).collect();
        assert_eq!(ls, vec![0]);
    }

    #[test]
    fn used_tracks_bumping() {
        let mut a = SimAlloc::new();
        assert_eq!(a.used(Segment::Heap), 0);
        a.alloc(Segment::Heap, 64).unwrap();
        assert_eq!(a.used(Segment::Heap), 64);
    }
}
