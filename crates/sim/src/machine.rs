//! The simulated machine: cache hierarchy + core model + counters.

use crate::branch::BranchPredictor;
use crate::cache::{Access, Cache};
use crate::config::MachineConfig;
use crate::counters::Counters;
use crate::mem::{lines_of, Addr, LINE_BYTES, PAGE_BYTES};
use crate::tlb::Tlb;
use crate::trace::{Trace, TraceEvent};

/// An execution-driven model of one core of a [`MachineConfig`] platform.
///
/// Workloads drive the machine through three event kinds:
///
/// - [`Machine::exec`]: fetch-and-execute a straight-line code span
///   (exercises the L1I, ITLB, and charges base pipeline cycles);
/// - [`Machine::load`] / [`Machine::store`]: data accesses through the
///   D-side hierarchy;
/// - [`Machine::branch`]: a data-dependent conditional branch.
///
/// Cycle accounting uses an analytic throughput model: base cycles are
/// `instructions / issue_width`, and each miss/mispredict event adds a
/// penalty from [`crate::Penalties`], with data-side penalties divided by
/// the machine's effective memory-level parallelism. This reproduces the
/// first-order IPC behaviour that the paper's metrics capture while keeping
/// simulation fast enough for a 200-iteration Bayesian search.
///
/// # Examples
///
/// ```
/// use datamime_sim::{Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::broadwell());
/// m.exec(0x4000_0000, 256, 64); // run a 256-byte code span of 64 instrs
/// m.load(0x10_0000_0000, 8);
/// assert!(m.counters().instructions == 64);
/// assert!(m.counters().busy_cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: MachineConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Option<Cache>,
    itlb: Tlb,
    dtlb: Tlb,
    bp: BranchPredictor,
    counters: Counters,
    cycle_frac: f64,
    /// Stream-prefetcher state: last line seen per tracked stream.
    streams: [Addr; 16],
    stream_cursor: usize,
    /// Event recorder, active between `start_recording` and
    /// `stop_recording`.
    recorder: Option<Trace>,
    /// Reusable dirty-victim buffer for the span-probe calls.
    wb_scratch: Vec<Addr>,
}

/// Lines per batch in the block-phased frontend and data paths — see
/// [`Machine::BLOCK_LINES`].
const BLOCK_LINES: usize = 64;

impl Machine {
    /// Lines per batch in the block-phased frontend and data paths.
    ///
    /// Multi-line spans are processed in blocks of this many cache lines:
    /// within a block, each hardware unit (TLB, L1, the unified levels
    /// below) performs all of its probes in one tight loop over the block
    /// before the next unit runs, instead of every line taking a full trip
    /// through every unit. Each unit still observes its own accesses in
    /// original line order, so all counters stay bit-identical to the
    /// line-at-a-time formulation (see docs/PERFORMANCE.md).
    pub const BLOCK_LINES: usize = BLOCK_LINES;

    /// Builds a machine from its configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        Machine {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            llc: cfg.llc.map(Cache::new),
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
            bp: BranchPredictor::new(cfg.branch),
            counters: Counters::new(),
            cycle_frac: 0.0,
            streams: [Addr::MAX; 16],
            stream_cursor: 0,
            recorder: None,
            wb_scratch: Vec::new(),
            cfg,
        }
    }

    /// Reconfigures the machine in place to exactly the state
    /// [`Machine::new(cfg)`](Machine::new) would produce, reusing the cache,
    /// TLB, and predictor allocations wherever the geometry permits.
    ///
    /// This is the arena-reuse hook behind `datamime`'s `EvalArena`: a
    /// Broadwell machine owns ~3 MB of tag/metadata arrays, and a Bayesian
    /// search builds one machine per evaluation plus one per
    /// cache-sensitivity curve point — `reinit` turns each of those
    /// allocations into a `memset`. Behaviour after `reinit` is
    /// bit-identical to a fresh machine (property-tested in
    /// `tests/machine_equivalence.rs`).
    ///
    /// # Examples
    ///
    /// ```
    /// use datamime_sim::{Machine, MachineConfig};
    ///
    /// let mut m = Machine::new(MachineConfig::broadwell());
    /// m.exec(0x4000_0000, 256, 64);
    /// m.reinit(MachineConfig::broadwell());
    /// assert_eq!(m.counters().instructions, 0); // fresh state, reused arrays
    /// ```
    pub fn reinit(&mut self, cfg: MachineConfig) {
        self.l1i.reinit(cfg.l1i);
        self.l1d.reinit(cfg.l1d);
        self.l2.reinit(cfg.l2);
        match (&mut self.llc, cfg.llc) {
            (Some(c), Some(llc_cfg)) => c.reinit(llc_cfg),
            (slot, Some(llc_cfg)) => *slot = Some(Cache::new(llc_cfg)),
            (slot, None) => *slot = None,
        }
        self.itlb.reinit(cfg.itlb);
        self.dtlb.reinit(cfg.dtlb);
        self.bp.reinit(cfg.branch);
        self.counters = Counters::new();
        self.cycle_frac = 0.0;
        self.streams = [Addr::MAX; 16];
        self.stream_cursor = 0;
        self.recorder = None;
        self.wb_scratch.clear();
        self.cfg = cfg;
    }

    /// Repartitions the LLC to `ways` ways (Intel CAT style) *during*
    /// execution, as DynaWay does when measuring miss curves online. The
    /// resized LLC starts cold, so callers should allow a short warm-up
    /// before sampling.
    ///
    /// # Panics
    ///
    /// Panics if the machine has no LLC or `ways` is out of range.
    pub fn set_llc_ways(&mut self, ways: u32) {
        let base = self.cfg.llc.expect("machine has no LLC to partition");
        assert!(
            ways > 0 && ways <= base.ways,
            "invalid way allocation {ways}"
        );
        self.llc
            .as_mut()
            .expect("machine has no LLC to partition")
            .set_ways(ways);
    }

    /// Starts recording machine events into a [`Trace`]; any recording in
    /// progress is discarded.
    pub fn start_recording(&mut self) {
        self.recorder = Some(Trace::new());
    }

    /// Stops recording and returns the trace, or `None` if recording was
    /// never started.
    pub fn stop_recording(&mut self) -> Option<Trace> {
        self.recorder.take()
    }

    /// Returns `true` if `line` continues a tracked sequential stream
    /// (i.e. the hardware prefetcher would have the line in flight).
    /// Updates the stream table either way.
    ///
    /// The scan is branch-free: one match bitmask over all 16 slots (the
    /// compiler vectorizes the compare loop), then the first matching slot
    /// is updated — identical to the old early-exit loop, which also only
    /// ever updated the first match.
    #[inline]
    fn prefetcher_covers(&mut self, line: Addr) -> bool {
        let mut mask: u32 = 0;
        for (i, s) in self.streams.iter().enumerate() {
            let m = line == s.wrapping_add(LINE_BYTES) || line == *s;
            mask |= u32::from(m) << i;
        }
        if mask != 0 {
            self.streams[mask.trailing_zeros() as usize] = line;
            return true;
        }
        // New stream candidate: start tracking it.
        self.streams[self.stream_cursor] = line;
        self.stream_cursor = (self.stream_cursor + 1) % self.streams.len();
        false
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current counter values.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    #[inline]
    fn charge(&mut self, cycles: f64) {
        let total = cycles + self.cycle_frac;
        let whole = total as u64;
        self.cycle_frac = total - whole as f64;
        self.counters.busy_cycles += whole;
    }

    /// Accesses the unified levels below L1 (L2, then LLC, then memory) and
    /// returns the cycle penalty. Demand fills reaching this level are
    /// always reads: write-allocate dirties the L1, and dirty victims take
    /// [`Machine::below_l1_writeback`] instead.
    ///
    /// `#[inline]` + the outlined miss half keep the L2-hit case — the
    /// steady state of every loop whose working set fits the L2 — down to
    /// one probe and a constant, inlined into the fetch/data loops.
    #[inline]
    fn below_l1(&mut self, line: Addr) -> f64 {
        match self.l2.access(line, false) {
            Access::Hit => self.cfg.penalties.l2_hit,
            Access::Miss { writeback_of } => self.below_l1_miss(line, writeback_of),
        }
    }

    /// Miss half of [`Machine::below_l1`]: writeback propagation plus the
    /// LLC/memory fill.
    fn below_l1_miss(&mut self, line: Addr, writeback_of: Option<Addr>) -> f64 {
        self.counters.l2_misses += 1;
        let mut penalty = self.cfg.penalties.l2_hit;
        // Propagate the L2's dirty victim downward.
        if let Some(victim) = writeback_of {
            self.write_llc_or_memory(victim);
        }
        penalty += self.fill_from_llc_or_memory(line, false);
        penalty
    }

    /// Fills `line` from the LLC (or memory when absent / missing).
    fn fill_from_llc_or_memory(&mut self, line: Addr, write: bool) -> f64 {
        let p = self.cfg.penalties;
        match &mut self.llc {
            Some(llc) => match llc.access(line, write) {
                Access::Hit => p.llc_hit,
                Access::Miss { writeback_of } => {
                    self.counters.llc_misses += 1;
                    self.counters.memory_bytes += LINE_BYTES;
                    if writeback_of.is_some() {
                        self.counters.memory_bytes += LINE_BYTES;
                    }
                    p.memory
                }
            },
            None => {
                // No L3: the L2 is the last level; its miss already counted
                // at the caller, so the fill goes straight to memory.
                self.counters.llc_misses += 1;
                self.counters.memory_bytes += LINE_BYTES;
                p.memory
            }
        }
    }

    /// Writes a dirty victim line into the LLC (or memory when absent).
    fn write_llc_or_memory(&mut self, line: Addr) {
        match &mut self.llc {
            Some(llc) => {
                if let Access::Miss { writeback_of } = llc.access(line, true) {
                    // A write-back that misses the LLC allocates there and
                    // may itself evict a dirty line to memory.
                    self.counters.memory_bytes += LINE_BYTES;
                    if writeback_of.is_some() {
                        self.counters.memory_bytes += LINE_BYTES;
                    }
                }
            }
            None => {
                self.counters.memory_bytes += LINE_BYTES;
            }
        }
    }

    /// Fetches and executes a straight-line span of code: `code_bytes`
    /// bytes of text starting at `pc`, retiring `instrs` instructions.
    ///
    /// Each cache line of the span is fetched through the ITLB and L1I; a
    /// miss descends the unified hierarchy. Frontend stalls are charged at
    /// `frontend_stall_factor` of the fill latency because fetch-ahead hides
    /// part of the miss.
    pub fn exec(&mut self, pc: Addr, code_bytes: u64, instrs: u64) {
        self.exec_ilp(pc, code_bytes, instrs, f64::INFINITY);
    }

    /// Like [`Machine::exec`], but caps the effective issue rate at `ilp`
    /// instructions per cycle, modeling the dependence chains of the code
    /// being executed (pointer-chasing server code sustains far less than
    /// the machine width; vectorized dense kernels sustain the full width).
    ///
    /// # Panics
    ///
    /// Panics if `ilp` is not positive.
    pub fn exec_ilp(&mut self, pc: Addr, code_bytes: u64, instrs: u64, ilp: f64) {
        assert!(ilp > 0.0, "ilp must be positive");
        if let Some(t) = &mut self.recorder {
            t.push(TraceEvent::Exec {
                pc,
                code_bytes,
                instrs,
                ilp,
            });
        }
        self.counters.instructions += instrs;
        // Single-line fast path, mirroring `data_access`: most spans the
        // workloads issue (and every span the request loops replay) fit in
        // one cache line, and the block machinery below would spend more
        // on its bookkeeping than on the two probes this needs.
        let first_line = pc / LINE_BYTES;
        let last_line = if code_bytes == 0 {
            first_line
        } else {
            (pc + code_bytes - 1) / LINE_BYTES
        };
        if first_line == last_line {
            let line = first_line * LINE_BYTES;
            let mut penalty = 0.0;
            if !self.itlb.access(line) {
                self.counters.itlb_misses += 1;
                penalty += self.cfg.penalties.tlb_walk;
            }
            if self.l1i.access(line, false).is_miss() {
                self.counters.l1i_misses += 1;
                penalty += self.below_l1(line) * self.cfg.penalties.frontend_stall_factor;
            }
            self.charge(instrs as f64 / self.cfg.issue_width.min(ilp) + penalty);
            return;
        }
        self.exec_span(first_line, last_line, instrs, ilp);
    }

    /// Multi-line half of [`Machine::exec_ilp`], kept out of line so the
    /// dominant single-line path stays small enough to stay in registers.
    fn exec_span(&mut self, first_line: u64, last_line: u64, instrs: u64, ilp: f64) {
        let p = self.cfg.penalties;
        let nlines = last_line - first_line + 1;
        // Short-span fast path: a span that stays inside one page and one
        // L1I probe window — the shape nearly every real code span has
        // (compilers keep hot code compact; a 4 KiB page is 64 lines) —
        // needs exactly one ITLB probe and one span call, so the generic
        // block loop below with its per-line page dedup is pure overhead.
        if nlines <= u64::from(Cache::SPAN_LINES)
            && first_line * LINE_BYTES / PAGE_BYTES == last_line * LINE_BYTES / PAGE_BYTES
        {
            let span = first_line * LINE_BYTES;
            let mut penalty = 0.0;
            if !self.itlb.access(span) {
                self.counters.itlb_misses += 1;
                penalty += p.tlb_walk;
            }
            let miss_mask = self
                .l1i
                .access_span_clean(span, nlines as u32, &mut self.wb_scratch);
            self.counters.l1i_misses += u64::from(miss_mask.count_ones());
            debug_assert!(self.wb_scratch.is_empty(), "L1I lines are never dirty");
            // Resolve misses in ascending line order (bit-identical f64
            // accumulation order); only line 0 of the span pays the full
            // fill, fetch-ahead hides part of the rest.
            let exposed = p.prefetch_exposed.max(0.5);
            let mut m = miss_mask;
            while m != 0 {
                let k = u64::from(m.trailing_zeros());
                m &= m - 1;
                let fill = self.below_l1((first_line + k) * LINE_BYTES) * p.frontend_stall_factor;
                penalty += if k == 0 { fill } else { fill * exposed };
            }
            self.charge(instrs as f64 / self.cfg.issue_width.min(ilp) + penalty);
            return;
        }
        let mut penalty = 0.0;
        let mut page = u64::MAX;
        let mut first = true;
        // The span's lines go through the frontend in blocks of up to
        // [`Machine::BLOCK_LINES`]: each hardware unit (ITLB, L1I, then the
        // unified levels) sees its own access subsequence in original line
        // order, so per-unit state evolves exactly as in the line-at-a-time
        // formulation, while each probe loop stays tight enough to pipeline
        // across the block. Per-line outcomes live in two u64 bitmasks —
        // no scratch arrays to zero per call.
        let mut ln = first_line;
        while ln <= last_line {
            let chunk = (last_line - ln + 1).min(BLOCK_LINES as u64);
            // Phase 1: ITLB probes, page-dedup'd (carried across blocks).
            let mut walk_mask = 0u64;
            for k in 0..chunk {
                let line = (ln + k) * LINE_BYTES;
                let line_page = line / PAGE_BYTES;
                if line_page != page {
                    page = line_page;
                    if !self.itlb.access(line) {
                        self.counters.itlb_misses += 1;
                        walk_mask |= 1 << k;
                    }
                }
            }
            // Phase 2: L1I probes, span-batched — one vectorized window
            // sweep answers up to SPAN_LINES consecutive probes at once.
            let mut miss_mask = 0u64;
            let mut off = 0u64;
            while off < chunk {
                let n = (chunk - off).min(u64::from(Cache::SPAN_LINES));
                let m = self.l1i.access_span_clean(
                    (ln + off) * LINE_BYTES,
                    n as u32,
                    &mut self.wb_scratch,
                );
                miss_mask |= m << off;
                off += n;
            }
            self.counters.l1i_misses += u64::from(miss_mask.count_ones());
            debug_assert!(self.wb_scratch.is_empty(), "L1I lines are never dirty");
            // Phase 3: misses descend the unified hierarchy in line order,
            // and penalty terms are summed in the original interleaved
            // per-line order, keeping the f64 accumulation bit-identical
            // to the scalar formulation. Fully warm blocks skip this.
            if walk_mask | miss_mask != 0 {
                for k in 0..chunk {
                    if walk_mask & (1 << k) != 0 {
                        penalty += p.tlb_walk;
                    }
                    if miss_mask & (1 << k) != 0 {
                        let fill = self.below_l1((ln + k) * LINE_BYTES) * p.frontend_stall_factor;
                        // Within a span, fetch is sequential: next-line
                        // prefetch hides part of the latency of all but
                        // the first line, but branchy server code cannot
                        // run fetch far ahead.
                        penalty += if first && k == 0 {
                            fill
                        } else {
                            fill * p.prefetch_exposed.max(0.5)
                        };
                    }
                }
            }
            first = false;
            ln += chunk;
        }
        self.charge(instrs as f64 / self.cfg.issue_width.min(ilp) + penalty);
    }

    /// Executes a data-dependent conditional branch at `pc` with actual
    /// outcome `taken`. The branch instruction itself must already be
    /// included in an [`Machine::exec`] span; this call models only the
    /// prediction.
    pub fn branch(&mut self, pc: Addr, taken: bool) {
        if let Some(t) = &mut self.recorder {
            t.push(TraceEvent::Branch { pc, taken });
        }
        self.counters.branches += 1;
        if !self.bp.predict_and_update(pc, taken) {
            self.counters.branch_mispredicts += 1;
            self.charge(self.cfg.penalties.branch_mispredict);
        }
    }

    /// Loads `size` bytes at `addr` through the D-side hierarchy.
    pub fn load(&mut self, addr: Addr, size: u64) {
        if let Some(t) = &mut self.recorder {
            t.push(TraceEvent::Load { addr, size });
        }
        self.data_access(addr, size, false);
    }

    /// Stores `size` bytes at `addr` (write-allocate, write-back).
    pub fn store(&mut self, addr: Addr, size: u64) {
        if let Some(t) = &mut self.recorder {
            t.push(TraceEvent::Store { addr, size });
        }
        self.data_access(addr, size, true);
    }

    fn data_access(&mut self, addr: Addr, size: u64, write: bool) {
        // Same line arithmetic as `lines_of`, hoisted so the common case —
        // an access contained in one cache line — skips the iterator and
        // the per-line page-dedup bookkeeping entirely: one TLB translation
        // and one L1D lookup, fused back to back.
        let first = addr / LINE_BYTES;
        let last = if size == 0 {
            first
        } else {
            (addr + size - 1) / LINE_BYTES
        };
        if first == last {
            let line = first * LINE_BYTES;
            let mut penalty = 0.0;
            if !self.dtlb.access(line) {
                self.counters.dtlb_misses += 1;
                penalty += self.cfg.penalties.tlb_walk / self.cfg.penalties.mlp;
            }
            penalty += self.data_line_access(line, write);
            self.charge(penalty);
            return;
        }
        self.data_span(addr, size, write);
    }

    /// Multi-line half of [`Machine::data_access`], kept out of line so the
    /// dominant single-line path stays small.
    fn data_span(&mut self, addr: Addr, size: u64, write: bool) {
        let p = self.cfg.penalties;
        let mut penalty = 0.0;
        let mut page = u64::MAX;
        // Block-phased like `exec_ilp`: DTLB probes, then prefetcher
        // stream scans, then L1D + the unified levels, each unit sweeping
        // the whole block in line order before the next unit runs.
        let mut lines = lines_of(addr, size);
        let mut block = [0u64; BLOCK_LINES];
        let mut tlb_walked = [false; BLOCK_LINES];
        let mut covered = [false; BLOCK_LINES];
        loop {
            let mut n = 0;
            for line in lines.by_ref() {
                block[n] = line;
                n += 1;
                if n == BLOCK_LINES {
                    break;
                }
            }
            if n == 0 {
                break;
            }
            // Phase 1: DTLB probes, page-dedup'd (carried across blocks).
            for i in 0..n {
                let line = block[i];
                let line_page = line / PAGE_BYTES;
                let mut walked = false;
                if line_page != page {
                    page = line_page;
                    if !self.dtlb.access(line) {
                        self.counters.dtlb_misses += 1;
                        walked = true;
                    }
                }
                tlb_walked[i] = walked;
            }
            // Phase 2: prefetcher stream scans across the block.
            for i in 0..n {
                covered[i] = self.prefetcher_covers(block[i]);
            }
            // Phase 3: L1D and the levels below, penalties summed in the
            // original interleaved per-line order (bit-identical f64
            // accumulation).
            for i in 0..n {
                if tlb_walked[i] {
                    penalty += p.tlb_walk / p.mlp;
                }
                penalty += self.data_line_covered(block[i], write, covered[i]);
            }
        }
        self.charge(penalty);
    }

    /// One line's trip through the D-side hierarchy (prefetcher check, L1D,
    /// and the unified levels on a miss), returning the cycle penalty.
    /// Shared by the single-line fast path and the multi-line loop so both
    /// charge bit-identical costs.
    #[inline]
    fn data_line_access(&mut self, line: Addr, write: bool) -> f64 {
        let covered = self.prefetcher_covers(line);
        self.data_line_covered(line, write, covered)
    }

    /// The L1D-and-below half of [`Machine::data_line_access`], with the
    /// prefetcher verdict supplied by the caller (the block-phased path
    /// batches the stream scans separately).
    #[inline]
    fn data_line_covered(&mut self, line: Addr, write: bool, covered: bool) -> f64 {
        let p = self.cfg.penalties;
        match self.l1d.access(line, write) {
            Access::Hit => 0.0,
            Access::Miss { writeback_of } => {
                self.counters.l1d_misses += 1;
                if let Some(victim) = writeback_of {
                    // L1 dirty victim is absorbed by the L2 (or below).
                    let _ = self.below_l1_writeback(victim);
                }
                let fill = self.below_l1(line) / p.mlp;
                // A detected stream still counts misses and moves
                // traffic, but the prefetcher hides most of the latency.
                if covered {
                    fill * p.prefetch_exposed
                } else {
                    fill
                }
            }
        }
    }

    /// Write-back path from L1 into L2 that does not perturb demand-miss
    /// counters (write-backs are not demand misses).
    fn below_l1_writeback(&mut self, line: Addr) -> bool {
        match self.l2.access(line, true) {
            Access::Hit => true,
            Access::Miss { writeback_of } => {
                if let Some(victim) = writeback_of {
                    self.write_llc_or_memory(victim);
                }
                // The write-back allocation in L2 is not a demand miss;
                // it lands dirty and will eventually reach memory.
                false
            }
        }
    }

    /// Advances wall-clock time with the core idle (no requests pending).
    pub fn idle(&mut self, cycles: u64) {
        if let Some(t) = &mut self.recorder {
            t.push(TraceEvent::Idle { cycles });
        }
        self.counters.idle_cycles += cycles;
    }

    /// Total wall-clock cycles elapsed (busy + idle).
    pub fn wall_cycles(&self) -> u64 {
        self.counters.busy_cycles + self.counters.idle_cycles
    }

    /// Wall-clock seconds elapsed at the configured frequency.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_cycles() as f64 / (self.cfg.freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Segment;
    use crate::SimAlloc;

    fn broadwell() -> Machine {
        Machine::new(MachineConfig::broadwell())
    }

    #[test]
    fn ipc_bounded_by_issue_width() {
        let mut m = broadwell();
        // Tiny hot loop: everything hits after warmup.
        for _ in 0..10_000 {
            m.exec(0x4000_0000, 64, 32);
        }
        let ipc = m.counters().ipc();
        assert!(ipc <= m.config().issue_width + 1e-9);
        assert!(
            ipc > m.config().issue_width * 0.9,
            "hot loop should be core-bound: {ipc}"
        );
    }

    #[test]
    fn cache_misses_lower_ipc() {
        let mut hot = broadwell();
        let mut cold = broadwell();
        for i in 0..50_000u64 {
            hot.exec(0x4000_0000, 64, 16);
            hot.load(0x10_0000_0000, 8);
            cold.exec(0x4000_0000, 64, 16);
            // Stream far beyond LLC capacity: every load misses to memory.
            cold.load(0x10_0000_0000 + i * 4096, 8);
        }
        assert!(cold.counters().ipc() < hot.counters().ipc() * 0.8);
        assert!(cold.counters().llc_misses > 10_000);
        assert!(cold.counters().memory_bytes >= cold.counters().llc_misses * 64);
    }

    #[test]
    fn icache_pressure_raises_l1i_mpki() {
        let mut small = broadwell();
        let mut big = broadwell();
        // 16 KB code footprint fits L1I; 256 KB does not.
        for r in 0..2_000u64 {
            small.exec(0x4000_0000 + (r % 4) * 4096, 4096, 1024);
            big.exec(0x4000_0000 + (r % 64) * 4096, 4096, 1024);
        }
        let small_mpki = small.counters().mpki(small.counters().l1i_misses);
        let big_mpki = big.counters().mpki(big.counters().l1i_misses);
        assert!(
            big_mpki > small_mpki * 5.0,
            "big {big_mpki} small {small_mpki}"
        );
    }

    #[test]
    fn mispredicts_charge_cycles() {
        let mut predictable = broadwell();
        let mut random = broadwell();
        let mut rng = datamime_stats::Rng::with_seed(1);
        for _ in 0..20_000 {
            predictable.exec(0x4000_0000, 64, 8);
            predictable.branch(0x4000_0010, true);
            random.exec(0x4000_0000, 64, 8);
            random.branch(0x4000_0010, rng.bool(0.5));
        }
        assert!(random.counters().branch_mispredicts > 5_000);
        assert!(random.counters().ipc() < predictable.counters().ipc());
    }

    #[test]
    fn utilization_reflects_idle_time() {
        let mut m = broadwell();
        m.exec(0x4000_0000, 64, 400);
        let busy = m.counters().busy_cycles;
        m.idle(busy * 3);
        let util = m.counters().utilization();
        assert!((util - 0.25).abs() < 0.01, "util {util}");
    }

    #[test]
    fn stores_generate_writeback_traffic() {
        let mut m = broadwell();
        // Dirty a large region, then stream over another large region to
        // force dirty evictions all the way to memory.
        let mb = 1 << 20;
        for i in 0..(32 * mb / 64) {
            m.store(0x10_0000_0000 + i * 64, 8);
        }
        for i in 0..(32 * mb / 64) {
            m.load(0x20_0000_0000 + i * 64, 8);
        }
        let fills = m.counters().llc_misses * 64;
        assert!(
            m.counters().memory_bytes > fills,
            "write-backs must add to fill traffic: {} vs {}",
            m.counters().memory_bytes,
            fills
        );
    }

    #[test]
    fn llc_partitioning_increases_misses() {
        let cfg = MachineConfig::broadwell();
        let mut full = Machine::new(cfg.clone());
        let mut slim = Machine::new(cfg.with_llc_ways(1));
        // 4 MB working set: fits in 12 MB, not in 1 MB.
        let lines = 4 * (1 << 20) / 64;
        for _ in 0..6 {
            for i in 0..lines {
                full.exec(0x4000_0000, 64, 8);
                full.load(0x10_0000_0000 + i * 64, 8);
                slim.exec(0x4000_0000, 64, 8);
                slim.load(0x10_0000_0000 + i * 64, 8);
            }
        }
        assert!(slim.counters().llc_misses > full.counters().llc_misses * 3);
        assert!(slim.counters().ipc() < full.counters().ipc());
    }

    #[test]
    fn silvermont_has_no_llc_but_counts_llc_misses_at_l2() {
        let mut m = Machine::new(MachineConfig::silvermont());
        for i in 0..100_000u64 {
            m.exec(0x4000_0000, 64, 4);
            m.load(0x10_0000_0000 + i * 4096, 8);
        }
        assert!(m.counters().llc_misses > 50_000);
        assert_eq!(m.counters().l2_misses, m.counters().llc_misses);
    }

    #[test]
    fn narrow_core_is_slower_on_same_work() {
        let mut bdw = Machine::new(MachineConfig::broadwell());
        let mut slm = Machine::new(MachineConfig::silvermont());
        let mut alloc = SimAlloc::new();
        let buf = alloc.alloc(Segment::Heap, 64 * 1024).unwrap();
        for r in 0..5_000u64 {
            for m in [&mut bdw, &mut slm] {
                m.exec(0x4000_0000, 512, 128);
                m.load(buf + (r * 192) % (64 * 1024), 16);
            }
        }
        assert!(slm.counters().ipc() < bdw.counters().ipc());
    }

    #[test]
    fn wall_clock_accounting() {
        let mut m = broadwell();
        m.exec(0x4000_0000, 64, 4000);
        m.idle(1_000_000);
        assert_eq!(m.wall_cycles(), m.counters().busy_cycles + 1_000_000);
        assert!(m.wall_seconds() > 0.0);
    }
}
