//! Machine configurations, including the three evaluation platforms of the
//! paper's Table II.

use crate::branch::BranchConfig;
use crate::cache::{CacheConfig, Replacement};
use crate::tlb::TlbConfig;

/// Latency/penalty constants of the analytic core model, in core cycles.
///
/// The model charges `instructions / issue_width` base cycles plus event
/// penalties; data-side miss penalties are divided by `mlp` (the machine's
/// effective memory-level parallelism) because out-of-order cores overlap
/// independent misses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Penalties {
    /// Added latency of an L1 miss that hits in L2.
    pub l2_hit: f64,
    /// Added latency of an L2 miss that hits in the LLC.
    pub llc_hit: f64,
    /// Added latency of an LLC miss served by memory.
    pub memory: f64,
    /// Branch misprediction penalty (pipeline refill).
    pub branch_mispredict: f64,
    /// Page-walk latency on a TLB miss.
    pub tlb_walk: f64,
    /// Effective memory-level parallelism for data-side misses.
    pub mlp: f64,
    /// Fraction of an instruction-side miss that stalls the frontend
    /// (fetch-ahead hides the rest).
    pub frontend_stall_factor: f64,
    /// Fraction of a data-side miss penalty still exposed when the hardware
    /// stream prefetcher has detected the access pattern (misses still count
    /// and still move memory traffic; the prefetcher only hides latency).
    pub prefetch_exposed: f64,
}

/// Full description of a simulated machine (one core profiled, as in the
/// paper's single-worker methodology).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable platform name.
    pub name: String,
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Sustained issue width (instructions per cycle upper bound).
    pub issue_width: f64,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Shared last-level cache; `None` on machines without an L3
    /// (Silvermont), where the L2 is the last level.
    pub llc: Option<CacheConfig>,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Branch predictor geometry.
    pub branch: BranchConfig,
    /// Core-model penalties.
    pub penalties: Penalties,
}

impl MachineConfig {
    /// The 8-core Intel Broadwell (Xeon D-1540) platform of Table II; the
    /// machine all benchmarks are *generated* on.
    ///
    /// 32 KB 8-way split L1, 256 KB 8-way L2, 12 MB 12-way DRRIP LLC with
    /// 12 CAT partitions, 2.0 GHz, DDR4-2133.
    pub fn broadwell() -> Self {
        MachineConfig {
            name: "broadwell".to_owned(),
            freq_ghz: 2.0,
            issue_width: 4.0,
            l1i: CacheConfig::new(32 * 1024, 8),
            l1d: CacheConfig::new(32 * 1024, 8),
            l2: CacheConfig::new(256 * 1024, 8),
            llc: Some(CacheConfig {
                size_bytes: 12 << 20,
                ways: 12,
                line_bytes: 64,
                replacement: Replacement::Drrip,
            }),
            itlb: TlbConfig::new(128, 8),
            dtlb: TlbConfig::new(64, 4),
            branch: BranchConfig::new(14, 12),
            penalties: Penalties {
                l2_hit: 10.0,
                llc_hit: 35.0,
                memory: 180.0,
                branch_mispredict: 16.0,
                tlb_walk: 30.0,
                mlp: 2.5,
                frontend_stall_factor: 1.6,
                prefetch_exposed: 0.12,
            },
        }
    }

    /// The 32-core AMD Zen 2 (ThreadRipper PRO 3975WX) platform of Table II,
    /// used for cross-microarchitecture validation.
    ///
    /// 32 KB 8-way split L1, 512 KB 8-way L2, 16 MB 16-way LLC visible to a
    /// core (one chiplet), 3.5 GHz, DDR4-3200; deeper buffers and a better
    /// predictor than Broadwell.
    pub fn zen2() -> Self {
        MachineConfig {
            name: "zen2".to_owned(),
            freq_ghz: 3.5,
            issue_width: 5.0,
            l1i: CacheConfig::new(32 * 1024, 8),
            l1d: CacheConfig::new(32 * 1024, 8),
            l2: CacheConfig::new(512 * 1024, 8),
            llc: Some(CacheConfig {
                size_bytes: 16 << 20,
                ways: 16,
                line_bytes: 64,
                replacement: Replacement::Lru,
            }),
            itlb: TlbConfig::new(128, 8),
            dtlb: TlbConfig::new(128, 4),
            branch: BranchConfig::new(16, 16),
            penalties: Penalties {
                l2_hit: 12.0,
                llc_hit: 38.0,
                memory: 230.0, // more cycles at the higher clock
                branch_mispredict: 18.0,
                tlb_walk: 35.0,
                mlp: 3.2, // deeper load queues overlap more misses
                frontend_stall_factor: 1.4,
                prefetch_exposed: 0.10,
            },
        }
    }

    /// The 8-core Intel Atom C2750 (Silvermont) platform of Table II: a
    /// low-power core with a narrow pipeline, small OOO buffers, a 1 MB L2
    /// as the last cache level, and no L3.
    pub fn silvermont() -> Self {
        MachineConfig {
            name: "silvermont".to_owned(),
            freq_ghz: 2.4,
            issue_width: 2.0,
            l1i: CacheConfig::new(32 * 1024, 8),
            l1d: CacheConfig::new(24 * 1024, 6),
            l2: CacheConfig::new(1 << 20, 8),
            llc: None,
            itlb: TlbConfig::new(48, 48), // fully associative
            dtlb: TlbConfig::new(32, 4),
            branch: BranchConfig::new(12, 8),
            penalties: Penalties {
                l2_hit: 13.0,
                llc_hit: 0.0, // unused: no L3
                memory: 170.0,
                branch_mispredict: 10.0, // shorter pipeline
                tlb_walk: 30.0,
                mlp: 1.3, // little overlap: small OOO window
                frontend_stall_factor: 2.0,
                prefetch_exposed: 0.30, // weaker prefetchers
            },
        }
    }

    /// Returns a copy with the LLC restricted to `ways` ways (Intel
    /// CAT-style partitioning), used to measure the paper's cache
    /// sensitivity curves.
    ///
    /// # Panics
    ///
    /// Panics if the machine has no LLC or `ways` is out of range.
    pub fn with_llc_ways(&self, ways: u32) -> MachineConfig {
        let llc = self.llc.expect("machine has no LLC to partition");
        let mut cfg = self.clone();
        cfg.llc = Some(llc.with_ways(ways));
        cfg
    }

    /// Capacity of the last-level cache (the L2 when there is no L3).
    pub fn llc_bytes(&self) -> u64 {
        self.llc.map_or(self.l2.size_bytes, |c| c.size_bytes)
    }

    /// Number of CAT partitions (ways) the LLC supports, `0` without an LLC.
    pub fn llc_partitions(&self) -> u32 {
        self.llc.map_or(0, |c| c.ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_geometries() {
        let b = MachineConfig::broadwell();
        assert_eq!(b.l1i.size_bytes, 32 * 1024);
        assert_eq!(b.l2.size_bytes, 256 * 1024);
        assert_eq!(b.llc.unwrap().size_bytes, 12 << 20);
        assert_eq!(b.llc.unwrap().ways, 12);
        assert_eq!(b.llc.unwrap().replacement, Replacement::Drrip);
        assert_eq!(b.freq_ghz, 2.0);

        let z = MachineConfig::zen2();
        assert_eq!(z.l2.size_bytes, 512 * 1024);
        assert_eq!(z.llc.unwrap().size_bytes, 16 << 20);
        assert_eq!(z.freq_ghz, 3.5);

        let s = MachineConfig::silvermont();
        assert_eq!(s.l2.size_bytes, 1 << 20);
        assert!(s.llc.is_none());
        assert_eq!(s.llc_bytes(), 1 << 20);
        assert_eq!(s.llc_partitions(), 0);
    }

    #[test]
    fn cat_partitioning() {
        let b = MachineConfig::broadwell();
        let one_mb = b.with_llc_ways(1);
        assert_eq!(one_mb.llc.unwrap().size_bytes, 1 << 20);
        let six = b.with_llc_ways(6);
        assert_eq!(six.llc.unwrap().size_bytes, 6 << 20);
        assert_eq!(b.llc_partitions(), 12);
    }

    #[test]
    #[should_panic(expected = "no LLC")]
    fn partitioning_silvermont_panics() {
        MachineConfig::silvermont().with_llc_ways(1);
    }
}
