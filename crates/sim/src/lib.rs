//! Execution-driven microarchitecture simulator for the Datamime
//! reproduction.
//!
//! The paper profiles workloads with hardware performance counters on three
//! physical machines (Table II) and sweeps LLC allocations with Intel CAT.
//! This crate is the substitution for that hardware: a single-core machine
//! model with
//!
//! - split L1 I/D caches, a private L2, and an optional shared LLC with LRU
//!   or DRRIP replacement and CAT-style way partitioning ([`Cache`]);
//! - instruction and data TLBs ([`Tlb`]);
//! - a gshare branch predictor ([`BranchPredictor`]);
//! - an analytic throughput core model with memory-level-parallelism-aware
//!   penalty accounting ([`Machine`]);
//! - performance counters and the paper's 20 M-cycle interval sampling
//!   ([`Counters`], [`Sampler`]);
//! - a simulated address space and allocator that workloads lay their real
//!   data structures out in ([`SimAlloc`]).
//!
//! The three evaluation platforms are available as
//! [`MachineConfig::broadwell`], [`MachineConfig::zen2`], and
//! [`MachineConfig::silvermont`].
//!
//! # Examples
//!
//! ```
//! use datamime_sim::{Machine, MachineConfig, Sampler};
//!
//! // Build the paper's benchmark-generation platform and run a code loop.
//! let mut machine = Machine::new(MachineConfig::broadwell());
//! let mut sampler = Sampler::new(100_000);
//! for i in 0..20_000u64 {
//!     machine.exec(0x4000_0000, 128, 64);
//!     machine.load(0x10_0000_0000 + (i % 512) * 64, 8);
//!     sampler.poll(&machine);
//! }
//! let ipc = machine.counters().ipc();
//! assert!(ipc > 0.0 && ipc <= 4.0);
//! assert!(!sampler.samples().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod cache;
mod config;
mod counters;
mod machine;
mod mem;
pub mod reference;
mod sampler;
mod tlb;
mod trace;

pub use branch::{BranchConfig, BranchPredictor};
pub use cache::{Access, Cache, CacheConfig, Replacement};
pub use config::{MachineConfig, Penalties};
pub use counters::Counters;
pub use machine::Machine;
pub use mem::{lines_of, Addr, AllocError, Segment, SimAlloc, LINE_BYTES, PAGE_BYTES};
pub use reference::{RefCache, RefTlb};
pub use sampler::{MetricSample, Sampler, DEFAULT_INTERVAL_CYCLES};
pub use tlb::{Tlb, TlbConfig};
pub use trace::{Trace, TraceEvent};
