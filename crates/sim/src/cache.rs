//! Set-associative cache models with LRU and DRRIP replacement.
//!
//! The LLC model supports way-partitioning à la Intel CAT, which is how the
//! paper measures its cache-sensitivity curves (LLC MPKI and IPC versus
//! cache allocation, Sec. IV).

use crate::mem::Addr;
use datamime_stats::Rng;
use std::fmt;

/// Replacement policy for a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used, tracked with per-line timestamps.
    Lru,
    /// Dynamic re-reference interval prediction (set-dueling SRRIP/BRRIP),
    /// the policy the paper's Broadwell LLC uses.
    Drrip,
}

/// Geometry and policy of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (64 on all modeled machines).
    pub line_bytes: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Convenience constructor with 64-byte lines and LRU replacement.
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        CacheConfig {
            size_bytes,
            ways,
            line_bytes: 64,
            replacement: Replacement::Lru,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/size, capacity not a
    /// multiple of `ways * line_bytes`, or a non-power-of-two set count).
    pub fn sets(&self) -> u64 {
        assert!(self.ways > 0 && self.size_bytes > 0 && self.line_bytes > 0);
        let sets = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(sets > 0, "cache too small for its associativity");
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two (got {sets})"
        );
        sets
    }

    /// Returns a copy restricted to `ways` ways (CAT-style partitioning):
    /// same set count, reduced associativity and capacity.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds the configured associativity.
    pub fn with_ways(&self, ways: u32) -> CacheConfig {
        assert!(
            ways > 0 && ways <= self.ways,
            "invalid way allocation {ways}"
        );
        let sets = self.sets();
        CacheConfig {
            size_bytes: sets * ways as u64 * self.line_bytes,
            ways,
            line_bytes: self.line_bytes,
            replacement: self.replacement,
        }
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KB, {}-way, {:?}",
            self.size_bytes / 1024,
            self.ways,
            self.replacement
        )
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was missing; if a dirty victim was evicted,
    /// `writeback_of` holds the victim line's address so the caller can
    /// propagate the write-back to the next level.
    Miss {
        /// Line address of the evicted dirty victim, if any.
        writeback_of: Option<crate::mem::Addr>,
    },
}

impl Access {
    /// Returns `true` for [`Access::Miss`].
    pub fn is_miss(&self) -> bool {
        matches!(self, Access::Miss { .. })
    }
}

/// Sentinel tag marking an invalid (never-filled) way.
///
/// Stored tags are *narrow*: the set-index bits are implied by the way's
/// position in the tag array, so only `addr >> set_shift >> log2(sets)` is
/// kept, truncated to 32 bits (asserted in [`Cache::narrow_tag`] — real
/// tags never reach the sentinel).
const INVALID_TAG: u32 = u32::MAX;

/// A set-associative cache.
///
/// The model is storage-free: only tags and metadata are tracked, which is
/// all the performance metrics need. Storage is structure-of-arrays over a
/// single contiguous ways axis (`set * ways + way`): the lookup scans a
/// dense tag slice instead of wider per-line structs, which is what makes
/// `access` cheap enough to run a 200-iteration Bayesian search against
/// (see docs/PERFORMANCE.md). Tags are stored *narrow* — the set-index
/// bits are implied by array position and dropped, and the rest fits a
/// `u32` — so a 12 MB LLC model keeps its entire tag array under 800 KB of
/// host memory; for mixed-locality streams the model's own metadata
/// residency in the host's caches is the dominant cost.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u64,
    set_mask: u64,
    set_shift: u32,
    /// `log2(sets)`; shifted off stored tags and restored when a victim's
    /// line address is reconstructed for write-back.
    sets_shift: u32,
    ways: usize,
    /// Per-way narrow tags; `INVALID_TAG` marks an empty way.
    tags: Vec<u32>,
    /// Per-way LRU timestamps (allocated only under [`Replacement::Lru`]).
    meta: Vec<u64>,
    /// Per-way RRPVs, packed (allocated only under [`Replacement::Drrip`]).
    /// RRPVs span `0..=RRPV_MAX`, so a byte lane holds one: on a
    /// multi-megabyte LLC slice this keeps the replacement state 8x denser
    /// in the *host's* caches than a `u64` lane, which is where a
    /// mixed-locality stream spends its time.
    rrpv: Vec<u8>,
    /// Per-way dirty bit.
    dirty: Vec<bool>,
    clock: u64,
    // DRRIP set-dueling state.
    psel: i32,
    brrip_ctr: u32,
    rng: Rng,
    hits: u64,
    misses: u64,
}

const RRPV_MAX: u8 = 3;
const PSEL_MAX: i32 = 1023;

/// Maximum supported associativity. The set probe builds a per-way match
/// bitmask in one `u64`, so a set must fit in 64 ways — far beyond any
/// modeled machine (the widest is the 16-way Zen 2 L3 slice).
const MAX_WAYS: u32 = 64;

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            cfg.ways <= MAX_WAYS,
            "associativity above {MAX_WAYS} is unsupported"
        );
        let n = (sets * cfg.ways as u64) as usize;
        Cache {
            cfg,
            sets,
            set_mask: sets - 1,
            set_shift: cfg.line_bytes.trailing_zeros(),
            sets_shift: sets.trailing_zeros(),
            ways: cfg.ways as usize,
            tags: vec![INVALID_TAG; n],
            meta: if cfg.replacement == Replacement::Lru {
                vec![0; n]
            } else {
                Vec::new()
            },
            rrpv: if cfg.replacement == Replacement::Drrip {
                vec![0; n]
            } else {
                Vec::new()
            },
            dirty: vec![false; n],
            clock: 0,
            psel: PSEL_MAX / 2,
            brrip_ctr: 0,
            rng: Rng::with_seed(0xD12),
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Cumulative hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    #[inline]
    fn set_of(&self, addr: Addr) -> u64 {
        (addr >> self.set_shift) & self.set_mask
    }

    /// Narrow tag of `addr`: line index with the set bits shifted off.
    ///
    /// # Panics
    ///
    /// Panics if the narrow tag overflows 32 bits — i.e. `addr` is at or
    /// beyond `2^(32 + log2(line_bytes) + log2(sets))`, which is 16 TiB for
    /// the smallest modeled level. The simulated address spaces top out at
    /// a few hundred GiB, so the guard is a always-predicted compare.
    #[inline]
    fn narrow_tag(&self, addr: Addr) -> u32 {
        let t = (addr >> self.set_shift) >> self.sets_shift;
        assert!(
            t < u64::from(u32::MAX),
            "address {addr:#x} beyond the 32-bit tag range of this geometry"
        );
        t as u32
    }

    /// Reconstructs the line-aligned address a narrow tag in `set` denotes
    /// (the inverse of [`Cache::narrow_tag`], used for write-back victims).
    #[inline]
    fn line_of(&self, tag: u32, set: u64) -> Addr {
        ((u64::from(tag) << self.sets_shift) | set) << self.set_shift
    }

    /// Set probe: scans the dense tag slice for the first way holding
    /// `tag`. Empty ways hold `INVALID_TAG`, so probing for `INVALID_TAG`
    /// finds the first free way. The scan early-exits on the match way —
    /// measured faster than a full-width branch-free bitmask (both
    /// runtime-width and const-unrolled variants), because the kernels'
    /// access patterns are periodic enough that the host branch predictor
    /// tracks the exit iteration, while the bitmask pays its full-width
    /// cost on every probe.
    #[inline]
    fn probe(&self, base: usize, tag: u32) -> Option<usize> {
        let set_tags = &self.tags[base..base + self.ways];
        set_tags.iter().position(|&t| t == tag)
    }

    /// Accesses the line containing `addr`; `write` marks the line dirty.
    ///
    /// On a miss the line is allocated (write-allocate) and the victim's
    /// dirty state is reported so the caller can account write-back traffic.
    ///
    /// `#[inline]` is load-bearing: the workspace builds without LTO, so
    /// without it cross-crate callers (the `Machine` hot loops, the bench
    /// kernels) pay an opaque call per access and the compiler cannot
    /// const-propagate `write` or the replacement policy.
    #[inline]
    pub fn access(&mut self, addr: Addr, write: bool) -> Access {
        self.clock += 1;
        let set = self.set_of(addr);
        let tag = self.narrow_tag(addr);
        let base = set as usize * self.ways;
        // Policy dispatch happens once per access, up front, so each
        // specialized path is branch-free over the ways axis and inlines
        // into callers that use a fixed policy per level.
        match self.cfg.replacement {
            Replacement::Lru => self.access_lru(base, set, tag, write),
            Replacement::Drrip => self.access_drrip(base, set, tag, write),
        }
    }

    /// LRU-specialized access path (bit-identical to the generic one).
    #[inline]
    fn access_lru(&mut self, base: usize, set: u64, tag: u32, write: bool) -> Access {
        if let Some(way) = self.probe(base, tag) {
            let i = base + way;
            self.dirty[i] |= write;
            self.meta[i] = self.clock;
            self.hits += 1;
            return Access::Hit;
        }
        self.misses += 1;
        let victim = base
            + if self.ways == 8 {
                // Packed first-min (see `lru8_victim`): first empty way,
                // else first least-recent way, in a three-deep min tree.
                Self::lru8_victim(&self.meta[base..base + 8])
            } else {
                // Victim selection in ONE pass over the set: track the
                // first empty way and the first least-recent stamp
                // simultaneously with conditional moves, then prefer the
                // empty way. Equivalent to the two-scan formulation (probe
                // for `INVALID_TAG`, else min-scan) because both pick the
                // *first* qualifying way, but the set's tags and stamps
                // are each read once.
                let set_tags = &self.tags[base..base + self.ways];
                let meta = &self.meta[base..base + self.ways];
                let mut free = usize::MAX;
                let mut v = 0usize;
                let mut best = meta[0];
                if set_tags[0] == INVALID_TAG {
                    free = 0;
                }
                for w in 1..self.ways {
                    let empty = set_tags[w] == INVALID_TAG && free == usize::MAX;
                    free = if empty { w } else { free };
                    let better = meta[w] < best;
                    v = if better { w } else { v };
                    best = if better { meta[w] } else { best };
                }
                if free != usize::MAX {
                    free
                } else {
                    v
                }
            };
        // Dirty implies valid, so the install stores to the dirty array
        // only when the bit actually changes — an all-clean stream (and
        // every instruction-side caller) never touches it.
        let was_dirty = self.tags[victim] != INVALID_TAG && self.dirty[victim];
        let writeback_of = if was_dirty {
            Some(self.line_of(self.tags[victim], set))
        } else {
            None
        };
        if was_dirty != write {
            self.dirty[victim] = write;
        }
        self.tags[victim] = tag;
        self.meta[victim] = self.clock;
        Access::Miss { writeback_of }
    }

    /// DRRIP access for the per-access API. The hit check is an early-exit
    /// probe — callers of `access` (the per-access cache kernels, curve
    /// re-profiling) tend to cycle stable resident sets, so the exit
    /// iteration is predictable and the scan beats a full-width mask; the
    /// contested *block* path keeps the mask (see
    /// [`Cache::access_drrip_w`]). The miss body is shared and dispatched
    /// to a const-width specialization.
    #[inline]
    fn access_drrip(&mut self, base: usize, set: u64, tag: u32, write: bool) -> Access {
        if let Some(way) = self.probe(base, tag) {
            let i = base + way;
            self.dirty[i] |= write;
            self.rrpv[i] = 0; // promote to near-immediate re-reference
            self.hits += 1;
            return Access::Hit;
        }
        self.misses += 1;
        match self.ways {
            8 => self.drrip_miss_w::<8>(base, set, tag, write),
            12 => self.drrip_miss_w::<12>(base, set, tag, write),
            16 => self.drrip_miss_w::<16>(base, set, tag, write),
            _ => self.drrip_miss_w::<0>(base, set, tag, write),
        }
    }

    /// DRRIP-specialized access path for the block arm (bit-identical to
    /// [`Cache::access_drrip`]). `W` is the compile-time associativity, or
    /// 0 for runtime width.
    ///
    /// Unlike the per-access path this probes with a full-width match
    /// bitmask: block streams are another level's misses, so the matching
    /// way of consecutive probes is unpredictable and an early-exit scan
    /// mispredicts its exit iteration. The first matching way is the
    /// mask's trailing zero — identical to what `position` returns, since
    /// tags are unique within a set.
    #[inline]
    fn access_drrip_w<const W: usize>(
        &mut self,
        base: usize,
        set: u64,
        tag: u32,
        write: bool,
    ) -> Access {
        let ways = if W == 0 { self.ways } else { W };
        let set_tags = &self.tags[base..base + ways];
        let mut hit_mask = 0u64;
        for (w, &t) in set_tags.iter().enumerate() {
            hit_mask |= u64::from(t == tag) << w;
        }
        if hit_mask != 0 {
            let i = base + hit_mask.trailing_zeros() as usize;
            self.dirty[i] |= write;
            self.rrpv[i] = 0; // promote to near-immediate re-reference
            self.hits += 1;
            return Access::Hit;
        }
        self.misses += 1;
        self.drrip_miss_w::<W>(base, set, tag, write)
    }

    /// Shared DRRIP miss body: victim selection with the aging rounds
    /// collapsed, write-back detection, and the dueling-driven install.
    /// The entire victim search is one fused pass: free-way mask plus the
    /// RRPV threshold masks, from which the victim and the collapsed aging
    /// delta both fall out (see `docs/PERFORMANCE.md`).
    #[inline]
    fn drrip_miss_w<const W: usize>(
        &mut self,
        base: usize,
        set: u64,
        tag: u32,
        write: bool,
    ) -> Access {
        let ways = if W == 0 { self.ways } else { W };
        let set_tags = &self.tags[base..base + ways];
        // Victim selection with the textbook aging rounds collapsed. Aging
        // bumps every RRPV by 1 until some way reaches RRPV_MAX; since
        // RRPVs never exceed RRPV_MAX, that is equivalent to one uniform
        // add of `RRPV_MAX - max`, and the victim is the first way holding
        // the pre-aging maximum. One pass computes the free-way mask and
        // the three RRPV threshold masks; the first set bit of the highest
        // non-empty mask is exactly the way the round-by-round loop would
        // surface first.
        let rrpv = &self.rrpv[base..base + ways];
        let mut free = 0u64;
        let mut m3 = 0u64;
        for w in 0..ways {
            free |= u64::from(set_tags[w] == INVALID_TAG) << w;
            m3 |= u64::from(rrpv[w] >= RRPV_MAX) << w;
        }
        let victim = if free != 0 {
            // First never-filled way, like the old probe-for-invalid.
            free.trailing_zeros() as usize
        } else if m3 != 0 {
            // A way is already distant: no aging round would run.
            m3.trailing_zeros() as usize
        } else {
            // Aging actually runs — rare once the set is in steady
            // state, so the threshold masks are computed lazily here.
            let (mut m2, mut m1) = (0u64, 0u64);
            for (w, &m) in rrpv.iter().enumerate() {
                m2 |= u64::from(m >= RRPV_MAX - 1) << w;
                m1 |= u64::from(m >= 1) << w;
            }
            let (delta, mask) = if m2 != 0 {
                (1, m2)
            } else if m1 != 0 {
                (RRPV_MAX - 1, m1)
            } else {
                (RRPV_MAX, 1)
            };
            for m in &mut self.rrpv[base..base + ways] {
                *m += delta;
            }
            mask.trailing_zeros() as usize
        };
        // `victim` comes from a trailing_zeros over a ways-wide mask, so
        // the `min` is an identity that proves the stores below in-bounds.
        let vw = victim.min(ways - 1);
        let (sets_shift, set_shift) = (self.sets_shift, self.set_shift);
        // `drrip_insert_rrpv` only touches psel/brrip_ctr/rng, so hoisting
        // it above the set-array stores is order-equivalent; it runs first
        // so the slice reborrows below don't conflict with `&mut self`.
        let insert_rrpv = self.drrip_insert_rrpv(set);
        let set_tags = &mut self.tags[base..base + ways];
        let dirty = &mut self.dirty[base..base + ways];
        let rrpv = &mut self.rrpv[base..base + ways];
        // As in `access_lru`: dirty implies valid, so only store the bit
        // when it changes.
        let was_dirty = set_tags[vw] != INVALID_TAG && dirty[vw];
        let writeback_of = if was_dirty {
            Some(((u64::from(set_tags[vw]) << sets_shift) | set) << set_shift)
        } else {
            None
        };
        if was_dirty != write {
            dirty[vw] = write;
        }
        set_tags[vw] = tag;
        rrpv[vw] = insert_rrpv;
        Access::Miss { writeback_of }
    }

    fn drrip_insert_rrpv(&mut self, set: u64) -> u8 {
        // Set dueling: low leader sets use SRRIP, high leader sets use
        // BRRIP; followers pick the policy favored by PSEL.
        const LEADERS: u64 = 32;
        let use_brrip = if set.is_multiple_of(LEADERS) {
            self.psel = (self.psel + 1).min(PSEL_MAX); // SRRIP leader missed
            false
        } else if set % LEADERS == 1 {
            self.psel = (self.psel - 1).max(0); // BRRIP leader missed
            true
        } else {
            self.psel < PSEL_MAX / 2
        };
        if use_brrip {
            // BRRIP: distant re-reference most of the time.
            self.brrip_ctr = self.brrip_ctr.wrapping_add(1);
            if self.brrip_ctr.is_multiple_of(32) || self.rng.bool(0.01) {
                RRPV_MAX - 1
            } else {
                RRPV_MAX
            }
        } else {
            // SRRIP: long (but not distant) re-reference.
            RRPV_MAX - 1
        }
    }

    /// LRU victim way for an 8-way set, given the set's stamp slice.
    ///
    /// One packed first-min over `(stamp << 3) | way` replaces the
    /// two-chain scan (first `INVALID_TAG` way, else first least-recent
    /// stamp): invalid ways hold stamp 0 by invariant — `new`/`reset`/
    /// `reinit`/`set_ways` zero the stamps of invalid ways, installs stamp
    /// `clock >= 1` (the caller increments `clock` before accessing) —
    /// so a free way's key is always below any valid way's, and ties
    /// between equal stamps resolve to the lower way via the packed low
    /// bits. The tree of `min`s is 3 deep where the scan's dependent
    /// conditional-move chain was 7.
    ///
    /// Stamps are access counts, so `stamp << 3` cannot overflow within
    /// any physically possible run (that would take 2^61 accesses).
    #[inline]
    fn lru8_victim(meta: &[u64]) -> usize {
        let key = |w: usize| (meta[w] << 3) | w as u64;
        let a = key(0).min(key(1));
        let b = key(2).min(key(3));
        let c = key(4).min(key(5));
        let d = key(6).min(key(7));
        (a.min(b).min(c.min(d)) & 7) as usize
    }

    /// Maximum line count per [`Cache::access_span_clean`] call.
    pub const SPAN_LINES: u32 = 8;

    /// Accesses up to [`Cache::SPAN_LINES`] *consecutive* cache lines
    /// starting at the line containing `addr`, read-only, and returns a
    /// bitmask with bit `k` set if line `k` missed. Dirty victim lines
    /// evicted by the installs are appended to `writebacks` in eviction
    /// order.
    ///
    /// Equivalent to — and bit-identical with, including every counter and
    /// replacement decision — `n` successive `access(addr + k * line,
    /// false)` calls (property-tested in `tests/batched_equivalence.rs`).
    /// The win is scan fusion: consecutive lines map to *distinct*
    /// consecutive sets, so no line in the span can observe another's
    /// install, and each line's probe, free-way search, and LRU victim
    /// selection collapse into one constant-width pass over its set. A
    /// plain `access` must probe first and only then victim-scan, because
    /// hits dominate its callers; span callers are instruction-fetch loops
    /// whose probes miss most of the time, where the fused pass halves the
    /// per-line scan work.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or above [`Cache::SPAN_LINES`].
    ///
    /// # Examples
    ///
    /// ```
    /// use datamime_sim::{Cache, CacheConfig};
    ///
    /// let mut a = Cache::new(CacheConfig::new(32 * 1024, 8));
    /// let mut b = Cache::new(CacheConfig::new(32 * 1024, 8));
    /// let mut wb = Vec::new();
    /// // One span call == four per-access calls.
    /// let miss_mask = a.access_span_clean(0x4000_0000, 4, &mut wb);
    /// let mut expect = 0u64;
    /// for k in 0..4u64 {
    ///     expect |= u64::from(b.access(0x4000_0000 + k * 64, false).is_miss()) << k;
    /// }
    /// assert_eq!(miss_mask, expect);
    /// assert_eq!(a.hits(), b.hits());
    /// assert!(wb.is_empty()); // clean lines: no dirty victims
    /// ```
    #[inline]
    pub fn access_span_clean(&mut self, addr: Addr, n: u32, writebacks: &mut Vec<Addr>) -> u64 {
        assert!((1..=Self::SPAN_LINES).contains(&n), "span of {n} lines");
        let first_set = self.set_of(addr);
        // The fast path wants: LRU replacement (the L1/L2 levels the span
        // path serves), 8 ways (every modeled L1/L2), and a span that does
        // not wrap the set array (wrapping would alias two lines onto one
        // set and break the distinct-sets invariant).
        if self.ways == 8
            && self.cfg.replacement == Replacement::Lru
            && first_set + u64::from(n) <= self.sets
        {
            return self.span_clean_lru8(addr, first_set, n, writebacks);
        }
        let mut miss_mask = 0u64;
        for k in 0..u64::from(n) {
            if let Access::Miss { writeback_of } =
                self.access(addr + k * self.cfg.line_bytes, false)
            {
                miss_mask |= 1 << k;
                if let Some(victim) = writeback_of {
                    writebacks.push(victim);
                }
            }
        }
        miss_mask
    }

    /// Fast path of [`Cache::access_span_clean`]: 8-way LRU, non-wrapping
    /// span. Each line runs one fused constant-width pass computing the
    /// match bitmask, the first free way, and the first-minimum LRU victim
    /// simultaneously, so misses need no second scan.
    #[inline]
    fn span_clean_lru8(
        &mut self,
        addr: Addr,
        first_set: u64,
        n: u32,
        writebacks: &mut Vec<Addr>,
    ) -> u64 {
        const W: usize = 8;
        // The narrow tag is *constant* across a non-wrapping span — the
        // lines differ only in their set bits, which narrow tags drop — so
        // one register feeds every line's compare.
        let tag = self.narrow_tag(addr);
        let base = first_set as usize * W;
        let end = base + W * n as usize;
        // One bounds check per array for the whole span; `chunks_exact`
        // hands each line's set to the loop body as a full-width slice the
        // compiler proves is 8 long, so the per-way indexing below compiles
        // without further checks.
        let tags = self.tags[base..end].chunks_exact_mut(W);
        let meta = self.meta[base..end].chunks_exact_mut(W);
        let dirty = self.dirty[base..end].chunks_exact_mut(W);
        let clock0 = self.clock;
        self.clock += u64::from(n);
        let mut hits = 0u64;
        let mut miss_mask = 0u64;
        for (k, ((set_tags, meta), dirty)) in tags.zip(meta).zip(dirty).enumerate() {
            let clock = clock0 + k as u64 + 1;
            // Probe-first, unlike the fused block path: instruction spans
            // are the one caller whose probes hit nearly always (hot code
            // is L1I-resident in steady state), so the victim machinery —
            // eight stamp loads and a cmov chain per set — is pure waste
            // on the common path. `position` returns the first matching
            // way, which for unique-within-a-set tags is exactly the
            // `trailing_zeros` of the fused variant's match mask.
            if let Some(w) = set_tags.iter().position(|&t| t == tag) {
                meta[w] = clock;
                hits += 1;
                continue;
            }
            miss_mask |= 1 << k;
            let victim = Self::lru8_victim(meta);
            // Dirty implies valid (installs set both; invalidation clears
            // both), so a clean install only needs to clear the bit when a
            // write-back actually fired — the common all-clean stream never
            // stores to the dirty array at all.
            if set_tags[victim] != INVALID_TAG && dirty[victim] {
                let set = first_set + k as u64;
                writebacks.push(
                    ((u64::from(set_tags[victim]) << self.sets_shift) | set) << self.set_shift,
                );
                dirty[victim] = false;
            }
            set_tags[victim] = tag;
            meta[victim] = clock;
        }
        self.hits += hits;
        self.misses += miss_mask.count_ones() as u64;
        miss_mask
    }

    /// Fused 8-way LRU clean access: hit bitmask, first free way, and
    /// first-minimum LRU victim computed in a single constant-width
    /// branch-free pass. `access_lru` probes first and victim-scans only
    /// on a miss, which is right for hit-dominated callers with
    /// predictable hit ways; this path wins when probes miss often or hit
    /// at unpredictable ways (instruction-fetch spans, contested
    /// multi-level streams), where the early-exit scan mispredicts its
    /// exit iteration. The hit/miss *outcome* stays a branch on purpose:
    /// a cmov-merged single-store variant was measured slower (it chains
    /// every store behind the full scan instead of letting the speculated
    /// common path retire early), and so was deferring the stamp min-scan
    /// to a second, misses-only pass (the scan overlaps the compares for
    /// free; a separate pass re-waits on the stamp loads).
    ///
    /// Bit-identical to `access_lru(base, tag, false)`: tags are unique
    /// within a set, so the mask's sole bit is the first-match way, and
    /// both formulations pick the first free way, else the first
    /// least-recent way. The caller passes the already-incremented access
    /// `clock` and owns the hit/miss counters — keeping the counters and
    /// the clock out of `self` lets the block loop carry them in
    /// registers. Returns `(missed, dirty-victim line)`.
    #[inline]
    fn access_clean_lru8_fused(
        &mut self,
        base: usize,
        set: u64,
        tag: u32,
        clock: u64,
    ) -> (bool, Option<Addr>) {
        const W: usize = 8;
        // Slice the set's tags and stamps once and index way-relative with
        // a `& 7` mask thereafter: every way index is provably in-bounds,
        // so the body carries two bounds checks total instead of one per
        // tag/stamp/dirty touch (`self.meta[base + w]` re-checks against
        // the whole array; `meta[w & 7]` checks nothing).
        let (sets_shift, set_shift) = (self.sets_shift, self.set_shift);
        let set_tags = &mut self.tags[base..base + W];
        let meta = &mut self.meta[base..base + W];
        let mut hmask = 0u64;
        for (w, &t) in set_tags.iter().enumerate() {
            hmask |= u64::from(t == tag) << w;
        }
        if hmask != 0 {
            meta[hmask.trailing_zeros() as usize & 7] = clock;
            return (false, None);
        }
        let victim = Self::lru8_victim(meta) & 7;
        // Dirty implies valid, so the clean install below only needs to
        // clear the bit when a write-back fired (see `span_clean_lru8`).
        let wb = if set_tags[victim] != INVALID_TAG && self.dirty[base + victim] {
            self.dirty[base + victim] = false;
            Some(((u64::from(set_tags[victim]) << sets_shift) | set) << set_shift)
        } else {
            None
        };
        set_tags[victim] = tag;
        meta[victim] = clock;
        (true, wb)
    }

    /// Accesses every address in `addrs` in order and appends the ones
    /// that missed to `misses` (in access order) and any dirty victim
    /// lines to `writebacks` (in eviction order).
    ///
    /// Equivalent to — and bit-identical with, including every counter and
    /// replacement decision — looping over `access(addr, false)` yourself
    /// (property-tested in `tests/batched_equivalence.rs`). The win is
    /// structural: the replacement-policy dispatch happens once per block
    /// instead of once per access, and the caller's loop body contains
    /// nothing but this level's probe — so a multi-level lookup chain
    /// (`L1 → misses → L2 → misses → LLC`) runs each level's probes in a
    /// tight, well-predicted loop instead of interleaving three levels'
    /// code behind data-dependent branches.
    ///
    /// # Examples
    ///
    /// ```
    /// use datamime_sim::{Cache, CacheConfig};
    ///
    /// let mut l1 = Cache::new(CacheConfig::new(32 * 1024, 8));
    /// let mut l2 = Cache::new(CacheConfig::new(256 * 1024, 8));
    /// let addrs: Vec<u64> = (0..1024u64).map(|i| 0x1000_0000 + i * 64).collect();
    /// let (mut m1, mut m2, mut wb) = (Vec::new(), Vec::new(), Vec::new());
    /// // L1 sweeps the block, then the L2 sees only the L1's misses.
    /// l1.access_block_clean(&addrs, &mut m1, &mut wb);
    /// l2.access_block_clean(&m1, &mut m2, &mut wb);
    /// assert_eq!(l1.misses(), m1.len() as u64);
    /// assert_eq!(l2.misses(), m2.len() as u64);
    /// assert!(wb.is_empty()); // clean accesses: no dirty victims
    /// ```
    pub fn access_block_clean(
        &mut self,
        addrs: &[Addr],
        misses: &mut Vec<Addr>,
        writebacks: &mut Vec<Addr>,
    ) {
        // Hoist the policy dispatch out of the loop; each arm's body is the
        // same specialized path `access` takes (or a bit-identical fused
        // variant of it).
        match self.cfg.replacement {
            Replacement::Lru if self.ways == 8 => {
                // Block streams are contested by construction (the caller
                // feeds this level another level's misses, or a mixed
                // stream), so hit ways are unpredictable and the fused
                // constant-width pass beats the early-exit probe. The miss
                // list is filled with a branchless write-index — the store
                // always happens, the cursor advances only on a miss — so
                // the unpredictable hit/miss outcome never becomes a
                // branch.
                let start = misses.len();
                misses.resize(start + addrs.len(), 0);
                let out = &mut misses[start..];
                // saturating: an empty block runs zero iterations, but the
                // bound itself must not underflow.
                let last = addrs.len().saturating_sub(1);
                let mut cursor = 0usize;
                // The clock lives in a local for the duration of the block
                // so the loop carries it in a register; hit/miss counts
                // fall out of the final cursor (cursor == misses).
                let mut clock = self.clock;
                // The miss list is materialized per 64-access chunk: the
                // access loop records outcomes in a register-resident
                // bitmask (no store, no serial chain — a compacting
                // `out[cursor] = addr; cursor += miss` write would make
                // every store address depend on all prior hit/miss
                // outcomes), then a set-bit walk appends the missing
                // addresses in access order, paying only ~4 ops per miss.
                // Address decomposition reads three geometry fields that
                // never change mid-run; copied to locals so the stores
                // into tags/meta (reached through the same `self`) cannot
                // force a reload every iteration.
                let (set_shift, sets_shift, set_mask) =
                    (self.set_shift, self.sets_shift, self.set_mask);
                for chunk in addrs.chunks(64) {
                    let mut mask = 0u64;
                    for (i, &addr) in chunk.iter().enumerate() {
                        clock += 1;
                        let set = (addr >> set_shift) & set_mask;
                        let t = (addr >> set_shift) >> sets_shift;
                        assert!(
                            t < u64::from(u32::MAX),
                            "address {addr:#x} beyond the 32-bit tag range of this geometry"
                        );
                        let tag = t as u32;
                        let base = set as usize * 8;
                        let (miss, wb) = self.access_clean_lru8_fused(base, set, tag, clock);
                        mask |= u64::from(miss) << i;
                        if let Some(victim) = wb {
                            writebacks.push(victim);
                        }
                    }
                    while mask != 0 {
                        let i = mask.trailing_zeros() as usize;
                        // `cursor` counts misses so far, which is at most
                        // the number of accesses so far: the `min` is an
                        // identity that proves the store in-bounds.
                        out[cursor.min(last)] = chunk[i];
                        cursor += 1;
                        mask &= mask - 1;
                    }
                }
                self.clock = clock;
                self.misses += cursor as u64;
                self.hits += (addrs.len() - cursor) as u64;
                misses.truncate(start + cursor.min(addrs.len()));
            }
            Replacement::Lru => {
                for &addr in addrs {
                    self.clock += 1;
                    let set = self.set_of(addr);
                    let tag = self.narrow_tag(addr);
                    let base = set as usize * self.ways;
                    if let Access::Miss { writeback_of } = self.access_lru(base, set, tag, false) {
                        misses.push(addr);
                        if let Some(victim) = writeback_of {
                            writebacks.push(victim);
                        }
                    }
                }
            }
            Replacement::Drrip => match self.ways {
                12 => self.block_clean_drrip_w::<12>(addrs, misses, writebacks),
                16 => self.block_clean_drrip_w::<16>(addrs, misses, writebacks),
                8 => self.block_clean_drrip_w::<8>(addrs, misses, writebacks),
                _ => self.block_clean_drrip_w::<0>(addrs, misses, writebacks),
            },
        }
    }

    /// DRRIP arm of [`Cache::access_block_clean`]: the policy *and* width
    /// dispatch are hoisted out of the loop, so the loop body is one
    /// const-width specialized access — the match-bitmask loops unroll
    /// and `base = set * W` strength-reduces. (An explicit software
    /// prefetch of the upcoming access's tag line was tried here and
    /// measured no better — the `black_box` it needs pins the value to
    /// memory and costs the loop more than the early touch saves; see
    /// docs/PERFORMANCE.md's loss table.)
    fn block_clean_drrip_w<const W: usize>(
        &mut self,
        addrs: &[Addr],
        misses: &mut Vec<Addr>,
        writebacks: &mut Vec<Addr>,
    ) {
        let ways = if W == 0 { self.ways } else { W };
        for &addr in addrs {
            self.clock += 1;
            let set = self.set_of(addr);
            let tag = self.narrow_tag(addr);
            let base = set as usize * ways;
            if let Access::Miss { writeback_of } = self.access_drrip_w::<W>(base, set, tag, false) {
                misses.push(addr);
                if let Some(victim) = writeback_of {
                    writebacks.push(victim);
                }
            }
        }
    }

    /// Repartitions the cache to `new_ways` ways in place, preserving the
    /// contents of the ways that remain — matching how CAT repartitioning
    /// behaves on hardware (lines in revoked ways are dropped; lines in
    /// retained ways stay valid).
    ///
    /// # Panics
    ///
    /// Panics if `new_ways` is zero or exceeds the original associativity
    /// implied by the set count (the set count never changes).
    pub fn set_ways(&mut self, new_ways: u32) {
        assert!(
            new_ways > 0 && new_ways <= MAX_WAYS,
            "invalid way allocation"
        );
        let old_ways = self.ways;
        let new = new_ways as usize;
        if new == old_ways {
            return;
        }
        let n = self.sets as usize * new;
        let mut tags: Vec<u32> = vec![INVALID_TAG; n];
        let mut meta = vec![0u64; if self.meta.is_empty() { 0 } else { n }];
        let mut rrpv = vec![0u8; if self.rrpv.is_empty() { 0 } else { n }];
        let mut dirty = vec![false; n];
        let keep = old_ways.min(new);
        for set in 0..self.sets as usize {
            for w in 0..keep {
                tags[set * new + w] = self.tags[set * old_ways + w];
                if !meta.is_empty() {
                    meta[set * new + w] = self.meta[set * old_ways + w];
                }
                if !rrpv.is_empty() {
                    rrpv[set * new + w] = self.rrpv[set * old_ways + w];
                }
                dirty[set * new + w] = self.dirty[set * old_ways + w];
            }
        }
        self.tags = tags;
        self.meta = meta;
        self.rrpv = rrpv;
        self.dirty = dirty;
        self.ways = new;
        self.cfg.ways = new_ways;
        self.cfg.size_bytes = self.sets * new_ways as u64 * self.cfg.line_bytes;
    }

    /// Invalidates all lines and zeroes the hit/miss counters.
    pub fn reset(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.meta.fill(0);
        self.rrpv.fill(0);
        self.dirty.fill(false);
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// Reconfigures the cache in place to exactly the state
    /// [`Cache::new(cfg)`](Cache::new) would produce, reusing the existing
    /// tag/metadata allocations when the total way count is unchanged.
    ///
    /// This is the arena-reuse hook: a pooled `Cache` handed out by
    /// `datamime`'s `EvalArena` is `reinit`ed instead of reallocated, which
    /// removes ~3 MB of allocator traffic per evaluation for a Broadwell
    /// LLC. Behaviour after `reinit(cfg)` is bit-identical to a fresh
    /// `Cache::new(cfg)` — including the DRRIP set-dueling counters and the
    /// seeded BRRIP tie-break RNG.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::sets`]).
    pub fn reinit(&mut self, cfg: CacheConfig) {
        let sets = cfg.sets();
        assert!(
            cfg.ways <= MAX_WAYS,
            "associativity above {MAX_WAYS} is unsupported"
        );
        let n = (sets * cfg.ways as u64) as usize;
        if n == self.tags.len() {
            self.tags.fill(INVALID_TAG);
            self.dirty.fill(false);
        } else {
            self.tags.clear();
            self.tags.resize(n, INVALID_TAG);
            self.dirty.clear();
            self.dirty.resize(n, false);
        }
        // Replacement state follows the (possibly changed) policy.
        let (meta_n, rrpv_n) = match cfg.replacement {
            Replacement::Lru => (n, 0),
            Replacement::Drrip => (0, n),
        };
        if self.meta.len() == meta_n {
            self.meta.fill(0);
        } else {
            self.meta.clear();
            self.meta.resize(meta_n, 0);
        }
        if self.rrpv.len() == rrpv_n {
            self.rrpv.fill(0);
        } else {
            self.rrpv.clear();
            self.rrpv.resize(rrpv_n, 0);
        }
        self.cfg = cfg;
        self.sets = sets;
        self.set_mask = sets - 1;
        self.set_shift = cfg.line_bytes.trailing_zeros();
        self.sets_shift = sets.trailing_zeros();
        self.ways = cfg.ways as usize;
        self.clock = 0;
        self.psel = PSEL_MAX / 2;
        self.brrip_ctr = 0;
        self.rng = Rng::with_seed(0xD12);
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lru() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            replacement: Replacement::Lru,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_lru();
        assert!(c.access(0, false).is_miss());
        assert_eq!(c.access(0, false), Access::Hit);
        assert_eq!(c.access(63, false), Access::Hit); // same line
        assert!(c.access(64, false).is_miss()); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_lru();
        // Set 0 holds lines with addr % 256 == 0 (4 sets x 64B): 0, 256, 512.
        c.access(0, false);
        c.access(256, false);
        c.access(0, false); // refresh line 0
        c.access(512, false); // evicts 256
        assert_eq!(c.access(0, false), Access::Hit);
        assert!(c.access(256, false).is_miss());
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small_lru();
        c.access(0, true); // dirty
        c.access(256, false);
        match c.access(512, false) {
            Access::Miss { writeback_of } => assert_eq!(writeback_of, Some(0)),
            Access::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = small_lru();
        c.access(0, false);
        c.access(256, false);
        match c.access(512, false) {
            Access::Miss { writeback_of } => assert_eq!(writeback_of, None),
            Access::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let cfg = CacheConfig::new(32 * 1024, 8);
        let mut c = Cache::new(cfg);
        let lines: Vec<u64> = (0..256).map(|i| i * 64).collect(); // 16 KB
        for &a in &lines {
            c.access(a, false);
        }
        let miss_before = c.misses();
        for _ in 0..10 {
            for &a in &lines {
                c.access(a, false);
            }
        }
        assert_eq!(c.misses(), miss_before, "warm working set should not miss");
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_lru() {
        // 512 B cache, 1 KB circular working set: LRU misses every access.
        let mut c = small_lru();
        let lines: Vec<u64> = (0..16).map(|i| i * 64).collect();
        for _ in 0..4 {
            for &a in &lines {
                c.access(a, false);
            }
        }
        let total = c.hits() + c.misses();
        assert_eq!(c.misses(), total, "LRU must thrash on cyclic overflow");
    }

    #[test]
    fn drrip_outperforms_lru_on_thrashing_pattern() {
        let mk = |rep| {
            Cache::new(CacheConfig {
                size_bytes: 16 * 1024,
                ways: 8,
                line_bytes: 64,
                replacement: rep,
            })
        };
        let mut lru = mk(Replacement::Lru);
        let mut drrip = mk(Replacement::Drrip);
        // Cyclic working set 2x the cache: classic LRU pathology.
        let lines: Vec<u64> = (0..512).map(|i| i * 64).collect();
        for _ in 0..40 {
            for &a in &lines {
                lru.access(a, false);
                drrip.access(a, false);
            }
        }
        assert!(
            drrip.hits() > lru.hits(),
            "drrip hits {} <= lru hits {}",
            drrip.hits(),
            lru.hits()
        );
    }

    #[test]
    fn with_ways_partitioning_shrinks_capacity() {
        let cfg = CacheConfig {
            size_bytes: 12 << 20,
            ways: 12,
            line_bytes: 64,
            replacement: Replacement::Drrip,
        };
        let one = cfg.with_ways(1);
        assert_eq!(one.size_bytes, 1 << 20);
        assert_eq!(one.sets(), cfg.sets());
        let six = cfg.with_ways(6);
        assert_eq!(six.size_bytes, 6 << 20);
    }

    #[test]
    #[should_panic(expected = "invalid way allocation")]
    fn with_ways_zero_panics() {
        CacheConfig::new(1024, 4).with_ways(0);
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = small_lru();
        c.access(0, false);
        c.reset();
        assert!(c.access(0, false).is_miss());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn partitioned_cache_misses_more() {
        let cfg = CacheConfig {
            size_bytes: 1 << 20,
            ways: 16,
            line_bytes: 64,
            replacement: Replacement::Lru,
        };
        let mut full = Cache::new(cfg);
        let mut slim = Cache::new(cfg.with_ways(2));
        // Working set of 512 KB: fits in 1 MB, not in 128 KB.
        let lines: Vec<u64> = (0..8192).map(|i| i * 64).collect();
        for _ in 0..5 {
            for &a in &lines {
                full.access(a, false);
                slim.access(a, false);
            }
        }
        assert!(slim.misses() > full.misses() * 2);
    }
}

#[cfg(test)]
mod resize_tests {
    use super::*;

    #[test]
    fn growing_preserves_contents() {
        let mut c = Cache::new(CacheConfig::new(4096, 2));
        c.access(0, false);
        c.access(64, false);
        c.set_ways(4);
        assert_eq!(c.config().ways, 4);
        assert_eq!(c.access(0, false), Access::Hit);
        assert_eq!(c.access(64, false), Access::Hit);
    }

    #[test]
    fn shrinking_keeps_retained_ways_only() {
        let mut c = Cache::new(CacheConfig::new(4096, 4));
        // Fill way 0 of set 0 (addresses map to set 0 every 64*16 = 1 KiB).
        c.access(0, false);
        c.set_ways(1);
        assert_eq!(c.config().ways, 1);
        assert_eq!(c.config().size_bytes, 1024);
        assert_eq!(c.access(0, false), Access::Hit);
    }

    #[test]
    fn resize_roundtrip_capacity() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 12 << 20,
            ways: 12,
            line_bytes: 64,
            replacement: Replacement::Drrip,
        });
        c.set_ways(1);
        assert_eq!(c.config().size_bytes, 1 << 20);
        c.set_ways(12);
        assert_eq!(c.config().size_bytes, 12 << 20);
    }

    #[test]
    #[should_panic(expected = "invalid way allocation")]
    fn zero_ways_panics() {
        Cache::new(CacheConfig::new(4096, 2)).set_ways(0);
    }
}
