//! Set-associative cache models with LRU and DRRIP replacement.
//!
//! The LLC model supports way-partitioning à la Intel CAT, which is how the
//! paper measures its cache-sensitivity curves (LLC MPKI and IPC versus
//! cache allocation, Sec. IV).

use crate::mem::Addr;
use datamime_stats::Rng;
use std::fmt;

/// Replacement policy for a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used, tracked with per-line timestamps.
    Lru,
    /// Dynamic re-reference interval prediction (set-dueling SRRIP/BRRIP),
    /// the policy the paper's Broadwell LLC uses.
    Drrip,
}

/// Geometry and policy of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (64 on all modeled machines).
    pub line_bytes: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Convenience constructor with 64-byte lines and LRU replacement.
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        CacheConfig {
            size_bytes,
            ways,
            line_bytes: 64,
            replacement: Replacement::Lru,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/size, capacity not a
    /// multiple of `ways * line_bytes`, or a non-power-of-two set count).
    pub fn sets(&self) -> u64 {
        assert!(self.ways > 0 && self.size_bytes > 0 && self.line_bytes > 0);
        let sets = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(sets > 0, "cache too small for its associativity");
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two (got {sets})"
        );
        sets
    }

    /// Returns a copy restricted to `ways` ways (CAT-style partitioning):
    /// same set count, reduced associativity and capacity.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds the configured associativity.
    pub fn with_ways(&self, ways: u32) -> CacheConfig {
        assert!(
            ways > 0 && ways <= self.ways,
            "invalid way allocation {ways}"
        );
        let sets = self.sets();
        CacheConfig {
            size_bytes: sets * ways as u64 * self.line_bytes,
            ways,
            line_bytes: self.line_bytes,
            replacement: self.replacement,
        }
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KB, {}-way, {:?}",
            self.size_bytes / 1024,
            self.ways,
            self.replacement
        )
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was missing; if a dirty victim was evicted,
    /// `writeback_of` holds the victim line's address so the caller can
    /// propagate the write-back to the next level.
    Miss {
        /// Line address of the evicted dirty victim, if any.
        writeback_of: Option<crate::mem::Addr>,
    },
}

impl Access {
    /// Returns `true` for [`Access::Miss`].
    pub fn is_miss(&self) -> bool {
        matches!(self, Access::Miss { .. })
    }
}

/// Sentinel tag marking an invalid (never-filled) way.
///
/// A real tag is `addr >> set_shift`, which can only collide with the
/// sentinel for 1-byte lines at the very top of the address space — a
/// geometry no modeled machine uses (`debug_assert`ed in `access`).
const INVALID_TAG: u64 = u64::MAX;

/// A set-associative cache.
///
/// The model is storage-free: only tags and metadata are tracked, which is
/// all the performance metrics need. Storage is structure-of-arrays over a
/// single contiguous ways axis (`set * ways + way`): the lookup scans a
/// dense `u64` tag slice instead of wider per-line structs, which is what
/// makes `access` cheap enough to run a 200-iteration Bayesian search
/// against (see docs/PERFORMANCE.md).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u64,
    set_mask: u64,
    set_shift: u32,
    ways: usize,
    /// Per-way tags; `INVALID_TAG` marks an empty way.
    tags: Vec<u64>,
    /// Per-way LRU timestamp or RRPV depending on policy.
    meta: Vec<u64>,
    /// Per-way dirty bit.
    dirty: Vec<bool>,
    clock: u64,
    // DRRIP set-dueling state.
    psel: i32,
    brrip_ctr: u32,
    rng: Rng,
    hits: u64,
    misses: u64,
}

const RRPV_MAX: u64 = 3;
const PSEL_MAX: i32 = 1023;

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let n = (sets * cfg.ways as u64) as usize;
        Cache {
            cfg,
            sets,
            set_mask: sets - 1,
            set_shift: cfg.line_bytes.trailing_zeros(),
            ways: cfg.ways as usize,
            tags: vec![INVALID_TAG; n],
            meta: vec![0; n],
            dirty: vec![false; n],
            clock: 0,
            psel: PSEL_MAX / 2,
            brrip_ctr: 0,
            rng: Rng::with_seed(0xD12),
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Cumulative hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    #[inline]
    fn set_of(&self, addr: Addr) -> u64 {
        (addr >> self.set_shift) & self.set_mask
    }

    #[inline]
    fn tag_of(&self, addr: Addr) -> u64 {
        addr >> self.set_shift
    }

    /// Accesses the line containing `addr`; `write` marks the line dirty.
    ///
    /// On a miss the line is allocated (write-allocate) and the victim's
    /// dirty state is reported so the caller can account write-back traffic.
    pub fn access(&mut self, addr: Addr, write: bool) -> Access {
        self.clock += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        debug_assert!(tag != INVALID_TAG, "tag collides with the invalid sentinel");
        let base = set as usize * self.ways;

        // Lookup: one bounds check for the whole set, then a dense scan of
        // the tag slice (empty ways hold INVALID_TAG and cannot match).
        let set_tags = &self.tags[base..base + self.ways];
        if let Some(way) = set_tags.iter().position(|&t| t == tag) {
            let i = base + way;
            self.dirty[i] |= write;
            self.meta[i] = match self.cfg.replacement {
                Replacement::Lru => self.clock,
                Replacement::Drrip => 0, // promote to near-immediate re-reference
            };
            self.hits += 1;
            return Access::Hit;
        }

        // Miss: choose a victim.
        self.misses += 1;
        let victim = match self.cfg.replacement {
            Replacement::Lru => {
                // First empty way if any, else the least-recent stamp
                // (first minimum — matching the pre-flattening scan order).
                match set_tags.iter().position(|&t| t == INVALID_TAG) {
                    Some(way) => base + way,
                    None => {
                        let meta = &self.meta[base..base + self.ways];
                        let mut v = 0;
                        for (w, &m) in meta.iter().enumerate() {
                            if m < meta[v] {
                                v = w;
                            }
                        }
                        base + v
                    }
                }
            }
            Replacement::Drrip => self.drrip_victim(base),
        };

        let writeback_of = if self.tags[victim] != INVALID_TAG && self.dirty[victim] {
            Some(self.tags[victim] << self.set_shift)
        } else {
            None
        };
        let insert_meta = match self.cfg.replacement {
            Replacement::Lru => self.clock,
            Replacement::Drrip => self.drrip_insert_rrpv(set),
        };
        self.tags[victim] = tag;
        self.dirty[victim] = write;
        self.meta[victim] = insert_meta;
        Access::Miss { writeback_of }
    }

    fn drrip_victim(&mut self, base: usize) -> usize {
        let tags = &self.tags[base..base + self.ways];
        if let Some(way) = tags.iter().position(|&t| t == INVALID_TAG) {
            return base + way;
        }
        let meta = &mut self.meta[base..base + self.ways];
        loop {
            if let Some(way) = meta.iter().position(|&m| m >= RRPV_MAX) {
                return base + way;
            }
            for m in meta.iter_mut() {
                *m += 1;
            }
        }
    }

    fn drrip_insert_rrpv(&mut self, set: u64) -> u64 {
        // Set dueling: low leader sets use SRRIP, high leader sets use
        // BRRIP; followers pick the policy favored by PSEL.
        const LEADERS: u64 = 32;
        let use_brrip = if set.is_multiple_of(LEADERS) {
            self.psel = (self.psel + 1).min(PSEL_MAX); // SRRIP leader missed
            false
        } else if set % LEADERS == 1 {
            self.psel = (self.psel - 1).max(0); // BRRIP leader missed
            true
        } else {
            self.psel < PSEL_MAX / 2
        };
        if use_brrip {
            // BRRIP: distant re-reference most of the time.
            self.brrip_ctr = self.brrip_ctr.wrapping_add(1);
            if self.brrip_ctr.is_multiple_of(32) || self.rng.bool(0.01) {
                RRPV_MAX - 1
            } else {
                RRPV_MAX
            }
        } else {
            // SRRIP: long (but not distant) re-reference.
            RRPV_MAX - 1
        }
    }

    /// Repartitions the cache to `new_ways` ways in place, preserving the
    /// contents of the ways that remain — matching how CAT repartitioning
    /// behaves on hardware (lines in revoked ways are dropped; lines in
    /// retained ways stay valid).
    ///
    /// # Panics
    ///
    /// Panics if `new_ways` is zero or exceeds the original associativity
    /// implied by the set count (the set count never changes).
    pub fn set_ways(&mut self, new_ways: u32) {
        assert!(new_ways > 0, "invalid way allocation");
        let old_ways = self.ways;
        let new = new_ways as usize;
        if new == old_ways {
            return;
        }
        let n = self.sets as usize * new;
        let mut tags = vec![INVALID_TAG; n];
        let mut meta = vec![0; n];
        let mut dirty = vec![false; n];
        let keep = old_ways.min(new);
        for set in 0..self.sets as usize {
            for w in 0..keep {
                tags[set * new + w] = self.tags[set * old_ways + w];
                meta[set * new + w] = self.meta[set * old_ways + w];
                dirty[set * new + w] = self.dirty[set * old_ways + w];
            }
        }
        self.tags = tags;
        self.meta = meta;
        self.dirty = dirty;
        self.ways = new;
        self.cfg.ways = new_ways;
        self.cfg.size_bytes = self.sets * new_ways as u64 * self.cfg.line_bytes;
    }

    /// Invalidates all lines and zeroes the hit/miss counters.
    pub fn reset(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.meta.fill(0);
        self.dirty.fill(false);
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lru() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            replacement: Replacement::Lru,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_lru();
        assert!(c.access(0, false).is_miss());
        assert_eq!(c.access(0, false), Access::Hit);
        assert_eq!(c.access(63, false), Access::Hit); // same line
        assert!(c.access(64, false).is_miss()); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_lru();
        // Set 0 holds lines with addr % 256 == 0 (4 sets x 64B): 0, 256, 512.
        c.access(0, false);
        c.access(256, false);
        c.access(0, false); // refresh line 0
        c.access(512, false); // evicts 256
        assert_eq!(c.access(0, false), Access::Hit);
        assert!(c.access(256, false).is_miss());
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small_lru();
        c.access(0, true); // dirty
        c.access(256, false);
        match c.access(512, false) {
            Access::Miss { writeback_of } => assert_eq!(writeback_of, Some(0)),
            Access::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = small_lru();
        c.access(0, false);
        c.access(256, false);
        match c.access(512, false) {
            Access::Miss { writeback_of } => assert_eq!(writeback_of, None),
            Access::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let cfg = CacheConfig::new(32 * 1024, 8);
        let mut c = Cache::new(cfg);
        let lines: Vec<u64> = (0..256).map(|i| i * 64).collect(); // 16 KB
        for &a in &lines {
            c.access(a, false);
        }
        let miss_before = c.misses();
        for _ in 0..10 {
            for &a in &lines {
                c.access(a, false);
            }
        }
        assert_eq!(c.misses(), miss_before, "warm working set should not miss");
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_lru() {
        // 512 B cache, 1 KB circular working set: LRU misses every access.
        let mut c = small_lru();
        let lines: Vec<u64> = (0..16).map(|i| i * 64).collect();
        for _ in 0..4 {
            for &a in &lines {
                c.access(a, false);
            }
        }
        let total = c.hits() + c.misses();
        assert_eq!(c.misses(), total, "LRU must thrash on cyclic overflow");
    }

    #[test]
    fn drrip_outperforms_lru_on_thrashing_pattern() {
        let mk = |rep| {
            Cache::new(CacheConfig {
                size_bytes: 16 * 1024,
                ways: 8,
                line_bytes: 64,
                replacement: rep,
            })
        };
        let mut lru = mk(Replacement::Lru);
        let mut drrip = mk(Replacement::Drrip);
        // Cyclic working set 2x the cache: classic LRU pathology.
        let lines: Vec<u64> = (0..512).map(|i| i * 64).collect();
        for _ in 0..40 {
            for &a in &lines {
                lru.access(a, false);
                drrip.access(a, false);
            }
        }
        assert!(
            drrip.hits() > lru.hits(),
            "drrip hits {} <= lru hits {}",
            drrip.hits(),
            lru.hits()
        );
    }

    #[test]
    fn with_ways_partitioning_shrinks_capacity() {
        let cfg = CacheConfig {
            size_bytes: 12 << 20,
            ways: 12,
            line_bytes: 64,
            replacement: Replacement::Drrip,
        };
        let one = cfg.with_ways(1);
        assert_eq!(one.size_bytes, 1 << 20);
        assert_eq!(one.sets(), cfg.sets());
        let six = cfg.with_ways(6);
        assert_eq!(six.size_bytes, 6 << 20);
    }

    #[test]
    #[should_panic(expected = "invalid way allocation")]
    fn with_ways_zero_panics() {
        CacheConfig::new(1024, 4).with_ways(0);
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = small_lru();
        c.access(0, false);
        c.reset();
        assert!(c.access(0, false).is_miss());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn partitioned_cache_misses_more() {
        let cfg = CacheConfig {
            size_bytes: 1 << 20,
            ways: 16,
            line_bytes: 64,
            replacement: Replacement::Lru,
        };
        let mut full = Cache::new(cfg);
        let mut slim = Cache::new(cfg.with_ways(2));
        // Working set of 512 KB: fits in 1 MB, not in 128 KB.
        let lines: Vec<u64> = (0..8192).map(|i| i * 64).collect();
        for _ in 0..5 {
            for &a in &lines {
                full.access(a, false);
                slim.access(a, false);
            }
        }
        assert!(slim.misses() > full.misses() * 2);
    }
}

#[cfg(test)]
mod resize_tests {
    use super::*;

    #[test]
    fn growing_preserves_contents() {
        let mut c = Cache::new(CacheConfig::new(4096, 2));
        c.access(0, false);
        c.access(64, false);
        c.set_ways(4);
        assert_eq!(c.config().ways, 4);
        assert_eq!(c.access(0, false), Access::Hit);
        assert_eq!(c.access(64, false), Access::Hit);
    }

    #[test]
    fn shrinking_keeps_retained_ways_only() {
        let mut c = Cache::new(CacheConfig::new(4096, 4));
        // Fill way 0 of set 0 (addresses map to set 0 every 64*16 = 1 KiB).
        c.access(0, false);
        c.set_ways(1);
        assert_eq!(c.config().ways, 1);
        assert_eq!(c.config().size_bytes, 1024);
        assert_eq!(c.access(0, false), Access::Hit);
    }

    #[test]
    fn resize_roundtrip_capacity() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 12 << 20,
            ways: 12,
            line_bytes: 64,
            replacement: Replacement::Drrip,
        });
        c.set_ways(1);
        assert_eq!(c.config().size_bytes, 1 << 20);
        c.set_ways(12);
        assert_eq!(c.config().size_bytes, 12 << 20);
    }

    #[test]
    #[should_panic(expected = "invalid way allocation")]
    fn zero_ways_panics() {
        Cache::new(CacheConfig::new(4096, 2)).set_ways(0);
    }
}
