//! Scalar reference models for the batched hot-path kernels.
//!
//! [`RefCache`] and [`RefTlb`] are deliberate, unoptimized transcriptions
//! of the pre-batching `Cache`/`Tlb` access logic: per-access `position()`
//! scans, a per-access replacement-policy dispatch, and data-dependent
//! branches everywhere. They exist so the optimized implementations can be
//! *proved* equivalent rather than trusted:
//!
//! - the property tests in `tests/batched_equivalence.rs` drive random
//!   address streams through both models and assert every per-access
//!   result (hit/miss and write-back address) and every counter match;
//! - `bench_sim --cross-check` replays the checksum kernels against these
//!   models and fails if any checksum diverges.
//!
//! Keep this module boring. If you are editing it to make it faster, you
//! are in the wrong file (see docs/PERFORMANCE.md, "How to land a perf
//! PR").

use crate::cache::{Access, CacheConfig, Replacement};
use crate::mem::{Addr, PAGE_BYTES};
use crate::tlb::TlbConfig;
use datamime_stats::Rng;

const INVALID_TAG: u64 = u64::MAX;
const RRPV_MAX: u64 = 3;
const PSEL_MAX: i32 = 1023;

/// Scalar reference implementation of [`crate::Cache`].
///
/// # Examples
///
/// ```
/// use datamime_sim::{Cache, CacheConfig, RefCache};
///
/// let cfg = CacheConfig::new(4096, 2);
/// let mut fast = Cache::new(cfg);
/// let mut reference = RefCache::new(cfg);
/// for addr in [0u64, 64, 4096, 0, 64] {
///     assert_eq!(fast.access(addr, false), reference.access(addr, false));
/// }
/// assert_eq!(fast.hits(), reference.hits());
/// ```
#[derive(Debug, Clone)]
pub struct RefCache {
    cfg: CacheConfig,
    sets: u64,
    set_mask: u64,
    set_shift: u32,
    ways: usize,
    tags: Vec<u64>,
    meta: Vec<u64>,
    dirty: Vec<bool>,
    clock: u64,
    psel: i32,
    brrip_ctr: u32,
    rng: Rng,
    hits: u64,
    misses: u64,
}

impl RefCache {
    /// Builds the reference cache from the same configuration type the
    /// optimized cache takes.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let n = (sets * cfg.ways as u64) as usize;
        RefCache {
            cfg,
            sets,
            set_mask: sets - 1,
            set_shift: cfg.line_bytes.trailing_zeros(),
            ways: cfg.ways as usize,
            tags: vec![INVALID_TAG; n],
            meta: vec![0; n],
            dirty: vec![false; n],
            clock: 0,
            psel: PSEL_MAX / 2,
            brrip_ctr: 0,
            rng: Rng::with_seed(0xD12),
            hits: 0,
            misses: 0,
        }
    }

    /// Cumulative hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Accesses the line containing `addr` exactly as the pre-batching
    /// `Cache::access` did: linear `position()` probe, then a per-access
    /// policy dispatch for the victim scan and insertion metadata.
    pub fn access(&mut self, addr: Addr, write: bool) -> Access {
        self.clock += 1;
        let set = (addr >> self.set_shift) & self.set_mask;
        let tag = addr >> self.set_shift;
        let base = set as usize * self.ways;

        let set_tags = &self.tags[base..base + self.ways];
        if let Some(way) = set_tags.iter().position(|&t| t == tag) {
            let i = base + way;
            self.dirty[i] |= write;
            self.meta[i] = match self.cfg.replacement {
                Replacement::Lru => self.clock,
                Replacement::Drrip => 0,
            };
            self.hits += 1;
            return Access::Hit;
        }

        self.misses += 1;
        let victim = match self.cfg.replacement {
            Replacement::Lru => match set_tags.iter().position(|&t| t == INVALID_TAG) {
                Some(way) => base + way,
                None => {
                    let meta = &self.meta[base..base + self.ways];
                    let mut v = 0;
                    for (w, &m) in meta.iter().enumerate() {
                        if m < meta[v] {
                            v = w;
                        }
                    }
                    base + v
                }
            },
            Replacement::Drrip => self.drrip_victim(base),
        };

        let writeback_of = if self.tags[victim] != INVALID_TAG && self.dirty[victim] {
            Some(self.tags[victim] << self.set_shift)
        } else {
            None
        };
        let insert_meta = match self.cfg.replacement {
            Replacement::Lru => self.clock,
            Replacement::Drrip => self.drrip_insert_rrpv(set),
        };
        self.tags[victim] = tag;
        self.dirty[victim] = write;
        self.meta[victim] = insert_meta;
        Access::Miss { writeback_of }
    }

    fn drrip_victim(&mut self, base: usize) -> usize {
        let tags = &self.tags[base..base + self.ways];
        if let Some(way) = tags.iter().position(|&t| t == INVALID_TAG) {
            return base + way;
        }
        let meta = &mut self.meta[base..base + self.ways];
        loop {
            if let Some(way) = meta.iter().position(|&m| m >= RRPV_MAX) {
                return base + way;
            }
            for m in meta.iter_mut() {
                *m += 1;
            }
        }
    }

    fn drrip_insert_rrpv(&mut self, set: u64) -> u64 {
        const LEADERS: u64 = 32;
        let use_brrip = if set.is_multiple_of(LEADERS) {
            self.psel = (self.psel + 1).min(PSEL_MAX);
            false
        } else if set % LEADERS == 1 {
            self.psel = (self.psel - 1).max(0);
            true
        } else {
            self.psel < PSEL_MAX / 2
        };
        if use_brrip {
            self.brrip_ctr = self.brrip_ctr.wrapping_add(1);
            if self.brrip_ctr.is_multiple_of(32) || self.rng.bool(0.01) {
                RRPV_MAX - 1
            } else {
                RRPV_MAX
            }
        } else {
            RRPV_MAX - 1
        }
    }

    /// Repartitions to `new_ways` ways, mirroring `Cache::set_ways`.
    ///
    /// # Panics
    ///
    /// Panics if `new_ways` is zero.
    pub fn set_ways(&mut self, new_ways: u32) {
        assert!(new_ways > 0, "invalid way allocation");
        let old_ways = self.ways;
        let new = new_ways as usize;
        if new == old_ways {
            return;
        }
        let n = self.sets as usize * new;
        let mut tags = vec![INVALID_TAG; n];
        let mut meta = vec![0; n];
        let mut dirty = vec![false; n];
        let keep = old_ways.min(new);
        for set in 0..self.sets as usize {
            for w in 0..keep {
                tags[set * new + w] = self.tags[set * old_ways + w];
                meta[set * new + w] = self.meta[set * old_ways + w];
                dirty[set * new + w] = self.dirty[set * old_ways + w];
            }
        }
        self.tags = tags;
        self.meta = meta;
        self.dirty = dirty;
        self.ways = new;
        self.cfg.ways = new_ways;
        self.cfg.size_bytes = self.sets * new_ways as u64 * self.cfg.line_bytes;
    }
}

/// Scalar reference implementation of [`crate::Tlb`].
///
/// # Examples
///
/// ```
/// use datamime_sim::{RefTlb, Tlb, TlbConfig};
///
/// let cfg = TlbConfig::new(16, 4);
/// let mut fast = Tlb::new(cfg);
/// let mut reference = RefTlb::new(cfg);
/// for addr in [0u64, 4096, 100, 8192, 0] {
///     assert_eq!(fast.access(addr), reference.access(addr));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RefTlb {
    sets: u64,
    ways: usize,
    tags: Vec<u64>,
    stamp: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl RefTlb {
    /// Builds the reference TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`crate::Tlb::new`]).
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0 && cfg.ways > 0 && cfg.entries.is_multiple_of(cfg.ways));
        let sets = (cfg.entries / cfg.ways) as u64;
        assert!(
            sets.is_power_of_two(),
            "TLB set count must be a power of two"
        );
        let n = cfg.entries as usize;
        RefTlb {
            sets,
            ways: cfg.ways as usize,
            tags: vec![INVALID_TAG; n],
            stamp: vec![0; n],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates the page containing `addr` exactly as the pre-batching
    /// `Tlb::access` did.
    pub fn access(&mut self, addr: Addr) -> bool {
        self.clock += 1;
        let page = addr / PAGE_BYTES;
        let set = page & (self.sets - 1);
        let tag = page;
        let base = (set as usize) * self.ways;
        let set_tags = &self.tags[base..base + self.ways];
        if let Some(way) = set_tags.iter().position(|&t| t == tag) {
            self.stamp[base + way] = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        let mut v = base;
        if let Some(way) = set_tags.iter().position(|&t| t == INVALID_TAG) {
            v = base + way;
        } else {
            for i in base + 1..base + self.ways {
                if self.stamp[i] < self.stamp[v] {
                    v = i;
                }
            }
        }
        self.tags[v] = tag;
        self.stamp[v] = self.clock;
        false
    }

    /// Cumulative hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}
