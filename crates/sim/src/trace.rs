//! Recording and replaying execution traces.
//!
//! The applications in this reproduction are *execution-driven*: their
//! access streams react to machine state only through the data structures
//! they traverse, never through timing. A recorded trace therefore replays
//! the exact event stream, which enables the trace-vs-execution ablation
//! DESIGN.md calls out: replaying one trace across different machine
//! configurations shows what a trace-driven methodology would capture
//! (and, for adaptive workloads, what it would miss).

use crate::machine::Machine;
use crate::mem::Addr;

/// One recorded machine event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// Straight-line code execution (`exec_ilp`).
    Exec {
        /// Program counter.
        pc: Addr,
        /// Span length in bytes.
        code_bytes: u64,
        /// Instructions retired.
        instrs: u64,
        /// Effective ILP cap.
        ilp: f64,
    },
    /// A data load.
    Load {
        /// Address.
        addr: Addr,
        /// Size in bytes.
        size: u64,
    },
    /// A data store.
    Store {
        /// Address.
        addr: Addr,
        /// Size in bytes.
        size: u64,
    },
    /// A conditional branch.
    Branch {
        /// Branch site.
        pc: Addr,
        /// Actual outcome.
        taken: bool,
    },
    /// Idle wall-clock time.
    Idle {
        /// Idle duration in cycles.
        cycles: u64,
    },
}

/// A recorded sequence of machine events.
///
/// # Examples
///
/// ```
/// use datamime_sim::{Machine, MachineConfig, Trace};
///
/// // Record a short run...
/// let mut m = Machine::new(MachineConfig::broadwell());
/// m.start_recording();
/// m.exec(0x4000_0000, 256, 64);
/// m.load(0x10_0000_0000, 8);
/// let trace = m.stop_recording().unwrap();
/// assert_eq!(trace.len(), 2);
///
/// // ...and replay it bit-identically on a fresh machine.
/// let mut fresh = Machine::new(MachineConfig::broadwell());
/// trace.replay(&mut fresh);
/// assert_eq!(fresh.counters(), m.counters());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Replays the whole trace on `machine`.
    pub fn replay(&self, machine: &mut Machine) {
        self.replay_range(machine, 0, self.events.len());
    }

    /// Replays events `[start, end)` (clipped to the trace length),
    /// returning how many events were replayed. Useful for chunked replay
    /// under a request harness.
    pub fn replay_range(&self, machine: &mut Machine, start: usize, end: usize) -> usize {
        let end = end.min(self.events.len());
        let start = start.min(end);
        for &ev in &self.events[start..end] {
            match ev {
                TraceEvent::Exec {
                    pc,
                    code_bytes,
                    instrs,
                    ilp,
                } => machine.exec_ilp(pc, code_bytes, instrs, ilp),
                TraceEvent::Load { addr, size } => machine.load(addr, size),
                TraceEvent::Store { addr, size } => machine.store(addr, size),
                TraceEvent::Branch { pc, taken } => machine.branch(pc, taken),
                TraceEvent::Idle { cycles } => machine.idle(cycles),
            }
        }
        end - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use datamime_stats::Rng;

    fn random_run(machine: &mut Machine, seed: u64, n: usize) {
        let mut rng = Rng::with_seed(seed);
        for _ in 0..n {
            match rng.below(5) {
                0 => machine.exec(0x4000_0000 + rng.below(1 << 16), 64 + rng.below(4096), 100),
                1 => machine.load(0x10_0000_0000 + rng.below(1 << 24), 1 + rng.below(256)),
                2 => machine.store(0x10_0000_0000 + rng.below(1 << 24), 1 + rng.below(256)),
                3 => machine.branch(0x4000_0000 + rng.below(4096), rng.bool(0.5)),
                _ => machine.idle(rng.below(10_000)),
            }
        }
    }

    #[test]
    fn replay_reproduces_counters_exactly() {
        let mut recorded = Machine::new(MachineConfig::broadwell());
        recorded.start_recording();
        random_run(&mut recorded, 7, 500);
        let trace = recorded.stop_recording().unwrap();
        assert_eq!(trace.len(), 500);

        let mut replayed = Machine::new(MachineConfig::broadwell());
        trace.replay(&mut replayed);
        assert_eq!(replayed.counters(), recorded.counters());
    }

    #[test]
    fn replay_on_other_machine_differs_in_cycles_not_instructions() {
        let mut recorded = Machine::new(MachineConfig::broadwell());
        recorded.start_recording();
        random_run(&mut recorded, 9, 300);
        let trace = recorded.stop_recording().unwrap();

        let mut slm = Machine::new(MachineConfig::silvermont());
        trace.replay(&mut slm);
        assert_eq!(
            slm.counters().instructions,
            recorded.counters().instructions
        );
        assert!(slm.counters().busy_cycles > recorded.counters().busy_cycles);
    }

    #[test]
    fn chunked_replay_equals_whole_replay() {
        let mut recorded = Machine::new(MachineConfig::broadwell());
        recorded.start_recording();
        random_run(&mut recorded, 11, 200);
        let trace = recorded.stop_recording().unwrap();

        let mut whole = Machine::new(MachineConfig::broadwell());
        trace.replay(&mut whole);
        let mut chunked = Machine::new(MachineConfig::broadwell());
        let mut pos = 0;
        while pos < trace.len() {
            pos += trace.replay_range(&mut chunked, pos, pos + 37);
        }
        assert_eq!(chunked.counters(), whole.counters());
    }

    #[test]
    fn stop_without_start_returns_none() {
        let mut m = Machine::new(MachineConfig::broadwell());
        assert!(m.stop_recording().is_none());
    }

    #[test]
    fn recording_does_not_perturb_execution() {
        let mut plain = Machine::new(MachineConfig::broadwell());
        random_run(&mut plain, 13, 200);
        let mut recording = Machine::new(MachineConfig::broadwell());
        recording.start_recording();
        random_run(&mut recording, 13, 200);
        let _ = recording.stop_recording();
        assert_eq!(plain.counters(), recording.counters());
    }

    #[test]
    fn replay_range_clips() {
        let trace = Trace::new();
        let mut m = Machine::new(MachineConfig::broadwell());
        assert_eq!(trace.replay_range(&mut m, 5, 100), 0);
    }
}
