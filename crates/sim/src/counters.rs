//! Hardware-performance-counter analog.

/// Raw event counts accumulated by a [`crate::Machine`].
///
/// This is the simulator's analog of the hardware performance counters the
/// paper reads with `perf`: a passive, plain-data snapshot that samplers
/// diff over intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Instructions retired.
    pub instructions: u64,
    /// Core cycles while executing work.
    pub busy_cycles: u64,
    /// Cycles the core sat idle waiting for requests.
    pub idle_cycles: u64,
    /// L1 instruction cache misses.
    pub l1i_misses: u64,
    /// L1 data cache misses.
    pub l1d_misses: u64,
    /// Unified L2 misses.
    pub l2_misses: u64,
    /// Last-level cache misses (equals `l2_misses` on machines without an L3).
    pub llc_misses: u64,
    /// Instruction TLB misses.
    pub itlb_misses: u64,
    /// Data TLB misses.
    pub dtlb_misses: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Branch mispredictions.
    pub branch_mispredicts: u64,
    /// Bytes moved between the LLC and memory (fills + write-backs).
    pub memory_bytes: u64,
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Element-wise difference `self - earlier`, for interval sampling.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter went backwards.
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        debug_assert!(self.instructions >= earlier.instructions);
        Counters {
            instructions: self.instructions - earlier.instructions,
            busy_cycles: self.busy_cycles - earlier.busy_cycles,
            idle_cycles: self.idle_cycles - earlier.idle_cycles,
            l1i_misses: self.l1i_misses - earlier.l1i_misses,
            l1d_misses: self.l1d_misses - earlier.l1d_misses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            llc_misses: self.llc_misses - earlier.llc_misses,
            itlb_misses: self.itlb_misses - earlier.itlb_misses,
            dtlb_misses: self.dtlb_misses - earlier.dtlb_misses,
            branches: self.branches - earlier.branches,
            branch_mispredicts: self.branch_mispredicts - earlier.branch_mispredicts,
            memory_bytes: self.memory_bytes - earlier.memory_bytes,
        }
    }

    /// Instructions per busy cycle (`0` when no cycles elapsed).
    pub fn ipc(&self) -> f64 {
        if self.busy_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.busy_cycles as f64
        }
    }

    /// Misses per kilo-instruction for an event count.
    pub fn mpki(&self, misses: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Fraction of wall-clock cycles the core was busy.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_cycles + self.idle_cycles;
        if total == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }

    /// Memory bandwidth in GB/s for a core running at `freq_ghz`, over the
    /// wall-clock (busy + idle) duration of this delta.
    pub fn memory_bandwidth_gbps(&self, freq_ghz: f64) -> f64 {
        let total = self.busy_cycles + self.idle_cycles;
        if total == 0 {
            return 0.0;
        }
        let seconds = total as f64 / (freq_ghz * 1e9);
        self.memory_bytes as f64 / 1e9 / seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_arithmetic() {
        let a = Counters {
            instructions: 100,
            busy_cycles: 200,
            ..Counters::new()
        };
        let b = Counters {
            instructions: 350,
            busy_cycles: 600,
            ..Counters::new()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.instructions, 250);
        assert_eq!(d.busy_cycles, 400);
    }

    #[test]
    fn derived_metrics() {
        let c = Counters {
            instructions: 2000,
            busy_cycles: 1000,
            idle_cycles: 3000,
            llc_misses: 10,
            memory_bytes: 640,
            ..Counters::new()
        };
        assert_eq!(c.ipc(), 2.0);
        assert_eq!(c.mpki(c.llc_misses), 5.0);
        assert_eq!(c.utilization(), 0.25);
        let bw = c.memory_bandwidth_gbps(2.0);
        // 640 B over 4000 cycles at 2 GHz = 640 / 2e-6 s = 0.32 GB/s.
        assert!((bw - 0.32).abs() < 1e-9, "bw {bw}");
    }

    #[test]
    fn empty_counters_are_safe() {
        let c = Counters::new();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.mpki(0), 0.0);
        assert_eq!(c.utilization(), 0.0);
        assert_eq!(c.memory_bandwidth_gbps(2.0), 0.0);
    }
}
