//! Translation lookaside buffer models.

use crate::mem::{Addr, PAGE_BYTES};

/// Geometry of a [`Tlb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total number of entries.
    pub entries: u32,
    /// Associativity (`entries` must be a multiple of `ways`).
    pub ways: u32,
}

impl TlbConfig {
    /// Creates a TLB configuration.
    pub fn new(entries: u32, ways: u32) -> Self {
        TlbConfig { entries, ways }
    }
}

/// Sentinel tag marking an empty TLB entry. Real tags are page numbers
/// (`addr / 4096`), which can never reach `u64::MAX`, so tag equality alone
/// decides hits — no separate `valid` array to scan.
const INVALID_TAG: u64 = u64::MAX;

/// A set-associative TLB with LRU replacement over 4 KiB pages.
///
/// # Examples
///
/// ```
/// use datamime_sim::{Tlb, TlbConfig};
///
/// let mut t = Tlb::new(TlbConfig::new(64, 4));
/// assert!(!t.access(0x1000)); // cold miss
/// assert!(t.access(0x1fff));  // same page: hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    sets: u64,
    ways: usize,
    tags: Vec<u64>,
    stamp: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero entries/ways, `entries`
    /// not a multiple of `ways`, or a non-power-of-two set count).
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0 && cfg.ways > 0 && cfg.entries.is_multiple_of(cfg.ways));
        assert!(cfg.ways <= 64, "associativity above 64 is unsupported");
        let sets = (cfg.entries / cfg.ways) as u64;
        assert!(
            sets.is_power_of_two(),
            "TLB set count must be a power of two"
        );
        let n = cfg.entries as usize;
        Tlb {
            cfg,
            sets,
            ways: cfg.ways as usize,
            tags: vec![INVALID_TAG; n],
            stamp: vec![0; n],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Set probe: a way-0 fast check, then a branch-free match bitmask over
    /// the remaining ways (first set bit wins, so the result is the first
    /// matching way either way).
    ///
    /// The way-0 check is load-bearing: translations install into the first
    /// free way, so a loop running over one hot page (the `sampler_poll`
    /// shape — and every request-replay inner loop) hits way 0 with a
    /// perfectly predicted branch and skips the full-width scan entirely.
    /// Thrashing streams fall through to the bitmask, which beats an
    /// early-exit scan there because the exit iteration is unpredictable.
    #[inline]
    fn probe(&self, base: usize, tag: u64) -> Option<usize> {
        let set_tags = &self.tags[base..base + self.ways];
        if set_tags[0] == tag {
            return Some(0);
        }
        let mut mask: u64 = 0;
        for (w, &t) in set_tags.iter().enumerate().skip(1) {
            mask |= u64::from(t == tag) << w;
        }
        if mask != 0 {
            Some(mask.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// Translates the page containing `addr`, returning `true` on a hit.
    /// Misses install the translation (LRU victim).
    #[inline]
    pub fn access(&mut self, addr: Addr) -> bool {
        self.clock += 1;
        let page = addr / PAGE_BYTES;
        let set = page & (self.sets - 1);
        let tag = page;
        let base = (set as usize) * self.ways;
        if let Some(way) = self.probe(base, tag) {
            self.stamp[base + way] = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        let v = match self.probe(base, INVALID_TAG) {
            Some(way) => base + way,
            None => {
                // Conditional-move first-minimum scan over the stamps,
                // matching the old `if stamp[i] < stamp[v]` loop.
                let stamps = &self.stamp[base..base + self.ways];
                let mut v = 0usize;
                let mut best = stamps[0];
                for (w, &s) in stamps.iter().enumerate().skip(1) {
                    let better = s < best;
                    v = if better { w } else { v };
                    best = if better { s } else { best };
                }
                base + v
            }
        };
        self.tags[v] = tag;
        self.stamp[v] = self.clock;
        false
    }

    /// Resets the TLB in place to exactly the state
    /// [`Tlb::new(cfg)`](Tlb::new) would produce, reusing the entry arrays
    /// when the geometry is unchanged (the arena-reuse hook).
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`Tlb::new`]).
    pub fn reinit(&mut self, cfg: TlbConfig) {
        assert!(cfg.entries > 0 && cfg.ways > 0 && cfg.entries.is_multiple_of(cfg.ways));
        assert!(cfg.ways <= 64, "associativity above 64 is unsupported");
        let sets = (cfg.entries / cfg.ways) as u64;
        assert!(
            sets.is_power_of_two(),
            "TLB set count must be a power of two"
        );
        let n = cfg.entries as usize;
        if n == self.tags.len() {
            self.tags.fill(INVALID_TAG);
            self.stamp.fill(0);
        } else {
            self.tags.clear();
            self.tags.resize(n, INVALID_TAG);
            self.stamp.clear();
            self.stamp.resize(n, 0);
        }
        self.cfg = cfg;
        self.sets = sets;
        self.ways = cfg.ways as usize;
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// Cumulative hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Coverage in bytes (`entries * 4 KiB`).
    pub fn reach_bytes(&self) -> u64 {
        self.cfg.entries as u64 * PAGE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(TlbConfig::new(16, 4));
        assert!(!t.access(0));
        assert!(t.access(100));
        assert!(t.access(4095));
        assert!(!t.access(4096));
    }

    #[test]
    fn footprint_within_reach_stops_missing() {
        let mut t = Tlb::new(TlbConfig::new(64, 4));
        let pages: Vec<u64> = (0..32).map(|i| i * PAGE_BYTES).collect();
        for &p in &pages {
            t.access(p);
        }
        let before = t.misses();
        for _ in 0..8 {
            for &p in &pages {
                t.access(p);
            }
        }
        assert_eq!(t.misses(), before);
    }

    #[test]
    fn footprint_beyond_reach_keeps_missing() {
        let mut t = Tlb::new(TlbConfig::new(16, 4));
        let pages: Vec<u64> = (0..64).map(|i| i * PAGE_BYTES).collect();
        for _ in 0..4 {
            for &p in &pages {
                t.access(p);
            }
        }
        assert!(t.misses() > 64, "misses {}", t.misses());
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        Tlb::new(TlbConfig::new(10, 4));
    }

    #[test]
    fn reach() {
        let t = Tlb::new(TlbConfig::new(64, 4));
        assert_eq!(t.reach_bytes(), 64 * 4096);
    }
}
