//! Translation lookaside buffer models.

use crate::mem::{Addr, PAGE_BYTES};

/// Geometry of a [`Tlb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total number of entries.
    pub entries: u32,
    /// Associativity (`entries` must be a multiple of `ways`).
    pub ways: u32,
}

impl TlbConfig {
    /// Creates a TLB configuration.
    pub fn new(entries: u32, ways: u32) -> Self {
        TlbConfig { entries, ways }
    }
}

/// Sentinel tag marking an empty TLB entry. Real tags are page numbers
/// (`addr / 4096`), which can never reach `u64::MAX`, so tag equality alone
/// decides hits — no separate `valid` array to scan.
const INVALID_TAG: u64 = u64::MAX;

/// A set-associative TLB with LRU replacement over 4 KiB pages.
///
/// # Examples
///
/// ```
/// use datamime_sim::{Tlb, TlbConfig};
///
/// let mut t = Tlb::new(TlbConfig::new(64, 4));
/// assert!(!t.access(0x1000)); // cold miss
/// assert!(t.access(0x1fff));  // same page: hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    sets: u64,
    ways: usize,
    tags: Vec<u64>,
    stamp: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero entries/ways, `entries`
    /// not a multiple of `ways`, or a non-power-of-two set count).
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0 && cfg.ways > 0 && cfg.entries.is_multiple_of(cfg.ways));
        let sets = (cfg.entries / cfg.ways) as u64;
        assert!(
            sets.is_power_of_two(),
            "TLB set count must be a power of two"
        );
        let n = cfg.entries as usize;
        Tlb {
            cfg,
            sets,
            ways: cfg.ways as usize,
            tags: vec![INVALID_TAG; n],
            stamp: vec![0; n],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates the page containing `addr`, returning `true` on a hit.
    /// Misses install the translation (LRU victim).
    #[inline]
    pub fn access(&mut self, addr: Addr) -> bool {
        self.clock += 1;
        let page = addr / PAGE_BYTES;
        let set = page & (self.sets - 1);
        let tag = page;
        let base = (set as usize) * self.ways;
        let set_tags = &self.tags[base..base + self.ways];
        if let Some(way) = set_tags.iter().position(|&t| t == tag) {
            self.stamp[base + way] = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        let mut v = base;
        if let Some(way) = set_tags.iter().position(|&t| t == INVALID_TAG) {
            v = base + way;
        } else {
            for i in base + 1..base + self.ways {
                if self.stamp[i] < self.stamp[v] {
                    v = i;
                }
            }
        }
        self.tags[v] = tag;
        self.stamp[v] = self.clock;
        false
    }

    /// Cumulative hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Coverage in bytes (`entries * 4 KiB`).
    pub fn reach_bytes(&self) -> u64 {
        self.cfg.entries as u64 * PAGE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(TlbConfig::new(16, 4));
        assert!(!t.access(0));
        assert!(t.access(100));
        assert!(t.access(4095));
        assert!(!t.access(4096));
    }

    #[test]
    fn footprint_within_reach_stops_missing() {
        let mut t = Tlb::new(TlbConfig::new(64, 4));
        let pages: Vec<u64> = (0..32).map(|i| i * PAGE_BYTES).collect();
        for &p in &pages {
            t.access(p);
        }
        let before = t.misses();
        for _ in 0..8 {
            for &p in &pages {
                t.access(p);
            }
        }
        assert_eq!(t.misses(), before);
    }

    #[test]
    fn footprint_beyond_reach_keeps_missing() {
        let mut t = Tlb::new(TlbConfig::new(16, 4));
        let pages: Vec<u64> = (0..64).map(|i| i * PAGE_BYTES).collect();
        for _ in 0..4 {
            for &p in &pages {
                t.access(p);
            }
        }
        assert!(t.misses() > 64, "misses {}", t.misses());
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        Tlb::new(TlbConfig::new(10, 4));
    }

    #[test]
    fn reach() {
        let t = Tlb::new(TlbConfig::new(64, 4));
        assert_eq!(t.reach_bytes(), 64 * 4096);
    }
}
