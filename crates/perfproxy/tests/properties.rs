//! Property-based tests of the PerfProx-style proxy generator: it must
//! produce a valid, runnable benchmark for *any* plausible target
//! statistics (including degenerate ones).

use datamime_apps::App;
use datamime_perfproxy::{CloneStats, PerfProxClone};
use datamime_sim::{Machine, MachineConfig};
use datamime_stats::Rng;
use proptest::prelude::*;

fn any_stats() -> impl Strategy<Value = CloneStats> {
    (
        0.0f64..200.0, // l1d
        0.0f64..50.0,  // llc
        0.0f64..100.0, // icache
        0.0f64..20.0,  // branch
        0.1f64..4.0,   // ipc
    )
        .prop_map(
            |(l1d_mpki, llc, icache_mpki, branch_mpki, ipc)| CloneStats {
                l1d_mpki,
                llc_mpki: llc.min(l1d_mpki),
                icache_mpki,
                branch_mpki,
                ipc,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn proxy_runs_for_any_stats(stats in any_stats(), seed in any::<u64>()) {
        let mut proxy = PerfProxClone::new(stats, seed);
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut rng = Rng::with_seed(seed);
        for _ in 0..20 {
            proxy.serve(&mut machine, &mut rng);
        }
        let c = machine.counters();
        prop_assert!(c.instructions > 100_000);
        prop_assert!(c.ipc() > 0.0 && c.ipc() <= 4.0 + 1e-9);
        prop_assert!(proxy.n_blocks() >= 8 && proxy.n_blocks() <= 112);
    }

    #[test]
    fn proxy_l1d_calibration_tracks_requested_rate(l1d in 2.0f64..120.0, seed in any::<u64>()) {
        let stats = CloneStats { l1d_mpki: l1d, llc_mpki: 0.0, icache_mpki: 0.0, branch_mpki: 0.0, ipc: 1.0 };
        let mut proxy = PerfProxClone::new(stats, seed);
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut rng = Rng::with_seed(seed);
        for _ in 0..100 {
            proxy.serve(&mut machine, &mut rng);
        }
        let got = machine.counters().mpki(machine.counters().l1d_misses);
        // Within 40% of the requested rate (stream reuse adds slack).
        prop_assert!((got - l1d).abs() / l1d < 0.4, "requested {l1d}, got {got}");
    }

    #[test]
    fn proxy_is_deterministic(stats in any_stats(), seed in any::<u64>()) {
        let run = |s: CloneStats| {
            let mut proxy = PerfProxClone::new(s, seed);
            let mut machine = Machine::new(MachineConfig::broadwell());
            let mut rng = Rng::with_seed(1);
            for _ in 0..10 {
                proxy.serve(&mut machine, &mut rng);
            }
            *machine.counters()
        };
        prop_assert_eq!(run(stats), run(stats));
    }
}
