//! A PerfProx-style black-box workload cloning baseline.
//!
//! PerfProx (Panda & John, PACT 2017) is the state-of-the-art black-box
//! cloner the paper compares against: it profiles *average* statistics of
//! the target (instruction mix, basic-block structure, branch behaviour,
//! cache miss rates, dominant strides) and emits a small synthetic program
//! replaying them. This crate reimplements that recipe against the
//! simulator:
//!
//! - [`CloneStats`] extracts the average statistics from a target
//!   [`Profile`] (all a black-box cloner gets to see);
//! - [`PerfProxClone`] is the synthetic proxy: a population of basic
//!   blocks executed in a fixed round-robin order, loads with a dominant
//!   stride over a working-set-sized array (plus a random-jump fraction),
//!   and Bernoulli branches calibrated to the target's mispredict rate.
//!
//! The proxy's weaknesses in the paper emerge *structurally* here, not by
//! construction: round-robin block execution is far more icache-friendly
//! than real data-dependent code paths (PerfProx undershoots ICache MPKI
//! by 7.8× in Fig. 1); strided streams engage the prefetcher (IPC
//! overshoot); a single array produces sharp cache cliffs (Fig. 7); and a
//! fixed loop has no request structure, so CPU utilization pins at 1.0 and
//! every distribution collapses to a point (Figs. 4 and 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use datamime::metrics::DistMetric;
use datamime::profile::Profile;
use datamime_apps::{App, CodeLayout, CodeRegion};
use datamime_sim::{Addr, Machine, Segment, SimAlloc};
use datamime_stats::dist::Zipf;
use datamime_stats::Rng;

/// The average statistics a black-box cloner extracts from the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloneStats {
    /// Mean L1D misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// Mean LLC misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Mean L1I misses per kilo-instruction.
    pub icache_mpki: f64,
    /// Mean branch mispredictions per kilo-instruction.
    pub branch_mpki: f64,
    /// Mean IPC (used only for reporting; the proxy does not target it).
    pub ipc: f64,
}

impl CloneStats {
    /// Extracts the averages from a target profile.
    pub fn from_profile(profile: &Profile) -> Self {
        CloneStats {
            l1d_mpki: profile.mean(DistMetric::L1dMpki),
            llc_mpki: profile.mean(DistMetric::LlcMpki),
            icache_mpki: profile.mean(DistMetric::ICacheMpki),
            branch_mpki: profile.mean(DistMetric::BranchMpki),
            ipc: profile.mean(DistMetric::Ipc),
        }
    }
}

const CHUNK_INSTRS: u64 = 10_000;
const BLOCK_BYTES: u64 = 1024;
const LINE: u64 = 64;

/// The synthetic proxy benchmark generated from [`CloneStats`].
///
/// Implements [`App`] so it can run under the same harness as real
/// workloads, but it is a fixed loop: each `serve` call executes one
/// constant-size chunk of the loop regardless of any request context.
#[derive(Debug)]
pub struct PerfProxClone {
    stats: CloneStats,
    blocks: Vec<CodeRegion>,
    /// Statistical-flow-graph transition skew: popular blocks dominate.
    block_popularity: Zipf,
    /// Streaming array approximating the data working set.
    stream_base: Addr,
    stream_bytes: u64,
    stream_pos: u64,
    /// Large array for accesses that must miss the LLC.
    far_base: Addr,
    far_bytes: u64,
    far_pos: u64,
    /// Loads per kilo-instruction, split between the two arrays.
    near_loads_per_kinstr: f64,
    far_loads_per_kinstr: f64,
    /// Branches per kilo-instruction and their taken probability.
    branches_per_kinstr: f64,
    branch_taken_p: f64,
    rng: Rng,
}

impl PerfProxClone {
    /// Generates a proxy from the target's average statistics.
    pub fn new(stats: CloneStats, seed: u64) -> Self {
        let mut alloc = SimAlloc::new();
        let mut layout = CodeLayout::new(&mut alloc);

        // Basic-block population: PerfProx "reduces the original
        // application down to a small binary" (paper Sec. II-B) — the
        // block count grows with the observed ICache MPKI but the whole
        // proxy stays a few tens of KB and is executed round-robin, which
        // is why it badly undershoots icache-heavy targets' miss rates.
        let n_blocks = ((stats.icache_mpki.max(0.0) * 2.0).ceil() as usize + 8).min(112);
        // Synthetic straight-line code has few dependences: high ILP.
        let blocks: Vec<CodeRegion> = (0..n_blocks)
            .map(|_| layout.region_with_ilp(BLOCK_BYTES, 2.5))
            .collect();

        // Data side: the dominant-stride stream covers the L1-missing
        // accesses; a sparse far array covers the LLC-missing fraction.
        let stream_bytes = 8 << 20; // larger than L2, smaller than LLC
        let stream_base = alloc
            .alloc(Segment::Heap, stream_bytes)
            .expect("stream array");
        let far_bytes = 512 << 20; // far beyond any LLC
        let far_base = alloc.alloc(Segment::Heap, far_bytes).expect("far array");

        let l1d = stats.l1d_mpki.max(0.0);
        let llc = stats.llc_mpki.clamp(0.0, l1d.max(0.01));
        // Every strided load touches a new line -> one L1 miss per load.
        let far_loads = llc;
        let near_loads = (l1d - llc).max(0.0);

        // Branch calibration: a gshare predictor mispredicts a Bernoulli(p)
        // branch at roughly min(p, 1-p); emit 25 branches per kinstr and
        // pick p to land at the target mispredict rate.
        let branches_per_kinstr = 25.0;
        let mis_rate = (stats.branch_mpki.max(0.0) / branches_per_kinstr).min(0.5);
        let branch_taken_p = mis_rate; // min(p, 1-p) = p for p <= 0.5

        let block_popularity = Zipf::new(n_blocks, 1.5).expect("valid block population");
        PerfProxClone {
            stats,
            blocks,
            block_popularity,
            stream_base,
            stream_bytes,
            stream_pos: 0,
            far_base,
            far_bytes,
            far_pos: 0,
            near_loads_per_kinstr: near_loads,
            far_loads_per_kinstr: far_loads,
            branches_per_kinstr,
            branch_taken_p,
            rng: Rng::with_seed(seed),
        }
    }

    /// Convenience constructor straight from a target profile.
    pub fn from_profile(profile: &Profile, seed: u64) -> Self {
        PerfProxClone::new(CloneStats::from_profile(profile), seed)
    }

    /// The statistics the proxy was generated from.
    pub fn stats(&self) -> &CloneStats {
        &self.stats
    }

    /// Number of synthetic basic blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }
}

impl App for PerfProxClone {
    fn name(&self) -> &str {
        "perfprox"
    }

    fn serve(&mut self, machine: &mut Machine, rng: &mut Rng) {
        // One chunk of the fixed loop: CHUNK_INSTRS instructions spread
        // over the statistical flow graph (Zipf-skewed block transitions,
        // as in basic-block cloning), interleaved with the calibrated
        // loads and branches. The skew keeps a hot subset of blocks
        // resident, which is why the proxy undershoots icache-heavy
        // targets.
        let n_blocks = self.blocks.len();
        let instrs_per_block = CHUNK_INSTRS / n_blocks as u64;
        let kinstr = CHUNK_INSTRS as f64 / 1000.0;
        let near_loads = (self.near_loads_per_kinstr * kinstr).round() as u64;
        let far_loads = (self.far_loads_per_kinstr * kinstr).round() as u64;
        let branches = (self.branches_per_kinstr * kinstr).round() as u64;

        for _ in 0..n_blocks {
            let block = self.blocks[self.block_popularity.sample_rank(&mut self.rng)];
            block.call(machine, instrs_per_block);
        }
        for _ in 0..near_loads {
            machine.load(self.stream_base + self.stream_pos, 8);
            self.stream_pos = (self.stream_pos + LINE) % self.stream_bytes;
        }
        for _ in 0..far_loads {
            // Random jumps across the far array: guaranteed LLC misses.
            self.far_pos = self.rng.below(self.far_bytes / LINE) * LINE;
            machine.load(self.far_base + self.far_pos, 8);
        }
        let site = self.blocks[0];
        for b in 0..branches {
            let taken = self.rng.bool(self.branch_taken_p);
            site.branch(machine, 64 + (b % 16) * 4, taken);
        }
        let _ = rng; // proxy randomness is self-contained for determinism
    }

    fn footprint_bytes(&self) -> u64 {
        self.stream_bytes + self.far_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamime::profiler::{profile_workload, ProfilingConfig};
    use datamime::workload::Workload;
    use datamime_apps::KvConfig;
    use datamime_sim::MachineConfig;

    fn target_profile() -> Profile {
        let mut w = Workload::mem_fb();
        if let datamime::workload::AppConfig::Kv(c) = &mut w.app {
            *c = KvConfig {
                n_keys: 20_000,
                ..c.clone()
            };
        }
        profile_workload(
            &w,
            &MachineConfig::broadwell(),
            &ProfilingConfig::fast().without_curves(),
        )
    }

    fn run_proxy(proxy: &mut PerfProxClone, chunks: usize) -> Machine {
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut rng = Rng::with_seed(1);
        for _ in 0..chunks {
            proxy.serve(&mut machine, &mut rng);
        }
        machine
    }

    #[test]
    fn proxy_matches_l1d_and_branch_averages_roughly() {
        let target = target_profile();
        let stats = CloneStats::from_profile(&target);
        let mut proxy = PerfProxClone::new(stats, 3);
        let m = run_proxy(&mut proxy, 400);
        let c = m.counters();
        let l1d = c.mpki(c.l1d_misses);
        let br = c.mpki(c.branch_mispredicts);
        assert!(
            (l1d - stats.l1d_mpki).abs() < stats.l1d_mpki.max(1.0),
            "proxy l1d {l1d} vs target {}",
            stats.l1d_mpki
        );
        assert!(
            (br - stats.branch_mpki).abs() < stats.branch_mpki.max(0.8),
            "proxy branch {br} vs target {}",
            stats.branch_mpki
        );
    }

    #[test]
    fn proxy_undershoots_icache_misses() {
        // The paper's Fig. 1: PerfProx gets 7.8x lower ICache MPKI than a
        // production-like memcached target.
        let target = target_profile();
        let stats = CloneStats::from_profile(&target);
        assert!(stats.icache_mpki > 3.0, "target should be icache-heavy");
        let mut proxy = PerfProxClone::new(stats, 3);
        let m = run_proxy(&mut proxy, 400);
        let proxy_icache = m.counters().mpki(m.counters().l1i_misses);
        assert!(
            proxy_icache < stats.icache_mpki / 3.0,
            "round-robin blocks must undershoot: proxy {proxy_icache} vs target {}",
            stats.icache_mpki
        );
    }

    #[test]
    fn proxy_overshoots_ipc_on_server_targets() {
        let target = target_profile();
        let stats = CloneStats::from_profile(&target);
        let mut proxy = PerfProxClone::new(stats, 3);
        let m = run_proxy(&mut proxy, 400);
        assert!(
            m.counters().ipc() > stats.ipc * 1.2,
            "proxy ipc {} vs target {}",
            m.counters().ipc(),
            stats.ipc
        );
    }

    #[test]
    fn proxy_is_static_over_time() {
        let target = target_profile();
        let mut proxy = PerfProxClone::from_profile(&target, 3);
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut rng = Rng::with_seed(1);
        // Warm up caches/predictors before measuring.
        for _ in 0..50 {
            proxy.serve(&mut machine, &mut rng);
        }
        let mut ipcs = Vec::new();
        for _ in 0..8 {
            let before = *machine.counters();
            for _ in 0..50 {
                proxy.serve(&mut machine, &mut rng);
            }
            let d = machine.counters().delta_since(&before);
            ipcs.push(d.ipc());
        }
        let mean = ipcs.iter().sum::<f64>() / ipcs.len() as f64;
        let sd = (ipcs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / ipcs.len() as f64).sqrt();
        assert!(
            sd / mean < 0.05,
            "proxy must have near-constant behaviour: cv {}",
            sd / mean
        );
    }

    #[test]
    fn zero_stats_produce_a_valid_tiny_proxy() {
        let stats = CloneStats {
            l1d_mpki: 0.0,
            llc_mpki: 0.0,
            icache_mpki: 0.0,
            branch_mpki: 0.0,
            ipc: 1.0,
        };
        let mut proxy = PerfProxClone::new(stats, 1);
        let m = run_proxy(&mut proxy, 10);
        assert!(m.counters().instructions >= 10 * (CHUNK_INSTRS - 1000));
        assert!(m.counters().mpki(m.counters().l1d_misses) < 1.0);
    }
}
