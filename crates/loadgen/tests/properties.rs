//! Property-based tests of the load generator's queueing invariants.

use datamime_apps::{KvConfig, KvStore};
use datamime_loadgen::{ArrivalProcess, Driver, WorkloadSpec};
use datamime_sim::{Machine, MachineConfig, Sampler};
use proptest::prelude::*;

fn run_spec(spec: WorkloadSpec, seed: u64, n_samples: usize) -> (Machine, Sampler, u64) {
    let mut app = KvStore::new(KvConfig {
        n_keys: 1_000,
        ..KvConfig::ycsb_like()
    });
    let mut machine = Machine::new(MachineConfig::broadwell());
    let mut sampler = Sampler::new(500_000);
    let stats = Driver::new(spec, seed).run(&mut app, &mut machine, &mut sampler, n_samples);
    (machine, sampler, stats.completed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn utilization_always_in_unit_interval(
        qps in 1_000.0f64..2_000_000.0,
        seed in any::<u64>(),
    ) {
        let (_, sampler, _) = run_spec(WorkloadSpec::poisson(qps), seed, 5);
        for s in sampler.samples() {
            prop_assert!((0.0..=1.0).contains(&s.cpu_utilization));
            prop_assert!(s.ipc >= 0.0 && s.ipc <= 4.0 + 1e-9);
            prop_assert!(s.memory_bw_gbps >= 0.0);
        }
    }

    #[test]
    fn wall_clock_is_monotone_with_load(seed in any::<u64>()) {
        // Lighter load means more idle cycles for the same request count,
        // so utilization must not increase when QPS decreases.
        let (light, _, _) = run_spec(WorkloadSpec::poisson(10_000.0), seed, 5);
        let (heavy, _, _) = run_spec(WorkloadSpec::poisson(400_000.0), seed, 5);
        prop_assert!(light.counters().utilization() <= heavy.counters().utilization() + 0.05);
    }

    #[test]
    fn completed_requests_positive_and_deterministic(
        qps in 5_000.0f64..500_000.0,
        seed in any::<u64>(),
    ) {
        let (_, _, a) = run_spec(WorkloadSpec::poisson(qps), seed, 4);
        let (_, _, b) = run_spec(WorkloadSpec::poisson(qps), seed, 4);
        prop_assert!(a > 0);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn mmpp_mean_rate_matches_poisson_roughly(seed in any::<u64>()) {
        // MMPP alternates around the same mean QPS; over a long run the
        // completed request counts should be comparable.
        let spec_p = WorkloadSpec::poisson(60_000.0);
        let spec_b = WorkloadSpec {
            qps: 60_000.0,
            arrivals: ArrivalProcess::Mmpp {
                high_factor: 1.5,
                low_factor: 0.5,
                switch_mean_seconds: 0.0005,
            },
        };
        let (_, _, p) = run_spec(spec_p, seed, 20);
        let (_, _, b) = run_spec(spec_b, seed, 20);
        let ratio = p as f64 / b as f64;
        prop_assert!((0.6..1.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn uniform_arrivals_have_low_latency_variance(seed in any::<u64>()) {
        let mut app = KvStore::new(KvConfig { n_keys: 1_000, ..KvConfig::ycsb_like() });
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut sampler = Sampler::new(500_000);
        let spec = WorkloadSpec { qps: 20_000.0, arrivals: ArrivalProcess::Uniform };
        let stats = Driver::new(spec, seed).run(&mut app, &mut machine, &mut sampler, 5);
        // At 20 K QPS the service time (~6 K cycles) is far below the
        // inter-arrival gap (100 K cycles): virtually no queueing, so the
        // p99/p50 ratio stays small under deterministic arrivals.
        let p50 = stats.latency_quantile(0.5).unwrap();
        let p99 = stats.latency_quantile(0.99).unwrap();
        prop_assert!(p99 / p50 < 5.0, "p99/p50 = {}", p99 / p50);
    }
}
