//! Open-loop load generation and queueing for Datamime workloads.
//!
//! The paper drives its servers with mutilate / the TailBench harness:
//! requests arrive on an open loop at a configured QPS and queue at a
//! single worker. That queueing is what produces CPU-utilization
//! distributions and the time-varying behaviour Datamime matches (Fig. 4),
//! so this crate reproduces it:
//!
//! - [`ArrivalProcess`]: Poisson, uniform, or Markov-modulated (bursty)
//!   arrivals;
//! - [`Driver`]: runs an [`App`] under a [`WorkloadSpec`] on a [`Machine`],
//!   inserting idle time between requests, polling the [`Sampler`], and
//!   recording per-request latencies.
//!
//! # Examples
//!
//! ```
//! use datamime_apps::{KvStore, KvConfig};
//! use datamime_loadgen::{Driver, WorkloadSpec, ArrivalProcess};
//! use datamime_sim::{Machine, MachineConfig, Sampler};
//!
//! let mut app = KvStore::new(KvConfig { n_keys: 2000, ..KvConfig::ycsb_like() });
//! let mut machine = Machine::new(MachineConfig::broadwell());
//! let mut sampler = Sampler::new(500_000);
//! let spec = WorkloadSpec { qps: 100_000.0, arrivals: ArrivalProcess::Poisson };
//! let stats = Driver::new(spec, 42).run(&mut app, &mut machine, &mut sampler, 10);
//! assert!(stats.completed > 0);
//! assert!(!sampler.samples().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use datamime_apps::App;
use datamime_sim::{Machine, Sampler};
use datamime_stats::{Ecdf, Rng};

/// The inter-arrival structure of the request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless Poisson arrivals (mutilate's default).
    Poisson,
    /// Deterministic, evenly spaced arrivals.
    Uniform,
    /// A two-state Markov-modulated Poisson process: the rate alternates
    /// between `high_factor * qps` and `low_factor * qps`, with state
    /// residence times exponentially distributed around
    /// `switch_mean_seconds`. This is what gives production-like workloads
    /// their wide CPU-utilization and bandwidth distributions.
    Mmpp {
        /// Rate multiplier in the high state (> 1).
        high_factor: f64,
        /// Rate multiplier in the low state (< 1).
        low_factor: f64,
        /// Mean residence time per state, in seconds.
        switch_mean_seconds: f64,
    },
}

impl ArrivalProcess {
    /// A bursty process tuned to produce visible utilization variance at
    /// the paper's 20 M-cycle sampling interval.
    pub fn bursty_default() -> Self {
        ArrivalProcess::Mmpp {
            high_factor: 1.7,
            low_factor: 0.45,
            switch_mean_seconds: 0.02,
        }
    }
}

/// A complete load specification: target rate plus arrival structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Mean request rate in queries per second.
    pub qps: f64,
    /// Arrival process shape.
    pub arrivals: ArrivalProcess,
}

impl WorkloadSpec {
    /// Poisson arrivals at `qps`.
    pub fn poisson(qps: f64) -> Self {
        WorkloadSpec {
            qps,
            arrivals: ArrivalProcess::Poisson,
        }
    }

    /// Bursty (MMPP) arrivals at mean `qps`.
    pub fn bursty(qps: f64) -> Self {
        WorkloadSpec {
            qps,
            arrivals: ArrivalProcess::bursty_default(),
        }
    }
}

/// Outcome statistics of a driven run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Requests completed.
    pub completed: u64,
    /// Wall-clock cycles spanned.
    pub wall_cycles: u64,
    /// Sojourn times (queueing + service) in cycles, one per request.
    pub latencies_cycles: Vec<u64>,
}

impl RunStats {
    /// Achieved throughput in requests per second at `freq_ghz`.
    pub fn achieved_qps(&self, freq_ghz: f64) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.wall_cycles as f64 / (freq_ghz * 1e9))
    }

    /// Latency quantile in cycles (`q` in `[0, 1]`).
    ///
    /// Returns `None` when no requests completed.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        let ecdf = Ecdf::new(self.latencies_cycles.iter().map(|&c| c as f64).collect()).ok()?;
        Some(ecdf.quantile(q))
    }
}

/// Drives an application under an open-loop request stream.
#[derive(Debug)]
pub struct Driver {
    spec: WorkloadSpec,
    rng: Rng,
    /// Extra fixed per-request latency in cycles added before completion
    /// (models NIC/network time in the Sec. V-F networked configuration;
    /// it delays completion but does not consume CPU).
    network_latency_cycles: u64,
}

impl Driver {
    /// Creates a driver for `spec`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the spec's QPS is not strictly positive and finite.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        assert!(
            spec.qps.is_finite() && spec.qps > 0.0,
            "qps must be positive"
        );
        Driver {
            spec,
            rng: Rng::with_seed(seed),
            network_latency_cycles: 0,
        }
    }

    /// Adds a fixed network round-trip latency to every request.
    pub fn with_network_latency_cycles(mut self, cycles: u64) -> Self {
        self.network_latency_cycles = cycles;
        self
    }

    fn interarrival_cycles(&mut self, freq_hz: f64, state_high: bool) -> f64 {
        let rate = match self.spec.arrivals {
            ArrivalProcess::Poisson | ArrivalProcess::Uniform => self.spec.qps,
            ArrivalProcess::Mmpp {
                high_factor,
                low_factor,
                ..
            } => self.spec.qps * if state_high { high_factor } else { low_factor },
        };
        let mean = freq_hz / rate;
        match self.spec.arrivals {
            ArrivalProcess::Uniform => mean,
            _ => -(1.0 - self.rng.f64()).ln() * mean,
        }
    }

    /// Runs until the sampler has collected `n_samples` samples (after a
    /// one-sample warm-up that is discarded), returning run statistics.
    ///
    /// The machine is left warm, so consecutive runs on the same machine
    /// continue from its state.
    pub fn run(
        &mut self,
        app: &mut dyn App,
        machine: &mut Machine,
        sampler: &mut Sampler,
        n_samples: usize,
    ) -> RunStats {
        self.run_cancellable(app, machine, sampler, n_samples, &mut || false)
    }

    /// Like [`run`](Self::run), but polls `should_stop` once per served
    /// request and returns early when it fires — the cooperative
    /// cancellation point for supervised evaluation deadlines.
    ///
    /// The early return still guarantees at least one post-warm-up sample
    /// (callers can aggregate a truncated run without special cases); with
    /// a `should_stop` that never fires this is bit-for-bit [`run`](Self::run).
    pub fn run_cancellable(
        &mut self,
        app: &mut dyn App,
        machine: &mut Machine,
        sampler: &mut Sampler,
        n_samples: usize,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> RunStats {
        let freq_hz = machine.config().freq_ghz * 1e9;
        let mut state_high = false;
        let mut next_switch = machine.wall_cycles() as f64;
        let mut next_arrival = machine.wall_cycles() as f64;
        let start = machine.wall_cycles();
        let mut completed = 0u64;
        let mut latencies = Vec::new();
        let mut warmed = false;

        while sampler.samples().len() < n_samples {
            if warmed && !sampler.samples().is_empty() && should_stop() {
                // Cancelled: stop as soon as a truncated-but-usable run
                // (>= 1 real sample) exists.
                break;
            }
            // Advance the MMPP state machine.
            if let ArrivalProcess::Mmpp {
                switch_mean_seconds,
                ..
            } = self.spec.arrivals
            {
                while machine.wall_cycles() as f64 >= next_switch {
                    state_high = !state_high;
                    let mean_cycles = switch_mean_seconds * freq_hz;
                    next_switch += -(1.0 - self.rng.f64()).ln() * mean_cycles;
                }
            }

            let wall = machine.wall_cycles();
            if (wall as f64) < next_arrival {
                // Idle until the next request arrives.
                machine.idle(next_arrival as u64 - wall);
            }
            app.serve(machine, &mut self.rng);
            let done = machine.wall_cycles() + self.network_latency_cycles;
            completed += 1;
            latencies.push(done.saturating_sub(next_arrival as u64));
            next_arrival += self.interarrival_cycles(freq_hz, state_high);
            sampler.poll(machine);
            if !warmed && !sampler.samples().is_empty() {
                // Discard the first (warm-up) sample.
                sampler.restart(machine);
                warmed = true;
                latencies.clear();
            }
        }

        RunStats {
            completed,
            wall_cycles: machine.wall_cycles() - start,
            latencies_cycles: latencies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamime_apps::{KvConfig, KvStore};
    use datamime_sim::MachineConfig;

    fn small_store() -> KvStore {
        KvStore::new(KvConfig {
            n_keys: 2_000,
            ..KvConfig::ycsb_like()
        })
    }

    fn run_with(spec: WorkloadSpec, n_samples: usize) -> (Machine, Sampler, RunStats) {
        let mut app = small_store();
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut sampler = Sampler::new(1_000_000);
        let stats = Driver::new(spec, 7).run(&mut app, &mut machine, &mut sampler, n_samples);
        (machine, sampler, stats)
    }

    #[test]
    fn utilization_tracks_offered_load() {
        // Service time ~6 K cycles at 2 GHz -> capacity ~330 K QPS.
        let (light_m, light_s, _) = run_with(WorkloadSpec::poisson(30_000.0), 8);
        let (heavy_m, heavy_s, _) = run_with(WorkloadSpec::poisson(150_000.0), 8);
        let util = |s: &Sampler| {
            s.samples().iter().map(|x| x.cpu_utilization).sum::<f64>() / s.samples().len() as f64
        };
        let (lu, hu) = (util(&light_s), util(&heavy_s));
        assert!(lu < 0.35, "light load util {lu}");
        assert!(hu > lu * 2.0, "heavy {hu} vs light {lu}");
        assert!(light_m.counters().idle_cycles > heavy_m.counters().idle_cycles / 2);
    }

    #[test]
    fn achieved_qps_matches_offered_when_underloaded() {
        let (machine, _, stats) = run_with(WorkloadSpec::poisson(50_000.0), 10);
        let qps = stats.achieved_qps(machine.config().freq_ghz);
        assert!((qps - 50_000.0).abs() / 50_000.0 < 0.15, "qps {qps}");
    }

    #[test]
    fn saturation_pins_utilization_near_one() {
        let (_, sampler, _) = run_with(WorkloadSpec::poisson(5_000_000.0), 6);
        for s in sampler.samples() {
            assert!(s.cpu_utilization > 0.95, "util {}", s.cpu_utilization);
        }
    }

    #[test]
    fn bursty_arrivals_widen_utilization_distribution() {
        let (_, poisson_s, _) = run_with(WorkloadSpec::poisson(120_000.0), 40);
        // Switch states every ~2 M cycles so the 1 M-cycle test sampling
        // interval sees both rates many times.
        let bursty = WorkloadSpec {
            qps: 120_000.0,
            arrivals: ArrivalProcess::Mmpp {
                high_factor: 1.7,
                low_factor: 0.45,
                switch_mean_seconds: 0.001,
            },
        };
        let (_, bursty_s, _) = run_with(bursty, 40);
        let spread = |s: &Sampler| {
            let us: Vec<f64> = s.samples().iter().map(|x| x.cpu_utilization).collect();
            let mean = us.iter().sum::<f64>() / us.len() as f64;
            (us.iter().map(|u| (u - mean).powi(2)).sum::<f64>() / us.len() as f64).sqrt()
        };
        assert!(
            spread(&bursty_s) > spread(&poisson_s) * 1.5,
            "bursty {} vs poisson {}",
            spread(&bursty_s),
            spread(&poisson_s)
        );
    }

    #[test]
    fn queueing_grows_tail_latency_with_load() {
        let (_, _, light) = run_with(WorkloadSpec::poisson(30_000.0), 8);
        let (_, _, heavy) = run_with(WorkloadSpec::poisson(250_000.0), 8);
        let p99l = light.latency_quantile(0.99).unwrap();
        let p99h = heavy.latency_quantile(0.99).unwrap();
        assert!(p99h > p99l * 2.0, "heavy p99 {p99h} vs light {p99l}");
    }

    #[test]
    fn network_latency_shifts_latency() {
        let mut app = small_store();
        let mut machine = Machine::new(MachineConfig::broadwell());
        let mut sampler = Sampler::new(1_000_000);
        let stats = Driver::new(WorkloadSpec::poisson(50_000.0), 7)
            .with_network_latency_cycles(200_000)
            .run(&mut app, &mut machine, &mut sampler, 6);
        let p50 = stats.latency_quantile(0.5).unwrap();
        assert!(p50 > 200_000.0, "p50 {p50}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _, _) = run_with(WorkloadSpec::poisson(80_000.0), 5);
        let (b, _, _) = run_with(WorkloadSpec::poisson(80_000.0), 5);
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    #[should_panic(expected = "qps must be positive")]
    fn zero_qps_panics() {
        Driver::new(WorkloadSpec::poisson(0.0), 1);
    }
}
