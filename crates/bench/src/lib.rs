//! Criterion benches live in benches/; see DESIGN.md for the table/figure
//! index and docs/PERFORMANCE.md for the measurement methodology.
//!
//! [`simbench`] defines the simulator-kernel microbenchmarks shared by the
//! `sim_kernels` Criterion bench and the `bench_sim` binary that emits
//! `BENCH_sim.json` (median + IQR over fixed-seed runs).

#![forbid(unsafe_code)]

pub mod simbench;
