//! Criterion benches live in benches/; see DESIGN.md for the table/figure index.

#![forbid(unsafe_code)]
