//! Simulator-kernel microbenchmarks with deterministic inputs.
//!
//! Each [`Kernel`] is a self-contained measurement target: a fixed-seed
//! workload driven through one `datamime-sim` hot loop (cache lookup, TLB
//! translation, the full `Machine` access path, counter sampling). The
//! kernels are shared by the `sim_kernels` Criterion bench and the
//! `bench_sim` binary behind `scripts/bench.sh`, which reports
//! median + IQR nanoseconds per operation into `BENCH_sim.json`.
//!
//! Every kernel returns a **checksum** folded from the simulator's own
//! counters. The checksum is a semantic fingerprint: any change to the
//! kernels that alters hit/miss behaviour — rather than just making the
//! same behaviour faster — shows up as a checksum mismatch against the
//! committed baseline, which is how the benchmark enforces that the
//! fast-path rewrites stayed bit-identical.

use datamime_dist::{read_frame, write_frame, Frame};
use datamime_sim::{
    Access, Cache, CacheConfig, Machine, MachineConfig, RefCache, RefTlb, Replacement, Sampler, Tlb,
};
use datamime_stats::Rng;
use std::os::unix::net::UnixStream;

/// Seed for every kernel's address-stream generator.
pub const BENCH_SEED: u64 = 0xBE7C_517E;

/// One microbenchmark: a name, the number of simulated operations one
/// invocation performs, and the invocation itself.
pub struct Kernel {
    /// Bench identifier (`sim/...`), stable across runs.
    pub name: &'static str,
    /// Simulated operations per invocation (the ns/op divisor).
    pub ops: u64,
    /// Runs one invocation and returns the counter checksum.
    pub run: Box<dyn FnMut() -> u64>,
}

fn mix(h: u64, v: u64) -> u64 {
    // splitmix64 finalizer — order-sensitive fold for checksums.
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x.wrapping_mul(0x94D0_49BB_1331_11EB)
}

/// Deterministic address stream: draws from a hot, a warm, and a big
/// region so a cache hierarchy sees hits and misses at every level.
fn address_stream(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Rng::with_seed(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let r = rng.f64();
        let addr = if r < 0.55 {
            // Hot: 16 KB, L1-resident.
            0x1000_0000 + rng.below(16 * 1024 / 64) * 64
        } else if r < 0.85 {
            // Warm: 192 KB, L2-resident.
            0x2000_0000 + rng.below(192 * 1024 / 64) * 64
        } else {
            // Big: 32 MB, spills the LLC.
            0x4000_0000 + rng.below(32 * (1 << 20) / 64) * 64
        };
        out.push(addr);
    }
    out
}

/// The headline kernel: a three-level L1/L2/LLC lookup chain (Broadwell
/// geometries, DRRIP LLC) over a mixed-locality address stream.
///
/// The chain runs block-at-a-time through [`Cache::access_block_clean`]:
/// the L1 sweeps a block of addresses, the L2 sees only the L1's misses,
/// and the LLC only the L2's. Each cache observes exactly the subsequence
/// of addresses — in exactly the order — that the scalar
/// `l1.miss && l2.miss → llc` formulation would send it, so every counter
/// (and therefore the checksum) is bit-identical; what changes is that
/// each level's probe loop runs tight instead of interleaving three
/// levels' code behind data-dependent branches.
pub fn l1l2llc_access() -> Kernel {
    const N: usize = 200_000;
    const BLOCK: usize = 1024;
    let stream = address_stream(N, BENCH_SEED);
    let mut l1 = Cache::new(CacheConfig::new(32 * 1024, 8));
    let mut l2 = Cache::new(CacheConfig::new(256 * 1024, 8));
    let mut llc = Cache::new(CacheConfig {
        size_bytes: 12 << 20,
        ways: 12,
        line_bytes: 64,
        replacement: Replacement::Drrip,
    });
    let mut m1: Vec<u64> = Vec::with_capacity(BLOCK);
    let mut m2: Vec<u64> = Vec::with_capacity(BLOCK);
    let mut m3: Vec<u64> = Vec::with_capacity(BLOCK);
    let mut wb: Vec<u64> = Vec::new();
    Kernel {
        name: "sim/l1l2llc_access",
        ops: N as u64,
        run: Box::new(move || {
            for chunk in stream.chunks(BLOCK) {
                m1.clear();
                m2.clear();
                m3.clear();
                l1.access_block_clean(chunk, &mut m1, &mut wb);
                l2.access_block_clean(&m1, &mut m2, &mut wb);
                llc.access_block_clean(&m2, &mut m3, &mut wb);
                debug_assert!(wb.is_empty(), "clean reads evict no dirty victims");
            }
            mix(mix(mix(0, l1.hits()), l2.misses()), llc.misses())
        }),
    }
}

/// Pure L1 hit loop: a 16 KB working set cycled through a 32 KB 8-way
/// cache — the best case the lookup fast path must win on.
pub fn cache_l1_hit() -> Kernel {
    const N: usize = 262_144;
    let mut cache = Cache::new(CacheConfig::new(32 * 1024, 8));
    let lines: Vec<u64> = (0..256u64).map(|i| 0x1000_0000 + i * 64).collect();
    Kernel {
        name: "sim/cache_l1_hit",
        ops: N as u64,
        run: Box::new(move || {
            for i in 0..N {
                let _ = cache.access(lines[i & 255], i & 7 == 0);
            }
            mix(cache.hits(), cache.misses())
        }),
    }
}

/// DRRIP eviction churn: a 2× working set cycled through a 16 KB LLC
/// slice, exercising victim selection and set dueling.
pub fn cache_llc_drrip() -> Kernel {
    const N: usize = 131_072;
    let mut cache = Cache::new(CacheConfig {
        size_bytes: 16 * 1024,
        ways: 8,
        line_bytes: 64,
        replacement: Replacement::Drrip,
    });
    let lines: Vec<u64> = (0..512u64).map(|i| 0x1000_0000 + i * 64).collect();
    Kernel {
        name: "sim/cache_llc_drrip",
        ops: N as u64,
        run: Box::new(move || {
            for i in 0..N {
                let _ = cache.access(lines[i & 511], false);
            }
            mix(cache.hits(), cache.misses())
        }),
    }
}

/// TLB translation loop over a page stream with reach-sized locality.
pub fn tlb_access() -> Kernel {
    const N: usize = 262_144;
    let mut tlb = Tlb::new(datamime_sim::TlbConfig::new(64, 4));
    let mut rng = Rng::with_seed(BENCH_SEED ^ 0x71b);
    let pages: Vec<u64> = (0..N).map(|_| rng.below(96) * 4096).collect();
    Kernel {
        name: "sim/tlb_access",
        ops: N as u64,
        run: Box::new(move || {
            for &p in &pages {
                let _ = tlb.access(p);
            }
            mix(tlb.hits(), tlb.misses())
        }),
    }
}

/// The full data-side `Machine::load` path (TLB + prefetcher + L1/L2/LLC
/// + penalty accounting) over the mixed-locality stream.
pub fn machine_load() -> Kernel {
    const N: usize = 100_000;
    let stream = address_stream(N, BENCH_SEED ^ 0x10ad);
    let mut m = Machine::new(MachineConfig::broadwell());
    Kernel {
        name: "sim/machine_load",
        ops: N as u64,
        run: Box::new(move || {
            for &a in &stream {
                m.load(a, 8);
            }
            let c = m.counters();
            mix(
                mix(mix(c.busy_cycles, c.l1d_misses), c.llc_misses),
                c.dtlb_misses,
            )
        }),
    }
}

/// The frontend `Machine::exec` path: straight-line spans through the
/// ITLB and L1I with a modest code footprint.
pub fn machine_exec() -> Kernel {
    const N: usize = 50_000;
    let mut m = Machine::new(MachineConfig::broadwell());
    let mut rng = Rng::with_seed(BENCH_SEED ^ 0xe8ec);
    let spans: Vec<u64> = (0..N).map(|_| 0x4000_0000 + rng.below(24) * 4096).collect();
    Kernel {
        name: "sim/machine_exec",
        ops: N as u64,
        run: Box::new(move || {
            for &pc in &spans {
                m.exec(pc, 256, 64);
            }
            let c = m.counters();
            mix(mix(c.busy_cycles, c.l1i_misses), c.itlb_misses)
        }),
    }
}

/// Counter sampling: `Sampler::poll` called far more often than the
/// interval elapses — the no-sample early-out is the hot path.
pub fn sampler_poll() -> Kernel {
    const N: usize = 200_000;
    let mut m = Machine::new(MachineConfig::broadwell());
    let mut s = Sampler::new(1_000_000);
    Kernel {
        name: "sim/sampler_poll",
        ops: N as u64,
        run: Box::new(move || {
            for _ in 0..N {
                m.exec(0x4000_0000, 64, 32);
                s.poll(&m);
            }
            mix(m.counters().busy_cycles, s.samples().len() as u64)
        }),
    }
}

/// The distributed backend's wire path: one `Eval` frame encoded, pushed
/// through a Unix socket pair, read back, CRC-checked, and decoded per
/// op — the per-evaluation overhead `--backend proc` adds on top of the
/// simulator work itself.
pub fn ipc_roundtrip() -> Kernel {
    const N: usize = 20_000;
    let (mut tx, mut rx) = UnixStream::pair().expect("socketpair");
    let mut rng = Rng::with_seed(BENCH_SEED ^ 0x1bc);
    let frames: Vec<Frame> = (0..N)
        .map(|i| Frame::Eval {
            index: i as u64,
            attempt: 0,
            dispatch: 1,
            unit_bits: (0..6).map(|_| rng.f64().to_bits()).collect(),
        })
        .collect();
    Kernel {
        name: "dist/ipc_roundtrip",
        ops: N as u64,
        run: Box::new(move || {
            let mut h = 0;
            for frame in &frames {
                write_frame(&mut tx, frame).expect("socket write");
                match read_frame(&mut rx).expect("socket read") {
                    Frame::Eval {
                        index,
                        attempt,
                        dispatch,
                        unit_bits,
                    } => {
                        h = mix(h, index);
                        h = mix(h, u64::from(attempt) ^ (u64::from(dispatch) << 32));
                        for bits in unit_bits {
                            h = mix(h, bits);
                        }
                    }
                    other => panic!("decoded the wrong frame kind: {other:?}"),
                }
            }
            h
        }),
    }
}

/// Every kernel, in report order.
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        l1l2llc_access(),
        cache_l1_hit(),
        cache_llc_drrip(),
        tlb_access(),
        machine_load(),
        machine_exec(),
        sampler_poll(),
        ipc_roundtrip(),
    ]
}

/// Scalar twins of the cache/TLB kernels, built on the straight-line
/// reference models (`RefCache`/`RefTlb`) with strictly per-access
/// formulations — no batching, no specialization, no narrow tags.
///
/// Each twin is named `scalar/<kernel>` and folds the **same counters in
/// the same order** as its `sim/<kernel>` counterpart, so equal simulated
/// behaviour means equal checksums. `bench_sim --cross-check` runs both
/// sides and fails on any mismatch; this is the runtime complement to the
/// `crates/sim` equivalence property tests, pinned on the exact streams
/// the benchmarks measure. (The `machine_*` kernels have no reference twin
/// — `Machine` has a single implementation whose batched internals are
/// covered by the cache/TLB references plus the sim-crate property tests.)
pub fn scalar_kernels() -> Vec<Kernel> {
    vec![
        scalar_l1l2llc_access(),
        scalar_cache_l1_hit(),
        scalar_cache_llc_drrip(),
        scalar_tlb_access(),
    ]
}

/// Per-access reference formulation of [`l1l2llc_access`]: the classic
/// `l1 miss → l2 → llc` chain, one address at a time through `RefCache`.
fn scalar_l1l2llc_access() -> Kernel {
    const N: usize = 200_000;
    let stream = address_stream(N, BENCH_SEED);
    let mut l1 = RefCache::new(CacheConfig::new(32 * 1024, 8));
    let mut l2 = RefCache::new(CacheConfig::new(256 * 1024, 8));
    let mut llc = RefCache::new(CacheConfig {
        size_bytes: 12 << 20,
        ways: 12,
        line_bytes: 64,
        replacement: Replacement::Drrip,
    });
    Kernel {
        name: "scalar/l1l2llc_access",
        ops: N as u64,
        run: Box::new(move || {
            for &a in &stream {
                if let Access::Miss { .. } = l1.access(a, false) {
                    if let Access::Miss { .. } = l2.access(a, false) {
                        let _ = llc.access(a, false);
                    }
                }
            }
            mix(mix(mix(0, l1.hits()), l2.misses()), llc.misses())
        }),
    }
}

/// Reference twin of [`cache_l1_hit`].
fn scalar_cache_l1_hit() -> Kernel {
    const N: usize = 262_144;
    let mut cache = RefCache::new(CacheConfig::new(32 * 1024, 8));
    let lines: Vec<u64> = (0..256u64).map(|i| 0x1000_0000 + i * 64).collect();
    Kernel {
        name: "scalar/cache_l1_hit",
        ops: N as u64,
        run: Box::new(move || {
            for i in 0..N {
                let _ = cache.access(lines[i & 255], i & 7 == 0);
            }
            mix(cache.hits(), cache.misses())
        }),
    }
}

/// Reference twin of [`cache_llc_drrip`].
fn scalar_cache_llc_drrip() -> Kernel {
    const N: usize = 131_072;
    let mut cache = RefCache::new(CacheConfig {
        size_bytes: 16 * 1024,
        ways: 8,
        line_bytes: 64,
        replacement: Replacement::Drrip,
    });
    let lines: Vec<u64> = (0..512u64).map(|i| 0x1000_0000 + i * 64).collect();
    Kernel {
        name: "scalar/cache_llc_drrip",
        ops: N as u64,
        run: Box::new(move || {
            for i in 0..N {
                let _ = cache.access(lines[i & 511], false);
            }
            mix(cache.hits(), cache.misses())
        }),
    }
}

/// Reference twin of [`tlb_access`].
fn scalar_tlb_access() -> Kernel {
    const N: usize = 262_144;
    let mut tlb = RefTlb::new(datamime_sim::TlbConfig::new(64, 4));
    let mut rng = Rng::with_seed(BENCH_SEED ^ 0x71b);
    let pages: Vec<u64> = (0..N).map(|_| rng.below(96) * 4096).collect();
    Kernel {
        name: "scalar/tlb_access",
        ops: N as u64,
        run: Box::new(move || {
            for &p in &pages {
                let _ = tlb.access(p);
            }
            mix(tlb.hits(), tlb.misses())
        }),
    }
}

/// `(q1, median, q3)` of a sample set (linear interpolation).
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn quartiles(samples: &mut [f64]) -> (f64, f64, f64) {
    assert!(!samples.is_empty(), "quartiles of an empty sample set");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("bench times are finite"));
    let q = |p: f64| -> f64 {
        let idx = p * (samples.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        samples[lo] * (1.0 - frac) + samples[hi] * frac
    };
    (q(0.25), q(0.5), q(0.75))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_deterministic() {
        // Two fresh instances of the same kernel produce the same
        // checksum on their first invocation.
        for (mut a, mut b) in all_kernels().into_iter().zip(all_kernels()) {
            assert_eq!((a.run)(), (b.run)(), "{} not deterministic", a.name);
        }
    }

    #[test]
    fn scalar_twins_checksum_match_batched_kernels() {
        // The in-process version of `bench_sim --cross-check`: every
        // scalar/<k> twin must fingerprint identically to sim/<k>.
        let mut batched = all_kernels();
        for mut scalar in scalar_kernels() {
            let suffix = scalar.name.strip_prefix("scalar/").unwrap();
            let twin = batched
                .iter_mut()
                .find(|k| k.name.strip_prefix("sim/") == Some(suffix))
                .unwrap_or_else(|| panic!("no batched twin for {}", scalar.name));
            assert_eq!((twin.run)(), (scalar.run)(), "{} diverged", scalar.name);
        }
    }

    #[test]
    fn quartiles_interpolate() {
        let mut xs = [4.0, 1.0, 2.0, 3.0];
        let (q1, med, q3) = quartiles(&mut xs);
        assert_eq!(med, 2.5);
        assert_eq!(q1, 1.75);
        assert_eq!(q3, 3.25);
    }
}
