//! Emits `BENCH_sim.json`: median + IQR ns/op for every simulator kernel
//! in [`datamime_bench::simbench`], measured with fixed seeds.
//!
//! ```text
//! bench_sim [-o FILE] [--baseline FILE] [--check] [--cross-check] [--reps N]
//! ```
//!
//! - `-o FILE` — write the JSON report to FILE (default: stdout);
//! - `--baseline FILE` — read a previous report and record its numbers as
//!   `before_ns_per_op` (plus a `speedup` ratio) per bench; checksums are
//!   compared and a mismatch **fails the run**, because it means the
//!   kernel's simulated behaviour changed rather than just its speed;
//! - `--check` — smoke mode for CI: no report, and (unless `--reps` is
//!   given) a single rep per kernel. Proves the benches still compile and
//!   run deterministically within the tier-1 time budget. With
//!   `--baseline` it additionally **fails on regression**: any kernel
//!   whose median exceeds [`REGRESSION_THRESHOLD`] × its baseline median
//!   exits nonzero (the threshold is deliberately loose — see the noise
//!   discussion in docs/PERFORMANCE.md — so it catches structural
//!   regressions, not scheduler jitter);
//! - `--cross-check` — run every `scalar/...` reference twin against its
//!   batched `sim/...` kernel and fail on any checksum divergence. This is
//!   the batched-vs-scalar behavioural gate CI runs on every push;
//! - `--reps N` — timed repetitions per kernel (default 15);
//! - `--memo-json FILE` — embed FILE (the JSON object `memo_fig10` from
//!   the `datamime-experiments` binary of that name) in the report as the
//!   search-level memo-cache accounting. The file is produced elsewhere
//!   because this crate deliberately does not depend on the runtime (see
//!   `audit.toml` layering).
//!
//! See docs/PERFORMANCE.md for how to read the report.

#![forbid(unsafe_code)]
use datamime_bench::simbench::{all_kernels, quartiles, scalar_kernels, BENCH_SEED};
use std::time::Instant;

/// A kernel in `--check --baseline` mode fails if its median ns/op exceeds
/// this multiple of the committed baseline's median. 1.6× sits well above
/// the cross-run noise we measure on shared hosts (docs/PERFORMANCE.md,
/// "Noise") but well below the 2×+ cost of accidentally knocking a kernel
/// off its fast path.
const REGRESSION_THRESHOLD: f64 = 1.6;

struct BenchRow {
    name: &'static str,
    ops: u64,
    q1: f64,
    median: f64,
    q3: f64,
    checksum: u64,
}

/// One prior result scraped from a `--baseline` report.
struct BaselineRow {
    name: String,
    median: f64,
    checksum: String,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut check = false;
    let mut cross_check = false;
    let mut reps: usize = 15;
    let mut reps_explicit = false;
    let mut memo_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" => out_path = Some(expect_value(it.next(), "-o")),
            "--baseline" => baseline_path = Some(expect_value(it.next(), "--baseline")),
            "--memo-json" => memo_path = Some(expect_value(it.next(), "--memo-json")),
            "--check" => check = true,
            "--cross-check" => cross_check = true,
            "--reps" => {
                reps = expect_value(it.next(), "--reps")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--reps: {e}")));
                reps_explicit = true;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    if check && !reps_explicit {
        reps = 1;
    }

    if cross_check {
        run_cross_check();
        return;
    }

    let baseline = baseline_path.as_deref().map(|p| {
        read_baseline(p).unwrap_or_else(|e| die(&format!("cannot read baseline {p}: {e}")))
    });

    let mut rows = Vec::new();
    for mut kernel in all_kernels() {
        // One untimed warm-up invocation brings cache/TLB/predictor state
        // to steady state so reps measure the warm hot loop. Its checksum
        // is the recorded one: invocation-count independent, so `--check`
        // runs and full runs fingerprint identically.
        let checksum = (kernel.run)();
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let started = Instant::now();
            std::hint::black_box((kernel.run)());
            samples.push(started.elapsed().as_secs_f64() * 1e9 / kernel.ops as f64);
        }
        let (q1, median, q3) = quartiles(&mut samples);
        eprintln!(
            "{:<24} median {median:>8.2} ns/op  IQR {:>6.2}  checksum {checksum:#018x}",
            kernel.name,
            q3 - q1,
        );
        rows.push(BenchRow {
            name: kernel.name,
            ops: kernel.ops,
            q1,
            median,
            q3,
            checksum,
        });
    }

    if check {
        if let Some(base) = baseline.as_deref() {
            enforce_baseline(&rows, base);
        }
        eprintln!("bench_sim --check: {} kernels ran clean", rows.len());
        return;
    }

    let memo = memo_path.as_deref().map(|p| {
        std::fs::read_to_string(p)
            .unwrap_or_else(|e| die(&format!("cannot read memo accounting {p}: {e}")))
    });
    let report = render_report(&rows, baseline.as_deref(), memo.as_deref());
    match out_path {
        Some(p) => {
            std::fs::write(&p, &report).unwrap_or_else(|e| die(&format!("cannot write {p}: {e}")));
            eprintln!("wrote {p}");
        }
        None => println!("{report}"),
    }
}

/// `--cross-check`: run every scalar reference twin against its batched
/// kernel and fail on checksum divergence.
fn run_cross_check() {
    let mut batched = all_kernels();
    let mut failures = 0usize;
    for mut scalar in scalar_kernels() {
        let suffix = scalar.name.strip_prefix("scalar/").unwrap_or(scalar.name);
        let Some(twin) = batched
            .iter_mut()
            .find(|k| k.name.strip_prefix("sim/") == Some(suffix))
        else {
            die(&format!(
                "{}: no batched twin to compare against",
                scalar.name
            ));
        };
        let (fast, reference) = ((twin.run)(), (scalar.run)());
        if fast == reference {
            eprintln!(
                "{:<24} == {:<26} checksum {fast:#018x}",
                twin.name, scalar.name
            );
        } else {
            eprintln!(
                "{:<24} {fast:#018x} != {:<26} {reference:#018x}  MISMATCH",
                twin.name, scalar.name
            );
            failures += 1;
        }
    }
    if failures > 0 {
        die(&format!(
            "{failures} batched/scalar checksum mismatch(es): the fast paths \
             changed simulated behaviour"
        ));
    }
    eprintln!("bench_sim --cross-check: all batched kernels match their scalar twins");
}

/// The `--check --baseline` gate: kernels present in the baseline must
/// keep their checksum (behaviour) and stay within [`REGRESSION_THRESHOLD`]
/// of their baseline median (speed).
fn enforce_baseline(rows: &[BenchRow], baseline: &[BaselineRow]) {
    let mut regressed = Vec::new();
    for r in rows {
        let Some(b) = baseline.iter().find(|b| b.name == r.name) else {
            continue;
        };
        let got = format!("{:#018x}", r.checksum);
        if b.checksum != got {
            die(&format!(
                "{}: checksum changed ({} -> {got}); the kernel's simulated \
                 behaviour diverged from the baseline",
                r.name, b.checksum
            ));
        }
        if r.median > REGRESSION_THRESHOLD * b.median {
            regressed.push(format!(
                "{}: {:.2} ns/op vs baseline {:.2} (gate {:.2})",
                r.name,
                r.median,
                b.median,
                REGRESSION_THRESHOLD * b.median
            ));
        }
    }
    if !regressed.is_empty() {
        for line in &regressed {
            eprintln!("bench_sim: REGRESSION {line}");
        }
        eprintln!(
            "bench_sim: {} kernel(s) regressed beyond the {REGRESSION_THRESHOLD}x \
             threshold (docs/PERFORMANCE.md)",
            regressed.len()
        );
        std::process::exit(1);
    }
}

fn expect_value(v: Option<&String>, flag: &str) -> String {
    v.cloned()
        .unwrap_or_else(|| die(&format!("{flag} requires a value")))
}

fn die(msg: &str) -> ! {
    eprintln!("bench_sim: {msg}");
    std::process::exit(2);
}

fn render_report(
    rows: &[BenchRow],
    baseline: Option<&[BaselineRow]>,
    memo: Option<&str>,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"datamime-bench-sim/1\",\n");
    s.push_str(&format!("  \"seed\": \"{BENCH_SEED:#x}\",\n"));
    s.push_str("  \"unit\": \"ns_per_op\",\n");
    s.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let mut line = format!(
            "    {{\"name\":\"{}\",\"ops\":{},\"median_ns_per_op\":{:.3},\
             \"iqr_ns_per_op\":{:.3},\"q1\":{:.3},\"q3\":{:.3},\"checksum\":\"{:#018x}\"",
            r.name,
            r.ops,
            r.median,
            r.q3 - r.q1,
            r.q1,
            r.q3,
            r.checksum
        );
        if let Some(base) = baseline {
            if let Some(b) = base.iter().find(|b| b.name == r.name) {
                let got = format!("{:#018x}", r.checksum);
                if b.checksum != got {
                    die(&format!(
                        "{}: checksum changed ({} -> {got}); the kernel's simulated \
                         behaviour diverged from the baseline",
                        r.name, b.checksum
                    ));
                }
                line.push_str(&format!(
                    ",\"before_ns_per_op\":{:.3},\"speedup\":{:.2}",
                    b.median,
                    b.median / r.median
                ));
            }
        }
        line.push('}');
        if i + 1 < rows.len() {
            line.push(',');
        }
        s.push_str(&line);
        s.push('\n');
    }
    s.push_str("  ]");
    if let Some(memo) = memo {
        s.push_str(",\n  \"memo_fig10\": ");
        s.push_str(memo.trim());
    }
    s.push_str("\n}\n");
    s
}

/// Scrapes `name` / `median_ns_per_op` / `checksum` out of a report this
/// binary produced earlier (one bench object per line; not a general JSON
/// parser).
fn read_baseline(path: &str) -> Result<Vec<BaselineRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(name) = scrape_str(line, "\"name\":\"") else {
            continue;
        };
        let median = scrape_num(line, "\"median_ns_per_op\":")
            .ok_or_else(|| format!("bench {name} has no median_ns_per_op"))?;
        let checksum = scrape_str(line, "\"checksum\":\"")
            .ok_or_else(|| format!("bench {name} has no checksum"))?;
        rows.push(BaselineRow {
            name,
            median,
            checksum,
        });
    }
    if rows.is_empty() {
        return Err("no bench rows found".to_string());
    }
    Ok(rows)
}

fn scrape_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn scrape_num(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let end = line[start..]
        .find([',', '}'])
        .map_or(line.len(), |i| i + start);
    line[start..end].trim().parse().ok()
}
