//! Ablation benches for the design choices DESIGN.md calls out: kernel
//! family, acquisition function, replacement policy, and the cost of the
//! stream-prefetcher model. (Quality ablations — BO vs random, EMD vs KS —
//! are measured by the `ablations` experiment binary; these benches cover
//! the *cost* side.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use datamime_bayesopt::{
    Acquisition, BayesOpt, BlackBoxOptimizer, BoConfig, GaussianProcess, Kernel,
};
use datamime_sim::{Cache, CacheConfig, Machine, MachineConfig, Replacement};
use datamime_stats::Rng;

fn kernel_families(c: &mut Criterion) {
    let mut rng = Rng::with_seed(1);
    let xs: Vec<Vec<f64>> = (0..120)
        .map(|_| (0..6).map(|_| rng.f64()).collect())
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 5.0).sin() + x[1]).collect();
    for (name, kernel) in [
        ("matern52", Kernel::matern52(6, 0.3)),
        ("squared-exp", Kernel::squared_exp(6, 0.3)),
    ] {
        c.bench_function(&format!("ablation/gp-fit-{name}"), |b| {
            b.iter_batched(
                || (kernel.clone(), xs.clone(), ys.clone()),
                |(k, xs, ys)| GaussianProcess::fit(k, 1e-4, xs, ys).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
}

fn acquisition_functions(c: &mut Criterion) {
    for (name, acq) in [
        ("ei", Acquisition::ExpectedImprovement),
        ("lcb", Acquisition::LowerConfidenceBound),
    ] {
        c.bench_function(&format!("ablation/suggest-{name}"), |b| {
            let mut cfg = BoConfig::for_dims(4);
            cfg.acquisition = acq;
            let mut bo = BayesOpt::new(cfg, 3);
            for _ in 0..40 {
                let x = bo.suggest();
                let y = x.iter().map(|v| (v - 0.5).powi(2)).sum::<f64>();
                bo.observe(x, y);
            }
            b.iter(|| std::hint::black_box(bo.suggest()))
        });
    }
}

fn replacement_policies(c: &mut Criterion) {
    // LLC policy ablation: access-stream cost under LRU vs DRRIP.
    for (name, rep) in [("lru", Replacement::Lru), ("drrip", Replacement::Drrip)] {
        c.bench_function(&format!("ablation/llc-{name}-stream"), |b| {
            let mut cache = Cache::new(CacheConfig {
                size_bytes: 1 << 20,
                ways: 16,
                line_bytes: 64,
                replacement: rep,
            });
            let mut addr = 0u64;
            b.iter(|| {
                for _ in 0..1024 {
                    cache.access(addr, false);
                    addr = addr.wrapping_add(64) % (4 << 20);
                }
                cache.misses()
            })
        });
    }
}

fn prefetcher_model(c: &mut Criterion) {
    // Cost of the machine's per-access work on streaming vs random
    // patterns (the stream table is consulted either way).
    let mut machine = Machine::new(MachineConfig::broadwell());
    c.bench_function("ablation/machine-sequential-loads", |b| {
        let mut addr = 0x10_0000_0000u64;
        b.iter(|| {
            for _ in 0..512 {
                machine.load(addr, 8);
                addr += 64;
            }
        })
    });
    let mut machine2 = Machine::new(MachineConfig::broadwell());
    let mut rng = Rng::with_seed(5);
    c.bench_function("ablation/machine-random-loads", |b| {
        b.iter(|| {
            for _ in 0..512 {
                machine2.load(0x10_0000_0000 + rng.below(1 << 28), 8);
            }
        })
    });
}

criterion_group! {
    name = benches;
    // Keep runs short: each bench exercises a full simulation pipeline.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = kernel_families, acquisition_functions, replacement_policies, prefetcher_model
}
criterion_main!(benches);
