//! Criterion view of the simulator-kernel microbenchmarks — the hot loops
//! every search evaluation pays for (cache lookup, TLB translation, the
//! full machine access path, counter sampling).
//!
//! The canonical numbers live in `BENCH_sim.json`, produced by
//! `scripts/bench.sh` from the same kernels with median + IQR reporting;
//! this bench exists so `cargo bench --workspace` covers them too.

use criterion::{criterion_group, criterion_main, Criterion};
use datamime_bench::simbench::all_kernels;

fn sim_kernels(c: &mut Criterion) {
    for mut kernel in all_kernels() {
        // One warm-up invocation, then steady-state timing.
        let _ = (kernel.run)();
        c.bench_function(kernel.name, |b| b.iter(&mut kernel.run));
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sim_kernels
}
criterion_main!(benches);
