//! One Criterion bench per paper table/figure: each benchmark exercises
//! the exact code path that regenerates the artifact, at a reduced scale
//! so `cargo bench` completes quickly. The full-scale regenerators are the
//! `datamime-experiments` binaries (see DESIGN.md's experiment index).

use criterion::{criterion_group, criterion_main, Criterion};
use datamime::error_model::MetricWeights;
#[allow(unused_imports)]
use datamime::generator::DatasetGenerator;
use datamime::generator::{DnnGenerator, KvGenerator, SiloGenerator, XapianGenerator};
use datamime::metrics::DistMetric;
use datamime::profile_error;
use datamime::profiler::{profile_app, profile_workload, CurveMethod, ProfilingConfig};
use datamime::scalar::{scalar_search, ScalarSearchConfig};
use datamime::search::{search, SearchConfig};
use datamime::workload::{AppConfig, Workload};
use datamime_apps::{
    ImgDnnConfig, KvConfig, MasstreeConfig, SearchConfig as XapianConfig, SiloConfig,
};
use datamime_loadgen::WorkloadSpec;
use datamime_perfproxy::PerfProxClone;
use datamime_sim::MachineConfig;

fn tiny_profiling() -> ProfilingConfig {
    ProfilingConfig {
        interval_cycles: 1_000_000,
        n_samples: 5,
        curve_ways: vec![1, 12],
        curve_samples: 1,
        curve_method: CurveMethod::Restart,
        seed: 0xBE7C,
    }
}

fn tiny_search_cfg(iters: usize) -> SearchConfig {
    let mut cfg = SearchConfig::fast(iters);
    cfg.profiling = tiny_profiling().without_curves();
    cfg
}

fn tiny_mem_fb() -> Workload {
    let mut w = Workload::mem_fb();
    w.app = AppConfig::Kv(KvConfig {
        n_keys: 8_000,
        ..KvConfig::facebook_like()
    });
    w
}

fn table1_profiler(c: &mut Criterion) {
    // Table I: collecting all ten metric distributions.
    let machine = MachineConfig::broadwell();
    let w = tiny_mem_fb();
    c.bench_function("table1/collect-metric-distributions", |b| {
        let cfg = tiny_profiling().without_curves();
        b.iter(|| profile_workload(&w, &machine, &cfg))
    });
}

fn table2_machines(c: &mut Criterion) {
    // Table II: constructing and exercising each platform model.
    for machine in [
        MachineConfig::broadwell(),
        MachineConfig::zen2(),
        MachineConfig::silvermont(),
    ] {
        let w = tiny_mem_fb();
        c.bench_function(&format!("table2/profile-on-{}", machine.name), |b| {
            let cfg = tiny_profiling().without_curves();
            b.iter(|| profile_workload(&w, &machine, &cfg))
        });
    }
}

fn table3_generators(c: &mut Criterion) {
    // Table III: dataset synthesis cost for each generator at the cube
    // midpoint.
    c.bench_function("table3/instantiate-memcached", |b| {
        let g = KvGenerator::new();
        b.iter(|| g.instantiate(&[0.5; 6]).app.build())
    });
    c.bench_function("table3/instantiate-silo", |b| {
        let g = SiloGenerator::new();
        b.iter(|| g.instantiate(&[0.5; 7]).app.build())
    });
    c.bench_function("table3/instantiate-xapian", |b| {
        let g = XapianGenerator::new();
        b.iter(|| g.instantiate(&[0.5; 4]).app.build())
    });
    c.bench_function("table3/instantiate-dnn", |b| {
        let g = DnnGenerator::new();
        b.iter(|| g.instantiate(&[0.5; 6]).app.build())
    });
}

fn fig1_fig3_clone_accuracy(c: &mut Criterion) {
    // Figs. 1/3: one full search iteration (profile + error) for the
    // memcached clone, plus the PerfProx generation path.
    let machine = MachineConfig::broadwell();
    let cfg = tiny_profiling().without_curves();
    let target = profile_workload(&tiny_mem_fb(), &machine, &cfg);
    c.bench_function("fig1/datamime-search-iteration", |b| {
        let g = KvGenerator::new();
        let weights = MetricWeights::equal();
        b.iter(|| {
            let w = g.instantiate(&[0.4; 6]);
            let p = profile_workload(&w, &machine, &cfg);
            profile_error(&target, &p, &weights).total
        })
    });
    c.bench_function("fig1/perfprox-generate-and-profile", |b| {
        b.iter(|| {
            let stats = datamime_perfproxy::CloneStats::from_profile(&target);
            profile_app(
                &move || Box::new(PerfProxClone::new(stats, 1)),
                WorkloadSpec::poisson(1e9),
                &machine,
                &cfg,
            )
        })
    });
}

fn fig4_fig8_distributions(c: &mut Criterion) {
    // Figs. 4/8: building eCDFs and computing per-metric EMDs.
    let machine = MachineConfig::broadwell();
    let cfg = tiny_profiling().without_curves();
    let a = profile_workload(&tiny_mem_fb(), &machine, &cfg);
    let mut w2 = tiny_mem_fb();
    w2.app = AppConfig::Kv(KvConfig {
        n_keys: 8_000,
        ..KvConfig::ycsb_like()
    });
    let b2 = profile_workload(&w2, &machine, &cfg);
    c.bench_function("fig8/all-metric-emds", |bch| {
        let weights = MetricWeights::equal();
        bch.iter(|| profile_error(&a, &b2, &weights))
    });
}

fn fig6_multi_workload(c: &mut Criterion) {
    // Fig. 6: profiling each of the five (scaled) targets once.
    let machine = MachineConfig::broadwell();
    let cfg = tiny_profiling().without_curves();
    let targets: Vec<Workload> = vec![
        tiny_mem_fb(),
        {
            let mut w = Workload::silo_bidding();
            w.app = AppConfig::Silo(SiloConfig {
                n_bid_items: 200_000,
                ..SiloConfig::bidding_target()
            });
            w
        },
        {
            let mut w = Workload::xapian_wiki();
            w.app = AppConfig::Search(XapianConfig {
                n_docs: 4_000,
                n_terms: 3_000,
                ..XapianConfig::wikipedia_target()
            });
            w
        },
    ];
    c.bench_function("fig6/profile-target-suite", |b| {
        b.iter(|| {
            targets
                .iter()
                .map(|w| profile_workload(w, &machine, &cfg).mean(DistMetric::Ipc))
                .sum::<f64>()
        })
    });
}

fn fig7_curve_sweep(c: &mut Criterion) {
    // Fig. 7: the CAT way-partitioning sweep.
    let machine = MachineConfig::broadwell();
    let w = tiny_mem_fb();
    c.bench_function("fig7/cat-curve-sweep", |b| {
        let cfg = tiny_profiling();
        b.iter(|| profile_workload(&w, &machine, &cfg).curve().len())
    });
}

fn fig9_cross_program(c: &mut Criterion) {
    // Fig. 9 / Table IV: profiling the case-study targets.
    let machine = MachineConfig::broadwell();
    let cfg = tiny_profiling().without_curves();
    c.bench_function("fig9/profile-masstree", |b| {
        let mut w = Workload::masstree_ycsb();
        w.app = AppConfig::Masstree(MasstreeConfig {
            n_keys: 200_000,
            ..MasstreeConfig::ycsb_target()
        });
        b.iter(|| profile_workload(&w, &machine, &cfg))
    });
    c.bench_function("fig9/profile-img-dnn", |b| {
        let mut w = Workload::img_dnn_mnist();
        w.app = AppConfig::ImgDnn(ImgDnnConfig::mnist_target());
        b.iter(|| profile_workload(&w, &machine, &cfg))
    });
}

fn fig10_convergence(c: &mut Criterion) {
    // Fig. 10: a short end-to-end search (6 iterations).
    let machine = MachineConfig::broadwell();
    let cfg = tiny_search_cfg(6);
    let target = profile_workload(&tiny_mem_fb(), &machine, &cfg.profiling);
    c.bench_function("fig10/search-6-iterations", |b| {
        b.iter(|| search(&KvGenerator::new(), &target, &cfg).best_error)
    });
}

fn fig11_scalar_target(c: &mut Criterion) {
    // Fig. 11: one scalar-target search point.
    let mut cfg = ScalarSearchConfig::fast(5);
    cfg.profiling = tiny_profiling().without_curves();
    c.bench_function("fig11/scalar-target-point", |b| {
        b.iter(|| scalar_search(&KvGenerator::new(), DistMetric::Ipc, 1.0, &cfg).achieved)
    });
}

fn fig12_networked(c: &mut Criterion) {
    // Figs. 12/13: profiling the networked configuration.
    let machine = MachineConfig::broadwell();
    let cfg = tiny_profiling().without_curves();
    let mut w = tiny_mem_fb();
    if let AppConfig::Kv(kv) = &mut w.app {
        kv.networked = true;
    }
    c.bench_function("fig12/profile-networked-memcached", |b| {
        b.iter(|| profile_workload(&w, &machine, &cfg))
    });
}

criterion_group! {
    name = benches;
    // Keep runs short: each bench exercises a full simulation pipeline.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = table1_profiler, table2_machines, table3_generators, fig1_fig3_clone_accuracy, fig4_fig8_distributions, fig6_multi_workload, fig7_curve_sweep, fig9_cross_program, fig10_convergence, fig11_scalar_target, fig12_networked
}
criterion_main!(benches);
