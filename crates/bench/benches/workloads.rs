//! Per-request simulation cost of every workload application — the
//! substrate speed that determines how long each figure takes to
//! regenerate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use datamime_apps::{
    App, DnnApp, ImgDnn, ImgDnnConfig, KvConfig, KvStore, Masstree, MasstreeConfig, NetSpec,
    SearchConfig, SearchEngine, SiloConfig, SiloDb,
};
use datamime_sim::{Machine, MachineConfig};
use datamime_stats::Rng;

fn bench_app<A: App>(c: &mut Criterion, name: &str, mut app: A, batch: u64) {
    let mut machine = Machine::new(MachineConfig::broadwell());
    let mut rng = Rng::with_seed(1);
    // Warm up caches and predictors.
    for _ in 0..200 {
        app.serve(&mut machine, &mut rng);
    }
    c.bench_function(name, |b| {
        b.iter(|| {
            for _ in 0..batch {
                app.serve(&mut machine, &mut rng);
            }
        })
    });
}

fn workloads(c: &mut Criterion) {
    bench_app(
        c,
        "serve/memcached-fb",
        KvStore::new(KvConfig {
            n_keys: 30_000,
            ..KvConfig::facebook_like()
        }),
        16,
    );
    bench_app(
        c,
        "serve/silo-bidding",
        SiloDb::new(SiloConfig {
            n_bid_items: 500_000,
            ..SiloConfig::bidding_target()
        }),
        16,
    );
    bench_app(
        c,
        "serve/xapian-wiki",
        SearchEngine::new(SearchConfig {
            n_docs: 8_000,
            n_terms: 6_000,
            ..SearchConfig::wikipedia_target()
        }),
        8,
    );
    bench_app(
        c,
        "serve/dnn-generator-net",
        DnnApp::new(NetSpec::from_generator_params(3, 2, 1, 1, 16)),
        1,
    );
    bench_app(
        c,
        "serve/masstree-ycsb",
        Masstree::new(MasstreeConfig {
            n_keys: 200_000,
            ..MasstreeConfig::ycsb_target()
        }),
        16,
    );
    bench_app(
        c,
        "serve/img-dnn-mnist",
        ImgDnn::new(ImgDnnConfig::mnist_target()),
        1,
    );
}

fn dataset_build(c: &mut Criterion) {
    c.bench_function("build/kvstore-120k-items", |b| {
        b.iter_batched(KvConfig::facebook_like, KvStore::new, BatchSize::LargeInput)
    });
    c.bench_function("build/resnet50-scaled", |b| {
        b.iter_batched(NetSpec::resnet50_scaled, DnnApp::new, BatchSize::LargeInput)
    });
}

criterion_group! {
    name = benches;
    // Keep runs short: each bench exercises a full simulation pipeline.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = workloads, dataset_build
}
criterion_main!(benches);
