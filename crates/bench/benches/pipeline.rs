//! Cost of the Datamime pipeline stages: profiling, the EMD error model,
//! GP fitting, and optimizer suggestions — the per-iteration budget of the
//! search loop (paper Sec. V-D: 2–4 minutes per iteration on hardware; a
//! few hundred milliseconds here).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use datamime::error_model::{profile_error, DistanceKind, MetricWeights};
use datamime::profiler::{profile_workload, ProfilingConfig};
use datamime::workload::{AppConfig, Workload};
use datamime_apps::KvConfig;
use datamime_bayesopt::{BayesOpt, BlackBoxOptimizer, BoConfig, GaussianProcess, Kernel};
use datamime_sim::MachineConfig;
use datamime_stats::Rng;

fn small_target() -> Workload {
    let mut w = Workload::mem_fb();
    w.app = AppConfig::Kv(KvConfig {
        n_keys: 10_000,
        ..KvConfig::facebook_like()
    });
    w
}

fn profiling(c: &mut Criterion) {
    let machine = MachineConfig::broadwell();
    let w = small_target();
    c.bench_function("profile/distributions-only", |b| {
        let cfg = ProfilingConfig::fast().without_curves();
        b.iter(|| profile_workload(&w, &machine, &cfg))
    });
    c.bench_function("profile/with-curve-sweep", |b| {
        let cfg = ProfilingConfig::fast();
        b.iter(|| profile_workload(&w, &machine, &cfg))
    });
}

fn error_model(c: &mut Criterion) {
    let machine = MachineConfig::broadwell();
    let cfg = ProfilingConfig::fast();
    let a = profile_workload(&small_target(), &machine, &cfg);
    let mut w2 = small_target();
    w2.app = AppConfig::Kv(KvConfig {
        n_keys: 10_000,
        ..KvConfig::ycsb_like()
    });
    let b2 = profile_workload(&w2, &machine, &cfg);

    c.bench_function("error/emd-10-metrics", |b| {
        let weights = MetricWeights::equal();
        b.iter(|| profile_error(&a, &b2, &weights))
    });
    c.bench_function("error/ks-10-metrics", |b| {
        let mut weights = MetricWeights::equal();
        weights.distance = DistanceKind::KolmogorovSmirnov;
        b.iter(|| profile_error(&a, &b2, &weights))
    });
}

fn optimizer(c: &mut Criterion) {
    // GP fitting cost at the paper's scale (200 observations).
    for n in [50usize, 200] {
        c.bench_function(&format!("gp/fit-fixed-hypers-n{n}"), |b| {
            let mut rng = Rng::with_seed(1);
            let xs: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..6).map(|_| rng.f64()).collect())
                .collect();
            let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>().sin()).collect();
            b.iter_batched(
                || (xs.clone(), ys.clone()),
                |(xs, ys)| GaussianProcess::fit(Kernel::matern52(6, 0.3), 1e-4, xs, ys).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    c.bench_function("bo/suggest-at-60-observations", |b| {
        let mut bo = BayesOpt::new(BoConfig::for_dims(6), 7);
        let mut rng = Rng::with_seed(2);
        for _ in 0..60 {
            let x = bo.suggest();
            let y = x.iter().map(|v| (v - 0.4).powi(2)).sum::<f64>() + 0.01 * rng.f64();
            bo.observe(x, y);
        }
        b.iter(|| {
            let x = bo.suggest();
            std::hint::black_box(&x);
        })
    });
}

criterion_group! {
    name = benches;
    // Keep runs short: each bench exercises a full simulation pipeline.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = profiling, error_model, optimizer
}
criterion_main!(benches);
