//! Heavier fault-injection stress runs, gated behind the `faultinject`
//! cargo feature so the default test pass stays fast:
//!
//! ```text
//! cargo test -q -p datamime-runtime --features faultinject
//! ```
//!
//! Each storm derives a deterministic fault plan from a small seed, runs
//! the same search serially and through the worker pool, and requires the
//! two outcomes to be bit-identical.
#![cfg(feature = "faultinject")]

use datamime_bayesopt::{BayesOpt, BoConfig};
use datamime_runtime::{
    CancelToken, EvalRecord, Executor, FaultPlan, InjectedFault, RunMeta, StageTimes,
    SupervisorConfig,
};
use std::time::Duration;

fn eval(unit: &[f64], stages: &mut StageTimes, _cancel: &CancelToken) -> f64 {
    stages.time("profile", || unit.iter().map(|x| (x - 0.3).powi(2)).sum())
}

fn meta(label: &str, iterations: usize, batch_k: usize, workers: usize) -> RunMeta {
    RunMeta {
        label: label.to_string(),
        seed: 42,
        dims: 3,
        iterations,
        batch_k,
        workers,
        optimizer: "bayesian".to_string(),
    }
}

fn points(history: &[EvalRecord]) -> Vec<(Vec<f64>, u64)> {
    history
        .iter()
        .map(|r| (r.unit.clone(), r.error.to_bits()))
        .collect()
}

/// Deterministically derive a fault plan from a storm seed: roughly one in
/// three evaluations fails, with the failure mode cycling through the
/// injectable kinds.
fn storm_plan(storm: u64, iterations: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let mut state = storm.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for index in 0..iterations {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if state.is_multiple_of(3) {
            let kind = match (state >> 32) % 3 {
                0 => InjectedFault::Panic,
                1 => InjectedFault::Nan,
                _ => InjectedFault::StallMs(10_000),
            };
            plan = plan.fail(index, kind);
        }
    }
    plan
}

#[test]
fn fault_storms_stay_deterministic_across_worker_counts() {
    for storm in 0..4u64 {
        let iterations = 16;
        let plan = storm_plan(storm, iterations);
        assert!(!plan.is_empty(), "storm {storm} injected nothing");
        let run = |workers: usize| {
            let cfg = SupervisorConfig {
                deadline: Some(Duration::from_millis(40)),
                max_retries: 1,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(4),
                degrade_after: 3,
                fault_plan: Some(plan.clone()),
                ..SupervisorConfig::default()
            };
            Executor::new(meta("storm", iterations, 4, workers))
                .supervise(cfg)
                .run(&mut BayesOpt::new(BoConfig::for_dims(3), 42 + storm), &eval)
                .expect("a fault storm must never abort the run")
        };
        let serial = run(1);
        for workers in [2, 4] {
            let pooled = run(workers);
            assert_eq!(
                points(&serial.history),
                points(&pooled.history),
                "storm {storm} diverged at {workers} workers"
            );
            assert_eq!(
                serial.telemetry.faults_total(),
                pooled.telemetry.faults_total(),
                "storm {storm} fault count diverged at {workers} workers"
            );
        }
        assert_eq!(serial.history.len(), iterations);
        assert!(serial.telemetry.faults_total() > 0);
    }
}

#[test]
fn all_evaluations_failing_still_completes() {
    let iterations = 10;
    let mut plan = FaultPlan::new();
    for index in 0..iterations {
        plan = plan.fail(index, InjectedFault::Panic);
    }
    let cfg = SupervisorConfig {
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(2),
        degrade_after: 2,
        fault_plan: Some(plan),
        ..SupervisorConfig::default()
    };
    let out = Executor::new(meta("total-loss", iterations, 4, 3))
        .supervise(cfg)
        .run(&mut BayesOpt::new(BoConfig::for_dims(3), 42), &eval)
        .expect("even a total loss must complete under the penalize policy");
    assert_eq!(out.history.len(), iterations);
    assert!(out.history.iter().all(|r| r.fault.is_some()));
    assert!(
        out.telemetry.degradations() >= 1,
        "batch should have shrunk"
    );
}
