//! End-to-end tests of the executor / journal / telemetry stack using the
//! real optimizers from `datamime-bayesopt`.

use datamime_bayesopt::{BayesOpt, BlackBoxOptimizer, BoConfig, RandomSearch};
use datamime_runtime::{
    replay, CancelToken, EvalRecord, ExecError, Executor, JournalWriter, ProgressSink, RunMeta,
    StageTimes, Telemetry,
};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A deterministic synthetic objective with minimum at 0.3 in every
/// coordinate.
fn objective(unit: &[f64]) -> f64 {
    unit.iter().map(|x| (x - 0.3).powi(2)).sum()
}

fn eval(unit: &[f64], stages: &mut StageTimes, _cancel: &CancelToken) -> f64 {
    stages.time("profile", || objective(unit))
}

fn meta(label: &str, iterations: usize, batch_k: usize, workers: usize) -> RunMeta {
    RunMeta {
        label: label.to_string(),
        seed: 42,
        dims: 3,
        iterations,
        batch_k,
        workers,
        optimizer: "bayesian".to_string(),
    }
}

fn bayes(seed: u64) -> BayesOpt {
    BayesOpt::new(BoConfig::for_dims(3), seed)
}

/// The deterministic part of a history: stage timings are wall-clock and
/// legitimately vary between identical runs.
fn points(history: &[EvalRecord]) -> Vec<(Vec<f64>, u64)> {
    history
        .iter()
        .map(|r| (r.unit.clone(), r.error.to_bits()))
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("datamime-runtime-{}-{name}", std::process::id()));
    let _ = fs::remove_file(&path);
    path
}

#[test]
fn same_seed_and_batch_is_deterministic() {
    let run = || {
        Executor::new(meta("det", 12, 3, 1))
            .run_seq(&mut bayes(42), &mut eval)
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(points(&a.history), points(&b.history));
    assert_eq!(a.best_unit, b.best_unit);
    assert_eq!(a.best_error.to_bits(), b.best_error.to_bits());
}

#[test]
fn worker_count_does_not_change_results() {
    let run = |workers: usize| {
        Executor::new(meta("workers", 12, 4, workers))
            .run(&mut bayes(42), &eval)
            .unwrap()
    };
    let serial = run(1);
    let pooled = run(4);
    assert_eq!(points(&serial.history), points(&pooled.history));
    assert_eq!(serial.best_error.to_bits(), pooled.best_error.to_bits());
}

#[test]
fn batch_of_one_matches_the_plain_sequential_loop() {
    // The executor with batch_k = 1 must be bit-for-bit the legacy
    // suggest → evaluate → observe loop.
    let mut legacy = bayes(7);
    let mut legacy_history = Vec::new();
    for _ in 0..10 {
        let x = legacy.suggest();
        let y = objective(&x);
        legacy.observe(x.clone(), y);
        legacy_history.push((x, y));
    }

    let mut m = meta("batch1", 10, 1, 1);
    m.seed = 7;
    let out = Executor::new(m).run_seq(&mut bayes(7), &mut eval).unwrap();
    let runtime_history: Vec<(Vec<f64>, f64)> = out
        .history
        .iter()
        .map(|r| (r.unit.clone(), r.error))
        .collect();
    assert_eq!(legacy_history, runtime_history);
}

#[test]
fn journal_round_trips_a_completed_run() {
    let path = tmp("roundtrip.jsonl");
    let m = meta("roundtrip", 9, 2, 1);
    let writer = JournalWriter::create(&path, &m).unwrap();
    let out = Executor::new(m.clone())
        .journal(writer, false)
        .checkpoint_every(3)
        .run_seq(&mut bayes(42), &mut eval)
        .unwrap();

    let r = replay(&path).unwrap();
    assert_eq!(r.meta, m);
    assert!(r.complete);
    assert_eq!(r.dropped_lines, 0);
    assert_eq!(r.evals.len(), 9);
    for (journaled, ran) in r.evals.iter().zip(&out.history) {
        assert_eq!(journaled.index, ran.index);
        assert_eq!(journaled.unit, ran.unit, "units must round-trip exactly");
        assert_eq!(journaled.error.to_bits(), ran.error.to_bits());
        assert!(journaled.stage_ms.iter().any(|(name, _)| name == "profile"));
    }
    let _ = fs::remove_file(&path);
}

#[test]
fn interrupted_run_resumes_without_re_evaluating() {
    let iterations = 14;
    let m = meta("resume", iterations, 3, 1);

    // The uninterrupted reference run.
    let reference = Executor::new(m.clone())
        .run_seq(&mut bayes(42), &mut eval)
        .unwrap();

    // A run that "crashes" after 8 evaluations (simulated by truncating
    // the journal to its header + first 8 eval lines).
    let path = tmp("resume.jsonl");
    let writer = JournalWriter::create(&path, &m).unwrap();
    Executor::new(m.clone())
        .journal(writer, false)
        .run_seq(&mut bayes(42), &mut eval)
        .unwrap();
    let text = fs::read_to_string(&path).unwrap();
    let kept: Vec<&str> = text
        .lines()
        .filter(|l| !l.contains("\"checkpoint\"") && !l.contains("\"done\""))
        .take(1 + 8)
        .collect();
    fs::write(&path, kept.join("\n") + "\n").unwrap();

    // Resume: journaled points must be re-observed, not re-evaluated.
    let r = replay(&path).unwrap();
    assert!(!r.complete);
    assert_eq!(r.evals.len(), 8);
    let evaluated = AtomicUsize::new(0);
    let counting_eval = |unit: &[f64], stages: &mut StageTimes, cancel: &CancelToken| {
        evaluated.fetch_add(1, Ordering::Relaxed);
        eval(unit, stages, cancel)
    };
    let writer = JournalWriter::append(&path).unwrap();
    let resumed = Executor::new(m.clone())
        .journal(writer, true)
        .resume(r)
        .unwrap()
        .run_seq(&mut bayes(42), &mut { counting_eval })
        .unwrap();

    assert_eq!(evaluated.load(Ordering::Relaxed), iterations - 8);
    assert_eq!(resumed.replayed, 8);
    assert_eq!(resumed.telemetry.replayed(), 8);
    assert_eq!(resumed.telemetry.evaluated(), iterations - 8);
    assert_eq!(resumed.history.len(), iterations);
    assert_eq!(resumed.best_unit, reference.best_unit);
    assert_eq!(
        resumed.best_error.to_bits(),
        reference.best_error.to_bits(),
        "resumed run must reach the same best error"
    );

    // The appended journal now replays as a complete run identical to the
    // reference.
    let full = replay(&path).unwrap();
    assert!(full.complete);
    assert_eq!(full.evals.len(), iterations);
    for (journaled, ran) in full.evals.iter().zip(&reference.history) {
        assert_eq!(journaled.unit, ran.unit);
        assert_eq!(journaled.error.to_bits(), ran.error.to_bits());
    }
    let _ = fs::remove_file(&path);
}

#[test]
fn malformed_trailing_line_is_tolerated() {
    let path = tmp("torn.jsonl");
    let m = meta("torn", 6, 2, 1);
    let writer = JournalWriter::create(&path, &m).unwrap();
    Executor::new(m.clone())
        .journal(writer, false)
        .run_seq(&mut bayes(42), &mut eval)
        .unwrap();

    // Simulate a crash mid-write: chop the last line in half.
    let text = fs::read_to_string(&path).unwrap();
    let torn = &text[..text.len() - text.lines().last().unwrap().len() / 2 - 1];
    fs::write(&path, torn).unwrap();

    let r = replay(&path).unwrap();
    assert_eq!(r.dropped_lines, 1);
    assert!(!r.complete, "the done event was the torn line");
    assert_eq!(r.evals.len(), 6);
    let _ = fs::remove_file(&path);
}

#[test]
fn journal_without_header_is_rejected() {
    let path = tmp("headerless.jsonl");
    fs::write(&path, "{\"event\":\"eval\",\"index\":0}\n").unwrap();
    let err = replay(&path).unwrap_err();
    assert!(err.to_string().contains("header"), "{err}");
    let _ = fs::remove_file(&path);

    let empty = tmp("empty.jsonl");
    fs::write(&empty, "").unwrap();
    assert!(replay(&empty).is_err());
    let _ = fs::remove_file(&empty);
}

#[test]
fn resume_refuses_a_mismatched_run() {
    let path = tmp("mismatch.jsonl");
    let m = meta("mismatch", 6, 2, 1);
    let writer = JournalWriter::create(&path, &m).unwrap();
    Executor::new(m.clone())
        .journal(writer, false)
        .run_seq(&mut bayes(42), &mut eval)
        .unwrap();
    let r = replay(&path).unwrap();

    let mut other = m.clone();
    other.seed = 43;
    let Err(err) = Executor::new(other).resume(r.clone()) else {
        panic!("resume accepted a journal with a different seed");
    };
    assert!(matches!(err, ExecError::ResumeMismatch(_)), "{err}");

    // Changing only the worker count is allowed.
    let mut more_workers = m;
    more_workers.workers = 4;
    assert!(Executor::new(more_workers).resume(r).is_ok());
    let _ = fs::remove_file(&path);
}

#[derive(Default)]
struct SinkLog {
    started: usize,
    replays: Vec<usize>,
    evals: Vec<(usize, f64)>,
    finished: Option<f64>,
}

/// A sink that records into shared state (`ProgressSink` has no `Send`
/// bound; callbacks only ever run on the coordinator thread).
#[derive(Clone, Default)]
struct RecordingSink(std::rc::Rc<std::cell::RefCell<SinkLog>>);

impl ProgressSink for RecordingSink {
    fn on_start(&mut self, _meta: &RunMeta) {
        self.0.borrow_mut().started += 1;
    }
    fn on_replay(&mut self, count: usize) {
        self.0.borrow_mut().replays.push(count);
    }
    fn on_eval(&mut self, index: usize, error: f64, _best: f64) {
        self.0.borrow_mut().evals.push((index, error));
    }
    fn on_finish(&mut self, best_error: f64, _telemetry: &Telemetry) {
        self.0.borrow_mut().finished = Some(best_error);
    }
}

#[test]
fn progress_sink_sees_every_event() {
    let sink = RecordingSink::default();
    let out = Executor::new(meta("sink", 5, 2, 1))
        .sink(Box::new(sink.clone()))
        .run_seq(&mut RandomSearch::new(3, 42), &mut eval)
        .unwrap();
    let log = sink.0.borrow();
    assert_eq!(log.started, 1);
    assert!(log.replays.is_empty());
    assert_eq!(log.evals.len(), 5);
    assert_eq!(log.evals.last().unwrap().0, 4);
    assert_eq!(log.finished, Some(out.best_error));
}

#[test]
fn random_search_runs_through_the_pool() {
    let run = |workers: usize| {
        let mut m = meta("random", 16, 4, workers);
        m.optimizer = "random".to_string();
        Executor::new(m)
            .run(&mut RandomSearch::new(3, 9), &eval)
            .unwrap()
    };
    let a = run(1);
    let b = run(3);
    assert_eq!(points(&a.history), points(&b.history));
    assert!(a.best_error <= a.history[0].error);
}

#[test]
fn eval_record_is_plain_data() {
    let rec = EvalRecord {
        index: 0,
        unit: vec![0.5],
        error: 1.0,
        stage_ms: vec![("profile".to_string(), 2.0)],
        fault: None,
        cached: None,
        worker: None,
    };
    assert_eq!(rec.clone(), rec);
}

/// A deterministic optimizer that cycles through a fixed point set, so
/// every point past the first lap is an exact re-suggestion — the memo
/// cache's best case, and the quarantine-release shape `core::search`
/// needs it for.
struct Cycler {
    points: Vec<Vec<f64>>,
    suggested: usize,
    history: Vec<(Vec<f64>, f64)>,
}

impl Cycler {
    fn new() -> Self {
        Cycler {
            points: vec![
                vec![0.1, 0.2, 0.3],
                vec![0.4, 0.5, 0.6],
                vec![0.7, 0.8, 0.9],
                vec![0.25, 0.25, 0.25],
            ],
            suggested: 0,
            history: Vec::new(),
        }
    }
}

impl BlackBoxOptimizer for Cycler {
    fn suggest(&mut self) -> Vec<f64> {
        let p = self.points[self.suggested % self.points.len()].clone();
        self.suggested += 1;
        p
    }
    fn observe(&mut self, x: Vec<f64>, y: f64) {
        self.history.push((x, y));
    }
    fn best(&self) -> Option<(&[f64], f64)> {
        self.history
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(x, y)| (x.as_slice(), *y))
    }
    fn history(&self) -> &[(Vec<f64>, f64)] {
        &self.history
    }
}

#[test]
fn memo_serves_duplicates_without_reevaluating() {
    let evaluations = AtomicUsize::new(0);
    let counted_eval = |unit: &[f64], stages: &mut StageTimes, cancel: &CancelToken| {
        evaluations.fetch_add(1, Ordering::SeqCst);
        eval(unit, stages, cancel)
    };

    let plain = Executor::new(meta("memo", 12, 1, 1))
        .run_seq(&mut Cycler::new(), &mut { counted_eval })
        .unwrap();
    assert_eq!(evaluations.swap(0, Ordering::SeqCst), 12);

    let memoized = Executor::new(meta("memo", 12, 1, 1))
        .memoize(0xC0FFEE)
        .run_seq(&mut Cycler::new(), &mut { counted_eval })
        .unwrap();
    // Four distinct points: one real evaluation each, eight cache hits.
    assert_eq!(evaluations.load(Ordering::SeqCst), 4);
    assert_eq!(memoized.telemetry.cache_hits(), 8);
    assert_eq!(memoized.telemetry.evaluated(), 4);

    // Memoization changes cost, never results.
    assert_eq!(points(&plain.history), points(&memoized.history));
    assert_eq!(plain.best_error.to_bits(), memoized.best_error.to_bits());
    for (i, rec) in memoized.history.iter().enumerate() {
        if i < 4 {
            assert_eq!(rec.cached, None);
        } else {
            assert_eq!(rec.cached, Some(i % 4), "record {i}");
        }
    }
}

#[test]
fn memo_hits_match_across_worker_counts() {
    let run = |workers: usize| {
        Executor::new(meta("memo-pool", 12, 4, workers))
            .memoize(7)
            .run(&mut Cycler::new(), &eval)
            .unwrap()
    };
    let serial = run(1);
    let pooled = run(4);
    assert_eq!(points(&serial.history), points(&pooled.history));
    assert_eq!(serial.telemetry.cache_hits(), pooled.telemetry.cache_hits());
}

#[test]
fn cache_hits_journal_and_resume_rebuilds_the_memo() {
    // A full memoized run, journaled.
    let path = tmp("memo-journal.jsonl");
    let m = meta("memo-journal", 12, 1, 1);
    let writer = JournalWriter::create(&path, &m).unwrap();
    let full = Executor::new(m.clone())
        .memoize(99)
        .journal(writer, false)
        .run_seq(&mut Cycler::new(), &mut eval)
        .unwrap();

    // The journal replays with provenance intact.
    let r = replay(&path).unwrap();
    assert_eq!(r.evals.len(), 12);
    for (i, rec) in r.evals.iter().enumerate() {
        let expect = if i < 4 { None } else { Some(i % 4) };
        assert_eq!(rec.cached, expect, "journaled record {i}");
        assert_eq!(rec.error.to_bits(), full.history[i].error.to_bits());
    }

    // Simulate a crash after 6 observations (4 evals + 2 cache hits):
    // keep the header plus the first 6 event lines.
    let text = fs::read_to_string(&path).unwrap();
    let truncated: Vec<&str> = text.lines().take(7).collect();
    fs::write(&path, truncated.join("\n")).unwrap();

    let resumed_path = tmp("memo-journal-resumed.jsonl");
    let writer = JournalWriter::create(&resumed_path, &m).unwrap();
    let evaluations = AtomicUsize::new(0);
    let resumed = Executor::new(m)
        .memoize(99)
        .journal(writer, false)
        .resume(replay(&path).unwrap())
        .unwrap()
        .run_seq(
            &mut Cycler::new(),
            &mut |unit: &[f64], stages: &mut StageTimes, cancel: &CancelToken| {
                evaluations.fetch_add(1, Ordering::SeqCst);
                eval(unit, stages, cancel)
            },
        )
        .unwrap();

    // The memo was rebuilt from the replayed prefix, so the six fresh
    // observations are all cache hits: nothing re-evaluates.
    assert_eq!(resumed.replayed, 6);
    assert_eq!(evaluations.load(Ordering::SeqCst), 0);
    assert_eq!(resumed.telemetry.cache_hits(), 6);
    assert_eq!(points(&full.history), points(&resumed.history));

    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&resumed_path);
}
