//! Fault-tolerance tests: injected panics, stalls, and non-finite
//! objectives must be contained, retried, journaled, quarantined, and —
//! above all — never change the deterministic outcome contract.

use datamime_bayesopt::{BayesOpt, BlackBoxOptimizer, BoConfig, PENALTY_OBJECTIVE};
use datamime_runtime::{
    replay, CancelToken, EvalRecord, Executor, FailPolicy, FailedAttempt, FailureKind, FaultInfo,
    FaultPlan, InjectedFault, JournalWriter, ProgressSink, RunMeta, StageTimes, SupervisorConfig,
};
use std::cell::RefCell;
use std::fs;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn objective(unit: &[f64]) -> f64 {
    unit.iter().map(|x| (x - 0.3).powi(2)).sum()
}

fn eval(unit: &[f64], stages: &mut StageTimes, _cancel: &CancelToken) -> f64 {
    stages.time("profile", || objective(unit))
}

fn meta(label: &str, iterations: usize, batch_k: usize, workers: usize) -> RunMeta {
    RunMeta {
        label: label.to_string(),
        seed: 42,
        dims: 3,
        iterations,
        batch_k,
        workers,
        optimizer: "bayesian".to_string(),
    }
}

fn bayes(seed: u64) -> BayesOpt {
    BayesOpt::new(BoConfig::for_dims(3), seed)
}

/// A supervisor config with test-friendly (fast) backoff.
fn supervision() -> SupervisorConfig {
    SupervisorConfig {
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        ..SupervisorConfig::default()
    }
}

fn points(history: &[EvalRecord]) -> Vec<(Vec<f64>, u64)> {
    history
        .iter()
        .map(|r| (r.unit.clone(), r.error.to_bits()))
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("datamime-faults-{}-{name}", std::process::id()));
    let _ = fs::remove_file(&path);
    path
}

#[test]
fn injected_panic_is_contained_and_penalized() {
    let cfg = SupervisorConfig {
        fault_plan: Some(FaultPlan::new().fail(2, InjectedFault::Panic)),
        ..supervision()
    };
    let out = Executor::new(meta("panic", 8, 2, 1))
        .supervise(cfg)
        .run_seq(&mut bayes(42), &mut eval)
        .expect("a penalized panic must not abort the run");
    assert_eq!(out.history.len(), 8);
    let rec = &out.history[2];
    assert_eq!(rec.error, PENALTY_OBJECTIVE);
    let fault = rec.fault.as_ref().expect("record must carry its fault");
    assert_eq!(fault.kind, FailureKind::Panic);
    assert!(fault.detail.contains("injected panic"), "{}", fault.detail);
    assert_eq!(out.telemetry.faults_of(FailureKind::Panic), 1);
    assert_eq!(out.telemetry.faults_total(), 1);
    assert_eq!(out.telemetry.failed_attempts(), 1);
    // The other seven evaluations are genuine.
    assert_eq!(out.telemetry.evaluated(), 8);
    assert!(out.history.iter().filter(|r| r.fault.is_none()).count() == 7);
    assert!(out.best_error < PENALTY_OBJECTIVE);
}

#[test]
fn faulty_outcome_is_identical_across_worker_counts() {
    let plan = FaultPlan::new()
        .fail(2, InjectedFault::Panic)
        .fail(5, InjectedFault::Nan)
        .fail(7, InjectedFault::StallMs(10_000));
    let run = |workers: usize| {
        let cfg = SupervisorConfig {
            deadline: Some(Duration::from_millis(50)),
            max_retries: 1,
            fault_plan: Some(plan.clone()),
            ..supervision()
        };
        Executor::new(meta("det", 12, 4, workers))
            .supervise(cfg)
            .run(&mut bayes(42), &eval)
            .unwrap()
    };
    let serial = run(1);
    let pooled = run(4);
    assert_eq!(points(&serial.history), points(&pooled.history));
    assert_eq!(serial.best_error.to_bits(), pooled.best_error.to_bits());
    for (a, b) in serial.history.iter().zip(&pooled.history) {
        assert_eq!(
            a.fault.as_ref().map(|f| f.kind),
            b.fault.as_ref().map(|f| f.kind)
        );
    }
    assert_eq!(
        serial.history[2].fault.as_ref().unwrap().kind,
        FailureKind::Panic
    );
    assert_eq!(
        serial.history[5].fault.as_ref().unwrap().kind,
        FailureKind::NonFinite
    );
    assert_eq!(
        serial.history[7].fault.as_ref().unwrap().kind,
        FailureKind::Timeout
    );
    assert_eq!(
        serial.telemetry.faults_total(),
        pooled.telemetry.faults_total()
    );
}

#[test]
fn transient_fault_recovers_on_retry() {
    // Index 3 fails only on its first attempt; with one retry the run's
    // observations are identical to a fault-free run.
    let clean = Executor::new(meta("transient", 8, 2, 1))
        .supervise(supervision())
        .run_seq(&mut bayes(42), &mut eval)
        .unwrap();
    let cfg = SupervisorConfig {
        max_retries: 1,
        fault_plan: Some(FaultPlan::new().fail_first(3, InjectedFault::Panic, 1)),
        ..supervision()
    };
    let faulty = Executor::new(meta("transient", 8, 2, 1))
        .supervise(cfg)
        .run_seq(&mut bayes(42), &mut eval)
        .unwrap();
    assert_eq!(points(&clean.history), points(&faulty.history));
    assert!(faulty.history[3].fault.is_none());
    assert_eq!(faulty.telemetry.failed_attempts(), 1);
    assert_eq!(faulty.telemetry.faults_total(), 0);
}

#[test]
fn stall_past_deadline_is_a_timeout() {
    let cfg = SupervisorConfig {
        deadline: Some(Duration::from_millis(30)),
        fault_plan: Some(FaultPlan::new().fail(1, InjectedFault::StallMs(60_000))),
        ..supervision()
    };
    let out = Executor::new(meta("stall", 4, 1, 1))
        .supervise(cfg)
        .run_seq(&mut bayes(42), &mut eval)
        .unwrap();
    let fault = out.history[1].fault.as_ref().unwrap();
    assert_eq!(fault.kind, FailureKind::Timeout);
    assert!(fault.detail.contains("deadline"), "{}", fault.detail);
    assert_eq!(out.telemetry.faults_of(FailureKind::Timeout), 1);
}

#[test]
fn abort_policy_reraises_through_the_worker_pool() {
    let cfg = SupervisorConfig {
        fail_policy: FailPolicy::Abort,
        fault_plan: Some(FaultPlan::new().fail(1, InjectedFault::Panic)),
        ..supervision()
    };
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Executor::new(meta("abort", 6, 2, 2))
            .supervise(cfg)
            .run(&mut bayes(42), &eval)
    }))
    .expect_err("abort policy must fail fast");
    let msg = datamime_runtime::supervisor::panic_message(err.as_ref());
    assert!(msg.contains("injected panic"), "unexpected payload: {msg}");
}

/// Always proposes the same point — the quarantine path's worst client.
struct ConstantOptimizer {
    point: Vec<f64>,
    history: Vec<(Vec<f64>, f64)>,
}

impl BlackBoxOptimizer for ConstantOptimizer {
    fn suggest(&mut self) -> Vec<f64> {
        self.point.clone()
    }
    fn observe(&mut self, x: Vec<f64>, y: f64) {
        self.history.push((x, y));
    }
    fn best(&self) -> Option<(&[f64], f64)> {
        self.history
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(x, y)| (x.as_slice(), *y))
    }
    fn history(&self) -> &[(Vec<f64>, f64)] {
        &self.history
    }
}

#[test]
fn repeatedly_failing_point_is_quarantined_without_reevaluation() {
    let cfg = SupervisorConfig {
        max_retries: 1,
        fault_plan: Some(FaultPlan::new().fail(0, InjectedFault::Panic)),
        ..supervision()
    };
    let mut opt = ConstantOptimizer {
        point: vec![0.25, 0.5, 0.75],
        history: Vec::new(),
    };
    let evals = AtomicUsize::new(0);
    let out = Executor::new(meta("quarantine", 5, 1, 1))
        .supervise(cfg)
        .run_seq(&mut opt, &mut |unit, stages, cancel| {
            evals.fetch_add(1, Ordering::Relaxed);
            eval(unit, stages, cancel)
        })
        .unwrap();
    // Index 0 burns both attempts on the injected panic; indexes 1..5
    // re-propose the same point and are penalized straight from the
    // quarantine set — the real evaluation never runs at all.
    assert_eq!(evals.load(Ordering::Relaxed), 0);
    assert_eq!(out.history.len(), 5);
    assert_eq!(
        out.history[0].fault.as_ref().unwrap().kind,
        FailureKind::Panic
    );
    for rec in &out.history[1..] {
        assert_eq!(rec.error, PENALTY_OBJECTIVE);
        assert_eq!(
            rec.fault.as_ref().unwrap().kind,
            FailureKind::Quarantined,
            "{rec:?}"
        );
    }
    assert_eq!(out.telemetry.quarantine_hits(), 4);
    assert_eq!(out.telemetry.faults_total(), 1);
    assert_eq!(out.telemetry.failed_attempts(), 2);
}

#[derive(Default)]
struct FaultLog {
    degrades: Vec<(usize, usize)>,
    fault_indexes: Vec<usize>,
    attempts: usize,
}

/// Records degradation and fault callbacks (single-threaded coordinator).
#[derive(Clone, Default)]
struct FaultSink(Rc<RefCell<FaultLog>>);

impl ProgressSink for FaultSink {
    fn on_degrade(&mut self, from_k: usize, to_k: usize) {
        self.0.borrow_mut().degrades.push((from_k, to_k));
    }
    fn on_fault(&mut self, index: usize, _fault: &FaultInfo) {
        self.0.borrow_mut().fault_indexes.push(index);
    }
    fn on_attempt(&mut self, _attempt: &FailedAttempt) {
        self.0.borrow_mut().attempts += 1;
    }
}

#[test]
fn consecutive_failures_degrade_the_batch_deterministically() {
    let mut plan = FaultPlan::new();
    for index in 0..7 {
        plan = plan.fail(index, InjectedFault::Nan);
    }
    let run = |workers: usize| {
        let cfg = SupervisorConfig {
            degrade_after: 2,
            fault_plan: Some(plan.clone()),
            ..supervision()
        };
        let sink = FaultSink::default();
        let out = Executor::new(meta("degrade", 12, 4, workers))
            .supervise(cfg)
            .sink(Box::new(sink.clone()))
            .run(&mut bayes(42), &eval)
            .unwrap();
        let log = sink.0.borrow();
        (
            points(&out.history),
            out.telemetry.degradations(),
            log.degrades.clone(),
            log.fault_indexes.len(),
        )
    };
    let (serial_pts, serial_degr, serial_log, serial_faults) = run(1);
    let (pooled_pts, pooled_degr, pooled_log, pooled_faults) = run(4);
    assert_eq!(serial_pts, pooled_pts);
    assert_eq!(serial_degr, pooled_degr);
    assert_eq!(serial_log, pooled_log);
    assert_eq!(serial_faults, pooled_faults);
    // 4 -> 2 after two failures, 2 -> 1 after two more; then the batch is
    // already minimal.
    assert_eq!(serial_log, vec![(4, 2), (2, 1)]);
    assert_eq!(serial_degr, 2);
    assert_eq!(serial_faults, 7);
}

#[test]
fn fault_records_round_trip_through_the_journal() {
    let path = tmp("roundtrip.jsonl");
    let m = meta("fault-journal", 6, 2, 1);
    let cfg = SupervisorConfig {
        max_retries: 1,
        fault_plan: Some(FaultPlan::new().fail(1, InjectedFault::Inf)),
        ..supervision()
    };
    let writer = JournalWriter::create(&path, &m).unwrap();
    let out = Executor::new(m.clone())
        .supervise(cfg)
        .journal(writer, false)
        .run_seq(&mut bayes(42), &mut eval)
        .unwrap();

    let text = fs::read_to_string(&path).unwrap();
    assert!(text.lines().next().unwrap().contains("\"version\":2"));
    assert_eq!(
        text.lines()
            .filter(|l| l.contains("\"event\":\"fault\""))
            .count(),
        1
    );
    // Both attempts (initial + one retry) were journaled before the verdict.
    assert_eq!(
        text.lines()
            .filter(|l| l.contains("\"event\":\"attempt\""))
            .count(),
        2
    );

    let r = replay(&path).unwrap();
    assert!(r.complete);
    assert_eq!(r.evals.len(), 6);
    assert!(
        r.fault_attempts.is_empty(),
        "attempts were resolved by the fault record"
    );
    let journaled = &r.evals[1];
    let ran = &out.history[1];
    assert_eq!(journaled.error.to_bits(), ran.error.to_bits());
    let jf = journaled.fault.as_ref().unwrap();
    let rf = ran.fault.as_ref().unwrap();
    assert_eq!(jf.kind, FailureKind::NonFinite);
    assert_eq!(jf.kind, rf.kind);
    assert_eq!(jf.detail, rf.detail);
    assert_eq!(jf.retries, 1);
    let _ = fs::remove_file(&path);
}

#[test]
fn resume_after_mid_retry_kill_penalizes_without_rerunning() {
    let iterations = 6;
    let m = meta("midretry", iterations, 1, 1);
    let plan = FaultPlan::new().fail(2, InjectedFault::Panic);
    let sup = |plan: Option<FaultPlan>| SupervisorConfig {
        max_retries: 2,
        fault_plan: plan,
        ..supervision()
    };

    // Reference: the full run with the persistent fault at index 2.
    let path = tmp("midretry.jsonl");
    let writer = JournalWriter::create(&path, &m).unwrap();
    let reference = Executor::new(m.clone())
        .supervise(sup(Some(plan.clone())))
        .journal(writer, false)
        .run_seq(&mut bayes(42), &mut eval)
        .unwrap();
    assert_eq!(
        reference.history[2].fault.as_ref().unwrap().kind,
        FailureKind::Panic
    );

    // Simulate a process killed mid-retry: keep the header, the first two
    // eval records, and only the first two of three attempt lines.
    let text = fs::read_to_string(&path).unwrap();
    let kept: Vec<&str> = text
        .lines()
        .filter(|l| {
            l.contains("\"event\":\"header\"")
                || l.contains("\"event\":\"eval\"")
                || l.contains("\"event\":\"attempt\"")
        })
        .take(1 + 2 + 2)
        .collect();
    assert!(kept[3].contains("\"event\":\"attempt\""), "{:?}", kept);
    fs::write(&path, kept.join("\n") + "\n").unwrap();

    let r = replay(&path).unwrap();
    assert_eq!(r.evals.len(), 2);
    let pending = r
        .fault_attempts
        .get(&2)
        .expect("mid-retry attempts survive");
    assert_eq!(pending.kind, FailureKind::Panic);
    assert_eq!(pending.attempts, 2);

    // Resume WITHOUT the fault plan and count evaluations: the journaled
    // attempts must be penalized from the journal, never re-run.
    let evals = AtomicUsize::new(0);
    let writer = JournalWriter::append(&path).unwrap();
    let resumed = Executor::new(m.clone())
        .supervise(sup(None))
        .journal(writer, true)
        .resume(r)
        .unwrap()
        .run_seq(&mut bayes(42), &mut |unit, stages, cancel| {
            evals.fetch_add(1, Ordering::Relaxed);
            eval(unit, stages, cancel)
        })
        .unwrap();

    // Replayed: 0,1. Penalized from the journal: 2. Evaluated: 3,4,5.
    assert_eq!(evals.load(Ordering::Relaxed), 3);
    assert_eq!(resumed.replayed, 2);
    assert_eq!(resumed.history.len(), iterations);
    let fault = resumed.history[2].fault.as_ref().unwrap();
    assert_eq!(fault.kind, FailureKind::Panic);
    assert_eq!(fault.retries, 1, "two journaled attempts = one retry");
    assert_eq!(resumed.history[2].error, PENALTY_OBJECTIVE);
    assert_eq!(points(&resumed.history), points(&reference.history));
    assert_eq!(resumed.best_error.to_bits(), reference.best_error.to_bits());

    // The appended journal now replays as a complete, fault-bearing run.
    let full = replay(&path).unwrap();
    assert!(full.complete);
    assert_eq!(full.evals.len(), iterations);
    assert_eq!(
        full.evals[2].fault.as_ref().unwrap().kind,
        FailureKind::Panic
    );
    assert!(full.fault_attempts.is_empty());
    let _ = fs::remove_file(&path);
}

#[test]
fn resumed_fault_records_drive_the_same_state_machine() {
    // A journaled run whose faults triggered degradation must degrade the
    // same way when resumed from its own journal mid-way.
    let mut plan = FaultPlan::new();
    for index in 0..6 {
        plan = plan.fail(index, InjectedFault::Nan);
    }
    let m = meta("resume-degrade", 12, 4, 1);
    let sup = || SupervisorConfig {
        degrade_after: 2,
        fault_plan: Some(plan.clone()),
        ..supervision()
    };

    let path = tmp("resume-degrade.jsonl");
    let writer = JournalWriter::create(&path, &m).unwrap();
    let reference = Executor::new(m.clone())
        .supervise(sup())
        .journal(writer, false)
        .run_seq(&mut bayes(42), &mut eval)
        .unwrap();

    // Truncate to the first 7 observations (evals or faults).
    let text = fs::read_to_string(&path).unwrap();
    let kept: Vec<&str> = text
        .lines()
        .filter(|l| {
            l.contains("\"event\":\"header\"")
                || l.contains("\"event\":\"eval\"")
                || l.contains("\"event\":\"fault\"")
        })
        .take(1 + 7)
        .collect();
    fs::write(&path, kept.join("\n") + "\n").unwrap();

    let r = replay(&path).unwrap();
    assert_eq!(r.evals.len(), 7);
    let resumed = Executor::new(m.clone())
        .supervise(sup())
        .resume(r)
        .unwrap()
        .run_seq(&mut bayes(42), &mut eval)
        .unwrap();
    assert_eq!(points(&resumed.history), points(&reference.history));
    let _ = fs::remove_file(&path);
}

/// A faulted point must stay in the quarantine machinery, never the memo
/// cache: its re-suggestions are quarantine-penalized without dispatch,
/// while healthy re-suggested points are served from the memo. This is
/// the `core::search` re-suggestion shape (satellite of the memo-cache
/// work) exercised at the executor level.
#[test]
fn quarantined_points_are_never_memoized_but_healthy_ones_are() {
    struct Cycle4 {
        suggested: usize,
        history: Vec<(Vec<f64>, f64)>,
    }
    impl BlackBoxOptimizer for Cycle4 {
        fn suggest(&mut self) -> Vec<f64> {
            const POINTS: [[f64; 3]; 4] = [
                [0.1, 0.2, 0.3],
                [0.4, 0.5, 0.6],
                [0.7, 0.8, 0.9],
                [0.25, 0.25, 0.25],
            ];
            let p = POINTS[self.suggested % 4].to_vec();
            self.suggested += 1;
            p
        }
        fn observe(&mut self, x: Vec<f64>, y: f64) {
            self.history.push((x, y));
        }
        fn best(&self) -> Option<(&[f64], f64)> {
            self.history
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(x, y)| (x.as_slice(), *y))
        }
        fn history(&self) -> &[(Vec<f64>, f64)] {
            &self.history
        }
    }

    let evaluations = AtomicUsize::new(0);
    let counted_eval = |unit: &[f64], stages: &mut StageTimes, cancel: &CancelToken| {
        evaluations.fetch_add(1, Ordering::SeqCst);
        eval(unit, stages, cancel)
    };

    // Point 1 (index 1, the cycle's second point) faults on first visit.
    let cfg = SupervisorConfig {
        fault_plan: Some(FaultPlan::new().fail(1, InjectedFault::Nan)),
        ..supervision()
    };
    let out = Executor::new(meta("memo-quarantine", 12, 1, 1))
        .supervise(cfg)
        .memoize(0xFACADE)
        .run_seq(
            &mut Cycle4 {
                suggested: 0,
                history: Vec::new(),
            },
            &mut { counted_eval },
        )
        .unwrap();

    // Three healthy points evaluated once each; the faulted point and its
    // two re-suggestions never reach the evaluator.
    assert_eq!(evaluations.load(Ordering::SeqCst), 3);
    assert_eq!(
        out.telemetry.cache_hits(),
        6,
        "healthy revisits hit the memo"
    );
    assert_eq!(
        out.telemetry.quarantine_hits(),
        2,
        "faulted-point revisits are quarantine-penalized, not memoized"
    );
    for (i, rec) in out.history.iter().enumerate() {
        if i % 4 == 1 {
            // The faulted point: penalty on every lap, never from cache.
            assert_eq!(rec.error, PENALTY_OBJECTIVE, "record {i}");
            assert!(rec.fault.is_some(), "record {i} must carry a fault");
            assert_eq!(rec.cached, None, "record {i} must not be cached");
            if i > 1 {
                assert_eq!(
                    rec.fault.as_ref().unwrap().kind,
                    FailureKind::Quarantined,
                    "record {i}"
                );
            }
        } else if i >= 4 {
            assert_eq!(rec.cached, Some(i % 4), "record {i} should be a memo hit");
        } else {
            assert_eq!(rec.cached, None, "record {i} is the first visit");
        }
    }
}
