//! The fault-tolerant evaluation supervisor.
//!
//! Datamime searches run hundreds of expensive profile evaluations over
//! hours; one flaky run must not discard the whole search. The
//! [`Supervisor`] wraps the raw evaluation callback and turns every way
//! an evaluation can die into a structured verdict the executor can
//! journal, penalize, and keep going past:
//!
//! - **panic containment** — a panic inside the evaluation becomes a
//!   [`FailureKind::Panic`] with the payload string, not a dead run;
//! - **deadlines** — a [`Watchdog`] thread cancels a cooperative
//!   [`CancelToken`] when an evaluation exceeds its wall-clock budget
//!   ([`FailureKind::Timeout`]); the profiler's sampling loops poll the
//!   token and return early;
//! - **non-finite objectives** — NaN/±Inf become
//!   [`FailureKind::NonFinite`] instead of corrupting the optimizer;
//! - **bounded retries** — transient failures are retried up to
//!   `max_retries` times with exponential backoff and *deterministic*
//!   jitter (seeded by `(run seed, eval index, attempt)`, never by the
//!   wall clock), so a rerun of the same seed backs off identically;
//! - **fail policy** — after retries are exhausted the failure either
//!   aborts the run (the legacy fail-fast behavior) or is *penalized*:
//!   the executor observes a large finite objective so Bayesian
//!   optimization steers away from the failed region and the search
//!   survives.
//!
//! Deterministic fault injection ([`crate::faultinject::FaultPlan`])
//! plugs in here so every one of those paths is testable in CI.

use crate::faultinject::FaultPlan;
use crate::telemetry::StageTimes;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A cooperative cancellation flag shared between a watchdog and the
/// evaluation it guards. Cloning yields a handle to the *same* flag.
///
/// Long-running evaluation loops (the profiler's sampling loops, curve
/// sweeps) poll [`is_cancelled`](Self::is_cancelled) and return early
/// once it fires; the supervisor then classifies the evaluation as timed
/// out and discards its truncated result.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// How an evaluation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The evaluation panicked.
    Panic,
    /// The evaluation exceeded its wall-clock deadline.
    Timeout,
    /// The evaluation returned NaN or ±Inf.
    NonFinite,
    /// The point was not evaluated at all: it matched the quarantine set
    /// of repeatedly-failing points and was penalized directly.
    Quarantined,
    /// The out-of-process backend lost the worker evaluating the point
    /// (crash, SIGKILL, socket close) more times than its re-dispatch
    /// budget allows. Never produced by the in-process supervisor.
    WorkerLost,
}

impl FailureKind {
    /// The journal tag for this kind.
    pub fn tag(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::NonFinite => "nonfinite",
            FailureKind::Quarantined => "quarantined",
            FailureKind::WorkerLost => "workerlost",
        }
    }

    /// Parses a journal tag back into a kind.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "panic" => Some(FailureKind::Panic),
            "timeout" => Some(FailureKind::Timeout),
            "nonfinite" => Some(FailureKind::NonFinite),
            "quarantined" => Some(FailureKind::Quarantined),
            "workerlost" => Some(FailureKind::WorkerLost),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// The final failure record attached to a penalized evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInfo {
    /// How the evaluation failed.
    pub kind: FailureKind,
    /// Human-readable detail (panic payload, deadline, offending value).
    pub detail: String,
    /// Retries performed before giving up.
    pub retries: u32,
}

/// One failed attempt, reported while retries may still follow. The
/// executor journals these eagerly so a process killed *mid-retry* can
/// resume without re-running the failing point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedAttempt {
    /// Global evaluation index.
    pub index: usize,
    /// Zero-based attempt number (0 = first try).
    pub attempt: u32,
    /// How this attempt failed.
    pub kind: FailureKind,
    /// Human-readable detail.
    pub detail: String,
    /// Worker-process id that ran the attempt (out-of-process backend
    /// only; `None` on the in-process paths). Diagnostic metadata, never
    /// compared when checking run determinism.
    pub worker: Option<u64>,
}

/// What happens when an evaluation still fails after all retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailPolicy {
    /// Observe a large finite penalty and keep searching (the default).
    #[default]
    Penalize,
    /// Re-raise the failure and kill the run — the legacy fail-fast
    /// behavior, still available behind `--fail-policy=abort`.
    Abort,
}

/// Configuration of the supervisor. [`SupervisorConfig::default`] gives
/// a penalizing supervisor with no deadline and no retries, which is
/// behaviorally identical to an unsupervised run as long as every
/// evaluation succeeds.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Wall-clock budget per evaluation attempt (`None` = unlimited).
    pub deadline: Option<Duration>,
    /// Retries after the first failed attempt.
    pub max_retries: u32,
    /// First-retry backoff; doubles per retry (exponential).
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// What to do once retries are exhausted.
    pub fail_policy: FailPolicy,
    /// The finite objective observed for a penalized failure.
    pub penalty: f64,
    /// Consecutive failed evaluations before the executor halves its
    /// batch (graceful degradation); `0` disables degradation.
    pub degrade_after: u32,
    /// L∞ radius within which a suggested point matches a quarantined
    /// one (quarantined points are penalized without evaluation).
    pub quarantine_radius: f64,
    /// Deterministic fault-injection plan (tests/CI only).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            deadline: None,
            max_retries: 0,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(10),
            fail_policy: FailPolicy::Penalize,
            penalty: datamime_bayesopt::PENALTY_OBJECTIVE,
            degrade_after: 5,
            quarantine_radius: 1e-9,
            fault_plan: None,
        }
    }
}

/// The verdict of one supervised evaluation: either a real objective, or
/// the penalty with the failure attached.
#[derive(Debug)]
pub struct Evaluated {
    /// Objective value (the configured penalty when `fault` is set).
    pub error: f64,
    /// Stage timings of the successful attempt (empty on failure).
    pub stages: StageTimes,
    /// The failure, if the evaluation was penalized.
    pub fault: Option<FaultInfo>,
    /// Worker-process id that produced the verdict (out-of-process
    /// backend only; `None` on the in-process paths). Diagnostic
    /// metadata, never compared when checking run determinism.
    pub worker: Option<u64>,
}

impl Evaluated {
    /// A synthesized penalty verdict (quarantine hit, replayed fault).
    pub fn penalized(penalty: f64, fault: FaultInfo) -> Self {
        Evaluated {
            error: penalty,
            stages: StageTimes::new(),
            fault: Some(fault),
            worker: None,
        }
    }
}

/// The evaluation callback the supervisor drives: unit point in, stage
/// times and a cancel token threaded through, objective out.
pub type EvalFn<'a> = dyn FnMut(&[f64], &mut StageTimes, &CancelToken) -> f64 + 'a;

/// Shared state between the watchdog thread and its registrants.
#[derive(Debug)]
struct WatchState {
    /// Active `(deadline, registration id, token)` entries.
    entries: Vec<(Instant, u64, CancelToken)>,
    next_id: u64,
    shutdown: bool,
}

#[derive(Debug)]
struct WatchShared {
    state: Mutex<WatchState>,
    cv: Condvar,
}

/// A background thread that cancels tokens whose deadline has passed.
///
/// Registrations are scoped: dropping the [`WatchGuard`] deregisters the
/// entry, and dropping the watchdog shuts the thread down and joins it.
#[derive(Debug)]
pub struct Watchdog {
    shared: Arc<WatchShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the watchdog thread.
    pub fn new() -> Self {
        let shared = Arc::new(WatchShared {
            state: Mutex::new(WatchState {
                entries: Vec::new(),
                next_id: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("datamime-watchdog".to_string())
            .spawn(move || watch_loop(&thread_shared))
            .expect("failed to spawn watchdog thread");
        Watchdog {
            shared,
            handle: Some(handle),
        }
    }

    /// Arms `token` to be cancelled `timeout` from now unless the
    /// returned guard is dropped first.
    pub fn register(&self, timeout: Duration, token: CancelToken) -> WatchGuard<'_> {
        // The watchdog is wall-clock by design — timeouts cancel work
        // but never feed results.
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().expect("watchdog poisoned");
        let id = st.next_id;
        st.next_id += 1;
        st.entries.push((deadline, id, token));
        drop(st);
        self.cv_notify();
        WatchGuard { dog: self, id }
    }

    fn cv_notify(&self) {
        self.shared.cv.notify_all();
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        if let Ok(mut st) = self.shared.state.lock() {
            st.shutdown = true;
        }
        self.cv_notify();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Deregisters its watchdog entry on drop (the evaluation finished
/// before the deadline).
#[derive(Debug)]
pub struct WatchGuard<'a> {
    dog: &'a Watchdog,
    id: u64,
}

impl Drop for WatchGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut st) = self.dog.shared.state.lock() {
            st.entries.retain(|(_, id, _)| *id != self.id);
        }
        self.dog.cv_notify();
    }
}

fn watch_loop(shared: &WatchShared) {
    let mut st = shared.state.lock().expect("watchdog poisoned");
    loop {
        if st.shutdown {
            return;
        }
        // The watchdog is wall-clock by design — timeouts cancel work
        // but never feed results.
        let now = Instant::now();
        st.entries.retain(|(deadline, _, token)| {
            if *deadline <= now {
                token.cancel();
                false
            } else {
                true
            }
        });
        let next = st.entries.iter().map(|(d, _, _)| *d).min();
        st = match next {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(now);
                shared
                    .cv
                    .wait_timeout(st, wait)
                    .expect("watchdog poisoned")
                    .0
            }
            None => shared.cv.wait(st).expect("watchdog poisoned"),
        };
    }
}

/// Drives one evaluation attempt after another until it succeeds, runs
/// out of retries, or the fail policy aborts; see the module docs.
///
/// The supervisor is `Sync`: a pooled executor shares one instance
/// across its worker threads.
#[derive(Debug)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    /// Run seed; the retry jitter is a pure function of
    /// `(seed, index, attempt)` so backoff schedules replay exactly.
    seed: u64,
    watchdog: Option<Watchdog>,
}

impl Supervisor {
    /// Builds a supervisor (and its watchdog thread, when a deadline is
    /// configured) for a run with the given seed.
    pub fn new(cfg: SupervisorConfig, seed: u64) -> Self {
        let watchdog = cfg.deadline.map(|_| Watchdog::new());
        Supervisor {
            cfg,
            seed,
            watchdog,
        }
    }

    /// The configuration this supervisor runs under.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// The deterministic backoff before retry attempt `attempt` (≥ 1) of
    /// evaluation `index`; see [`retry_backoff`].
    pub fn backoff(&self, index: usize, attempt: u32) -> Duration {
        retry_backoff(
            self.cfg.backoff_base,
            self.cfg.backoff_cap,
            self.seed,
            index,
            attempt,
        )
    }

    /// Evaluates `unit` (global evaluation `index`) under full
    /// supervision. `on_attempt` is invoked for every *failed* attempt —
    /// including the final one — before the verdict is returned, so the
    /// caller can journal retry progress eagerly.
    ///
    /// # Panics
    ///
    /// Under [`FailPolicy::Abort`], re-raises the evaluation's own panic
    /// (or panics with a descriptive message for timeouts/non-finite
    /// objectives) once retries are exhausted — the legacy fail-fast
    /// behavior.
    pub fn evaluate(
        &self,
        index: usize,
        unit: &[f64],
        eval: &mut EvalFn<'_>,
        on_attempt: &mut dyn FnMut(FailedAttempt),
    ) -> Evaluated {
        let attempts = self.cfg.max_retries + 1;
        let mut last: Option<(FailureKind, String, Option<PanicPayload>)> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff(index, attempt));
            }
            let token = CancelToken::new();
            let guard = match (&self.watchdog, self.cfg.deadline) {
                (Some(dog), Some(deadline)) => Some(dog.register(deadline, token.clone())),
                _ => None,
            };
            let mut stages = StageTimes::new();
            let plan = self.cfg.fault_plan.as_ref();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(injected) = plan.and_then(|p| p.apply(index, attempt, &token)) {
                    injected
                } else if token.is_cancelled() {
                    // The injected stall already consumed the deadline;
                    // the value is discarded below.
                    f64::NAN
                } else {
                    eval(unit, &mut stages, &token)
                }
            }));
            drop(guard);
            let (kind, detail, payload) = match result {
                Ok(_) if token.is_cancelled() => {
                    let budget = self.cfg.deadline.unwrap_or_default();
                    (
                        FailureKind::Timeout,
                        format!("evaluation exceeded its {budget:?} deadline"),
                        None,
                    )
                }
                Ok(value) if !value.is_finite() => (
                    FailureKind::NonFinite,
                    format!("objective evaluated to {value}"),
                    None,
                ),
                Ok(value) => {
                    return Evaluated {
                        error: value,
                        stages,
                        fault: None,
                        worker: None,
                    }
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    (FailureKind::Panic, msg, Some(payload))
                }
            };
            on_attempt(FailedAttempt {
                index,
                attempt,
                kind,
                detail: detail.clone(),
                worker: None,
            });
            last = Some((kind, detail, payload));
        }

        let (kind, detail, payload) = last.expect("at least one attempt ran");
        match self.cfg.fail_policy {
            FailPolicy::Abort => match payload {
                Some(p) => std::panic::resume_unwind(p),
                None => panic!(
                    "evaluation {index} failed ({kind} after {attempts} attempt(s)): {detail}"
                ),
            },
            FailPolicy::Penalize => Evaluated::penalized(
                self.cfg.penalty,
                FaultInfo {
                    kind,
                    detail,
                    retries: self.cfg.max_retries,
                },
            ),
        }
    }
}

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Extracts a human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// The deterministic retry backoff shared by the in-process supervisor
/// and the out-of-process broker: `base · 2^(attempt-1)`, jittered to
/// `[0.5×, 1.5×)` by a hash of `(seed, index, attempt)`, capped at
/// `cap`. A pure function — both backends replay the exact same backoff
/// schedule for the same run seed.
pub fn retry_backoff(
    base: Duration,
    cap: Duration,
    seed: u64,
    index: usize,
    attempt: u32,
) -> Duration {
    let exp = base.as_secs_f64() * 2f64.powi(attempt as i32 - 1);
    let h = splitmix64(
        seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9),
    );
    let jitter = 0.5 + (h >> 11) as f64 / (1u64 << 53) as f64;
    Duration::from_secs_f64((exp * jitter).min(cap.as_secs_f64()))
}

/// SplitMix64: a tiny, high-quality mixing function — the deterministic
/// jitter source (no wall-clock entropy anywhere in the retry path).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn supervisor(cfg: SupervisorConfig) -> Supervisor {
        Supervisor::new(cfg, 42)
    }

    fn no_attempt() -> impl FnMut(FailedAttempt) {
        |_| {}
    }

    #[test]
    fn successful_evaluation_passes_through() {
        let sup = supervisor(SupervisorConfig::default());
        let out = sup.evaluate(
            0,
            &[0.5],
            &mut |unit, stages, _| stages.time("profile", || unit[0] * 2.0),
            &mut no_attempt(),
        );
        assert_eq!(out.error, 1.0);
        assert!(out.fault.is_none());
        assert_eq!(out.stages.entries().len(), 1);
    }

    #[test]
    fn panic_is_contained_and_penalized() {
        let sup = supervisor(SupervisorConfig::default());
        let mut attempts = Vec::new();
        let out = sup.evaluate(
            3,
            &[0.5],
            &mut |_, _, _| panic!("simulated profiler crash"),
            &mut |a| attempts.push(a),
        );
        let fault = out.fault.expect("must be penalized");
        assert_eq!(fault.kind, FailureKind::Panic);
        assert!(fault.detail.contains("simulated profiler crash"));
        assert_eq!(out.error, datamime_bayesopt::PENALTY_OBJECTIVE);
        assert_eq!(attempts.len(), 1);
        assert_eq!(attempts[0].index, 3);
    }

    #[test]
    fn non_finite_objective_is_detected() {
        let sup = supervisor(SupervisorConfig::default());
        for bad in [f64::NAN, f64::INFINITY] {
            let out = sup.evaluate(0, &[0.1], &mut |_, _, _| bad, &mut no_attempt());
            assert_eq!(out.fault.unwrap().kind, FailureKind::NonFinite);
        }
    }

    #[test]
    fn transient_failure_succeeds_on_retry() {
        let cfg = SupervisorConfig {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            ..SupervisorConfig::default()
        };
        let sup = supervisor(cfg);
        let mut calls = 0;
        let mut failed = Vec::new();
        let out = sup.evaluate(
            1,
            &[0.2],
            &mut |_, _, _| {
                calls += 1;
                if calls < 3 {
                    panic!("flaky")
                }
                7.5
            },
            &mut |a| failed.push(a.attempt),
        );
        assert_eq!(out.error, 7.5);
        assert!(out.fault.is_none());
        assert_eq!(failed, vec![0, 1]);
    }

    #[test]
    fn deadline_cancels_a_cooperative_stall() {
        let cfg = SupervisorConfig {
            deadline: Some(Duration::from_millis(20)),
            ..SupervisorConfig::default()
        };
        let sup = supervisor(cfg);
        let out = sup.evaluate(
            0,
            &[0.3],
            &mut |_, _, token| {
                // A cooperative runaway: spins until the watchdog fires.
                let start = Instant::now();
                while !token.is_cancelled() {
                    assert!(start.elapsed() < Duration::from_secs(10), "watchdog dead");
                    std::thread::sleep(Duration::from_millis(1));
                }
                123.0 // discarded: the deadline already passed
            },
            &mut no_attempt(),
        );
        let fault = out.fault.expect("timeout must be penalized");
        assert_eq!(fault.kind, FailureKind::Timeout);
    }

    #[test]
    fn abort_policy_reraises_the_panic() {
        let cfg = SupervisorConfig {
            fail_policy: FailPolicy::Abort,
            ..SupervisorConfig::default()
        };
        let sup = supervisor(cfg);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sup.evaluate(
                0,
                &[0.5],
                &mut |_, _, _| panic!("original payload"),
                &mut no_attempt(),
            )
        }))
        .unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "original payload");
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let cfg = SupervisorConfig {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(250),
            ..SupervisorConfig::default()
        };
        let a = supervisor(cfg.clone());
        let b = supervisor(cfg);
        for attempt in 1..6 {
            assert_eq!(a.backoff(7, attempt), b.backoff(7, attempt));
            assert!(a.backoff(7, attempt) <= Duration::from_millis(250));
        }
        // Jitter stays within [0.5, 1.5) of the exponential base.
        let first = a.backoff(7, 1);
        assert!(first >= Duration::from_millis(50) && first < Duration::from_millis(150));
        // Different indexes jitter differently (with overwhelming odds).
        assert_ne!(a.backoff(7, 1), a.backoff(8, 1));
    }

    #[test]
    fn watchdog_fires_only_expired_entries() {
        let dog = Watchdog::new();
        let fast = CancelToken::new();
        let slow = CancelToken::new();
        let _g1 = dog.register(Duration::from_millis(10), fast.clone());
        let _g2 = dog.register(Duration::from_secs(60), slow.clone());
        let start = Instant::now();
        while !fast.is_cancelled() {
            assert!(start.elapsed() < Duration::from_secs(10), "watchdog dead");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!slow.is_cancelled());
    }

    #[test]
    fn dropping_the_guard_disarms_the_deadline() {
        let dog = Watchdog::new();
        let token = CancelToken::new();
        let guard = dog.register(Duration::from_millis(10), token.clone());
        drop(guard);
        std::thread::sleep(Duration::from_millis(30));
        assert!(!token.is_cancelled());
    }
}
