//! Cooperative SIGTERM/SIGINT handling without `unsafe`.
//!
//! The workspace forbids `unsafe` code, so the classic
//! `signal(SIGTERM, handler)` route is closed. Instead, a binary that
//! wants graceful termination calls [`install`] first thing in `main`:
//!
//! - If [`TERM_SENTINEL_ENV`] is set (a test harness, CI, or a wrapper
//!   already installed one), the returned [`TermSignal`] simply polls
//!   that sentinel file — no process games at all.
//! - Otherwise [`install`] re-`exec`s the process under a `/bin/sh`
//!   trampoline (via the *safe* `CommandExt::exec`): the shell keeps the
//!   original PID, runs the real binary as its child with
//!   [`TERM_SENTINEL_ENV`] pointing at a fresh sentinel path, traps
//!   `TERM`/`INT` by creating the sentinel file, waits the child out, and
//!   exits with its status. `kill -TERM <pid>` therefore reaches the
//!   trampoline, which flips the sentinel, which the real process
//!   observes via [`TermSignal::requested`] at its next drain point.
//!
//! The indirection is deliberate: tests that want `SIGKILL` to hit the
//! *real* process (crash-resume coverage) set [`TERM_SENTINEL_ENV`]
//! themselves, which disables the trampoline entirely, and can request a
//! graceful drain signal-free by creating the sentinel file.
//!
//! Limitation: this observes only `TERM` and `INT` delivered to the
//! wrapped PID. It is a drain *request* mechanism, not a general signal
//! API — which is exactly what the serve daemon and workers need.

use std::path::{Path, PathBuf};

/// Environment variable naming the sentinel file whose existence means
/// "terminate gracefully". Setting it yourself disables the trampoline.
pub const TERM_SENTINEL_ENV: &str = "DATAMIME_TERM_SENTINEL";

/// Set this environment variable (to anything) to skip the `/bin/sh`
/// trampoline without wiring a sentinel of your own: [`install`] returns
/// a signal that can only be triggered programmatically.
pub const NO_TRAP_ENV: &str = "DATAMIME_NO_TRAP";

/// The shell trampoline: `"$@"` is the real binary and its arguments.
/// `: >` (not `touch`) creates the sentinel so only shell builtins are
/// needed. A trap interrupts `wait` with status > 128 while the child is
/// still alive, hence the re-`wait` loop guarded by `kill -0`.
const TRAP_SCRIPT: &str = r#"
"$@" &
child=$!
trap ': > "$DATAMIME_TERM_SENTINEL"' TERM INT
status=143
while :; do
  if wait "$child"; then
    status=0
    break
  else
    status=$?
    kill -0 "$child" 2>/dev/null || break
  fi
done
rm -f "$DATAMIME_TERM_SENTINEL"
exit "$status"
"#;

/// A handle polling the termination sentinel; see the module docs.
#[derive(Debug, Clone)]
pub struct TermSignal {
    path: PathBuf,
}

impl TermSignal {
    /// A signal backed by the sentinel file at `path` (which need not
    /// exist yet — existence *is* the signal).
    pub fn at(path: PathBuf) -> Self {
        TermSignal { path }
    }

    /// Whether termination has been requested (the sentinel exists).
    pub fn requested(&self) -> bool {
        self.path.exists()
    }

    /// The sentinel path (hand it to tests or child processes).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Requests termination programmatically by creating the sentinel —
    /// what the admin `shutdown` command and tests use.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the sentinel cannot be created.
    pub fn trigger(&self) -> std::io::Result<()> {
        std::fs::write(&self.path, b"terminate\n")
    }
}

/// Installs graceful-termination handling for the current process and
/// returns the [`TermSignal`] to poll at drain points. Call this before
/// spawning threads or opening sockets: on the first run it replaces the
/// process image with the shell trampoline (same PID), and only the
/// re-executed child actually continues past this point.
///
/// Never fails: if the trampoline cannot be installed (no `/bin/sh`, no
/// `current_exe`), the returned signal still works programmatically via
/// [`TermSignal::trigger`] — only external `kill -TERM` goes unobserved.
pub fn install() -> TermSignal {
    if let Ok(path) = std::env::var(TERM_SENTINEL_ENV) {
        if !path.is_empty() {
            return TermSignal::at(PathBuf::from(path));
        }
    }
    let path = std::env::temp_dir().join(format!("datamime-term-{}.sentinel", std::process::id()));
    // audit:allow(swallowed-result): a stale sentinel from a previous pid usually does not exist — creation below is authoritative
    let _ = std::fs::remove_file(&path);
    if std::env::var_os(NO_TRAP_ENV).is_some() {
        return TermSignal::at(path);
    }
    let Ok(exe) = std::env::current_exe() else {
        return TermSignal::at(path);
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    use std::os::unix::process::CommandExt;
    // exec() only returns on failure; on success the trampoline now owns
    // this PID and the child it spawns re-enters install() with the
    // sentinel env set, taking the polling branch above.
    let _err = std::process::Command::new("/bin/sh")
        .arg("-c")
        .arg(TRAP_SCRIPT)
        .arg("datamime-trap")
        .arg(&exe)
        .args(&args)
        .env(TERM_SENTINEL_ENV, &path)
        .exec();
    TermSignal::at(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("datamime-termsig-{}-{name}", std::process::id()))
    }

    #[test]
    fn sentinel_existence_is_the_signal() {
        let path = tmp("basic");
        let _ = std::fs::remove_file(&path);
        let sig = TermSignal::at(path.clone());
        assert!(!sig.requested());
        sig.trigger().unwrap();
        assert!(sig.requested());
        let clone = sig.clone();
        assert!(clone.requested());
        std::fs::remove_file(&path).unwrap();
        assert!(!sig.requested());
    }

    #[test]
    fn trampoline_script_uses_only_shell_builtins_and_the_env() {
        // Guard against accidental edits that would break minimal shells:
        // the script may rely on the sentinel env var, not a literal path,
        // and must not call external binaries beyond rm/kill.
        assert!(TRAP_SCRIPT.contains("$DATAMIME_TERM_SENTINEL"));
        assert!(!TRAP_SCRIPT.contains("touch"));
        assert!(TRAP_SCRIPT.contains("trap"));
        assert!(TRAP_SCRIPT.contains("wait"));
    }
}
