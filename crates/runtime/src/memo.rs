//! Deterministic evaluation memo cache.
//!
//! A Bayesian search re-suggests points it has already paid to evaluate:
//! after a quarantine release, after resuming a journal, or simply because
//! the acquisition function converges onto the incumbent. Every evaluation
//! in this workspace is a pure function of `(parameter point, machine
//! configuration, seed)`, so re-running the simulator for a repeated point
//! burns seconds to recompute a value the run already holds.
//!
//! [`MemoCache`] memoizes those evaluations. The key is the *canonical bit
//! pattern* of the unit-hypercube point ([`canonical_bits`]) so lookups
//! are exact — no epsilon comparisons, no float formatting — under a
//! context fingerprint ([`fingerprint`]) that binds the cache to one
//! `(machine config, seed)` world. The executor consults the cache before
//! dispatching a point, observes the memoized error on a hit, and journals
//! a `cache_hit` event instead of an `eval`, so a resumed run replays the
//! hit bit-identically without the cache having to be persisted itself.
//!
//! Ordering discipline: the cache is only read and written on the
//! engine's observation path (never from worker threads), so its contents
//! are a deterministic function of the observation sequence — identical
//! across worker counts, like everything else the engine does.

use std::collections::BTreeMap;

/// Canonical bit pattern of a unit point: each coordinate's IEEE-754 bits
/// with `-0.0` normalized to `+0.0` so the two zero encodings cannot miss
/// each other.
///
/// NaN coordinates are left as their raw bit patterns: a NaN point can
/// never match anything (the optimizer does not produce NaNs; if one
/// appears it should be evaluated, fail, and be quarantined — not served
/// from cache).
pub fn canonical_bits(unit: &[f64]) -> Vec<u64> {
    unit.iter()
        .map(|&x| {
            if x == 0.0 {
                0.0f64.to_bits()
            } else {
                x.to_bits()
            }
        })
        .collect()
}

/// Folds identity words (config hash, seed, …) into one context
/// fingerprint with a splitmix64 pass per word — cheap, stable across
/// runs, and order-sensitive.
pub fn fingerprint(parts: &[u64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &p in parts {
        let mut z = h ^ p;
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h = z ^ (z >> 31);
    }
    h
}

/// One memoized evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoEntry {
    /// The objective value originally observed.
    pub error: f64,
    /// Observation index of the evaluation that produced `error` — the
    /// provenance recorded in the journal's `cache_hit` event.
    pub source: usize,
    /// Worker-process id that ran the source evaluation (out-of-process
    /// backend only; `None` in-process). Diagnostic metadata carried into
    /// the journal's `cache_hit` event, never part of the cache key.
    pub worker: Option<u64>,
}

/// An exact-match memo of successful evaluations, keyed by
/// [`canonical_bits`] under a single context [`fingerprint`].
///
/// # Examples
///
/// ```
/// use datamime_runtime::memo::{fingerprint, MemoCache};
///
/// let mut memo = MemoCache::new(fingerprint(&[0xbeef, 42]));
/// let point = [0.25, 0.75];
/// assert!(memo.lookup(&point).is_none());
/// memo.insert(&point, 0.125, 7, None);
/// let hit = memo.lookup(&point).expect("exact re-suggestion hits");
/// assert_eq!((hit.error, hit.source), (0.125, 7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoCache {
    context: u64,
    map: BTreeMap<Vec<u64>, MemoEntry>,
}

impl MemoCache {
    /// An empty cache bound to `context` (see [`fingerprint`]).
    pub fn new(context: u64) -> Self {
        MemoCache {
            context,
            map: BTreeMap::new(),
        }
    }

    /// The context fingerprint this cache is bound to.
    pub fn context(&self) -> u64 {
        self.context
    }

    /// Looks up a point by exact canonical bits.
    pub fn lookup(&self, unit: &[f64]) -> Option<&MemoEntry> {
        self.map.get(&canonical_bits(unit))
    }

    /// Memoizes `error` for `unit`; the first insertion wins so `source`
    /// always names the evaluation that actually ran. `worker` records
    /// which worker process ran it (`None` in-process).
    pub fn insert(&mut self, unit: &[f64], error: f64, source: usize, worker: Option<u64>) {
        self.map.entry(canonical_bits(unit)).or_insert(MemoEntry {
            error,
            source,
            worker,
        });
    }

    /// Number of memoized points.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_bits_hit_and_nearby_points_miss() {
        let mut memo = MemoCache::new(1);
        memo.insert(&[0.5, 0.5], 1.0, 0, None);
        assert!(memo.lookup(&[0.5, 0.5]).is_some());
        assert!(memo.lookup(&[0.5, 0.5 + 1e-17]).is_some()); // rounds to the same f64
        assert!(memo.lookup(&[0.5, 0.5000001]).is_none());
        assert!(memo.lookup(&[0.5]).is_none());
    }

    #[test]
    fn negative_zero_matches_positive_zero() {
        let mut memo = MemoCache::new(1);
        memo.insert(&[0.0], 2.0, 3, None);
        let hit = memo.lookup(&[-0.0]).expect("-0.0 canonicalizes to +0.0");
        assert_eq!((hit.error, hit.source), (2.0, 3));
    }

    #[test]
    fn first_insertion_wins() {
        let mut memo = MemoCache::new(1);
        memo.insert(&[0.25], 1.0, 2, None);
        memo.insert(&[0.25], 9.0, 8, None);
        let e = memo.lookup(&[0.25]).unwrap();
        assert_eq!((e.error, e.source), (1.0, 2));
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_stable() {
        assert_eq!(fingerprint(&[1, 2]), fingerprint(&[1, 2]));
        assert_ne!(fingerprint(&[1, 2]), fingerprint(&[2, 1]));
        assert_ne!(fingerprint(&[]), fingerprint(&[0]));
    }
}
