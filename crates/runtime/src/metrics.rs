//! A registry of named monotonic counters and gauges.
//!
//! [`MetricsRegistry`] is the shared vocabulary between the run-local
//! [`crate::telemetry::Telemetry`] aggregates and any
//! long-lived stats surface (the `datamime-serve` admin plane's `stats`
//! command): counter names are plain strings, values are `u64`, and
//! [`snapshot`](MetricsRegistry::snapshot) returns them in sorted name
//! order so two snapshots of identical state render identically.
//!
//! Counters only ever increase ([`add`](MetricsRegistry::add) /
//! [`incr`](MetricsRegistry::incr)); gauges are set to their latest value
//! ([`set_gauge`](MetricsRegistry::set_gauge)). All methods take `&self`
//! — the registry is internally locked, so one `Arc<MetricsRegistry>`
//! can be fed concurrently from many job threads.

use crate::executor::RunMeta;
use crate::supervisor::{FailedAttempt, FaultInfo};
use crate::telemetry::{ProgressSink, Telemetry};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Named monotonic counters and last-value gauges behind one lock; see
/// the module docs.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Maps>,
}

#[derive(Debug, Default, Clone)]
struct Maps {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
}

impl Clone for MetricsRegistry {
    fn clone(&self) -> Self {
        MetricsRegistry {
            inner: Mutex::new(self.lock().clone()),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// A counter increment never races a structural invariant — the maps
    /// are always internally consistent — so recovering a poisoned lock
    /// is safe and keeps stats readable after an unrelated panic.
    fn lock(&self) -> MutexGuard<'_, Maps> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds `delta` to counter `name` (creating it at zero first).
    pub fn add(&self, name: &str, delta: u64) {
        let mut maps = self.lock();
        let slot = maps.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Adds one to counter `name`.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// The current value of counter `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value` (gauges move both ways).
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// The current value of gauge `name` (zero if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.lock().gauges.get(name).copied().unwrap_or(0)
    }

    /// Every counter as `(name, value)`, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.lock()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Every gauge as `(name, value)`, sorted by name.
    pub fn gauge_snapshot(&self) -> Vec<(String, u64)> {
        self.lock()
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Adds every counter of `other` into this registry (gauges are
    /// deliberately not merged — a gauge is an owner's latest value, not
    /// an additive quantity).
    pub fn absorb(&self, other: &MetricsRegistry) {
        let theirs = other.lock().counters.clone();
        let mut maps = self.lock();
        for (name, value) in theirs {
            let slot = maps.counters.entry(name).or_insert(0);
            *slot = slot.saturating_add(value);
        }
    }
}

/// A [`ProgressSink`] that folds run progress into a shared
/// [`MetricsRegistry`] as it happens — the live-counter feed behind the
/// serve daemon's `stats` endpoint. Counter names mirror
/// [`Telemetry`]'s vocabulary (`evals`, `cache_hits`, `faults`,
/// `failed_attempts`, `degradations`, `replayed`); per-stage totals land
/// as `stage_<name>_ms` when the run finishes.
#[derive(Debug, Clone)]
pub struct MetricsSink {
    metrics: Arc<MetricsRegistry>,
}

impl MetricsSink {
    /// A sink feeding `metrics`.
    pub fn new(metrics: Arc<MetricsRegistry>) -> Self {
        MetricsSink { metrics }
    }
}

impl ProgressSink for MetricsSink {
    fn on_replay(&mut self, count: usize) {
        self.metrics.add("replayed", count as u64);
    }

    fn on_eval(&mut self, _index: usize, _error: f64, _best_error: f64) {
        self.metrics.incr("evals");
    }

    fn on_attempt(&mut self, _attempt: &FailedAttempt) {
        self.metrics.incr("failed_attempts");
    }

    fn on_cache_hit(&mut self, _index: usize, _source: usize) {
        self.metrics.incr("cache_hits");
    }

    fn on_fault(&mut self, _index: usize, _fault: &FaultInfo) {
        self.metrics.incr("faults");
    }

    fn on_degrade(&mut self, _from_k: usize, _to_k: usize) {
        self.metrics.incr("degradations");
    }

    fn on_start(&mut self, _meta: &RunMeta) {
        self.metrics.incr("runs_started");
    }

    fn on_finish(&mut self, _best_error: f64, telemetry: &Telemetry) {
        self.metrics.incr("runs_finished");
        for (stage, total, _count) in telemetry.stages() {
            self.metrics
                .add(&format!("stage_{stage}_ms"), total.as_millis() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let m = MetricsRegistry::new();
        m.incr("zebra");
        m.add("apple", 3);
        m.incr("apple");
        assert_eq!(m.get("apple"), 4);
        assert_eq!(m.get("zebra"), 1);
        assert_eq!(m.get("missing"), 0);
        let snap = m.snapshot();
        assert_eq!(
            snap,
            vec![("apple".to_string(), 4), ("zebra".to_string(), 1)]
        );
    }

    #[test]
    fn gauges_move_both_ways_and_stay_out_of_counters() {
        let m = MetricsRegistry::new();
        m.set_gauge("jobs_active", 3);
        m.set_gauge("jobs_active", 1);
        assert_eq!(m.gauge("jobs_active"), 1);
        assert!(m.snapshot().is_empty());
        assert_eq!(m.gauge_snapshot(), vec![("jobs_active".to_string(), 1)]);
    }

    #[test]
    fn absorb_adds_counters_only() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.add("evals", 2);
        b.add("evals", 5);
        b.add("cache_hits", 1);
        b.set_gauge("jobs_active", 9);
        a.absorb(&b);
        assert_eq!(a.get("evals"), 7);
        assert_eq!(a.get("cache_hits"), 1);
        assert_eq!(a.gauge("jobs_active"), 0);
    }

    #[test]
    fn metrics_sink_counts_progress_events() {
        let m = Arc::new(MetricsRegistry::new());
        let mut sink = MetricsSink::new(Arc::clone(&m));
        sink.on_eval(0, 1.0, 1.0);
        sink.on_eval(1, 0.5, 0.5);
        sink.on_cache_hit(2, 0);
        sink.on_replay(3);
        assert_eq!(m.get("evals"), 2);
        assert_eq!(m.get("cache_hits"), 1);
        assert_eq!(m.get("replayed"), 3);
    }

    #[test]
    fn clone_is_a_deep_snapshot() {
        let a = MetricsRegistry::new();
        a.incr("evals");
        let b = a.clone();
        a.incr("evals");
        assert_eq!(a.get("evals"), 2);
        assert_eq!(b.get("evals"), 1);
    }
}
