//! A minimal hand-rolled JSON reader/writer (the build environment has no
//! crates.io access, so no serde).
//!
//! The journal only needs objects, arrays, strings, numbers, booleans and
//! null — exactly [RFC 8259](https://www.rfc-editor.org/rfc/rfc8259)'s
//! value grammar — plus shortest-round-trip `f64` formatting, which Rust's
//! `Display` for floats already guarantees, so `parse(fmt(x)) == x`
//! bit-for-bit for finite values.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (keys are not deduplicated).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if exactly representable.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= usize::MAX as f64).then_some(n as usize)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the journal;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 scalar (input came from a &str, so
                    // the byte stream is valid UTF-8).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).expect("input is valid UTF-8");
                    let ch = rest.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice is valid utf-8");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` in shortest-round-trip form.
///
/// # Panics
///
/// Panics if `v` is not finite (JSON has no NaN/Inf).
pub fn push_f64(out: &mut String, v: f64) {
    assert!(v.is_finite(), "JSON numbers must be finite");
    let _ = write!(out, "{v}");
}

/// Appends `[x0,x1,...]` of finite floats.
pub fn push_f64_array(out: &mut String, xs: &[f64]) {
    out.push('[');
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, x);
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_value_grammar() {
        let v = Json::parse(
            r#"{"a":1.5,"b":[1,2,-3e2],"c":"x\ny\"z","d":true,"e":null,"f":{},"g":[]}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny\"z"));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
        assert_eq!(v.get("f").unwrap().get("nope"), None);
        assert_eq!(v.get("g").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "[1,",
            "\"open",
            "tru",
            "{\"a\":1}x",
            "nan",
            "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn f64_round_trips_bit_for_bit() {
        for &x in &[
            0.0,
            1.0,
            -1.5,
            0.1 + 0.2,
            std::f64::consts::PI,
            1e-300,
            -9.87654321e250,
            f64::MIN_POSITIVE,
            f64::MAX,
        ] {
            let mut s = String::new();
            push_f64(&mut s, x);
            let back = Json::parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn string_escaping_round_trips() {
        let original = "quote\" slash\\ newline\n tab\t control\u{1} unicode→";
        let mut s = String::new();
        push_str_escaped(&mut s, original);
        assert_eq!(Json::parse(&s).unwrap().as_str(), Some(original));
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(5.0).as_usize(), Some(5));
        assert_eq!(Json::Num(5.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
    }
}
