//! Deterministic fault injection for the evaluation supervisor.
//!
//! A [`FaultPlan`] is pure data: it names evaluation indexes that must
//! misbehave (panic, stall past their deadline, or return a non-finite
//! objective) and on which attempts. The supervisor consults the plan
//! *before* running the real evaluation, so the same plan produces the
//! same failures regardless of worker count or thread scheduling —
//! which is exactly what the executor's determinism tests assert.
//!
//! The module is always compiled (the plan is plain configuration and
//! costs one `Option` check per evaluation when absent); the cargo
//! feature `faultinject` only gates the long-running stress tests in
//! `tests/faultinject_stress.rs`.

use crate::supervisor::CancelToken;
use std::time::{Duration, Instant};

/// What an injected fault does to the evaluation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Panic with a recognizable payload (`"injected panic"`).
    Panic,
    /// Stall cooperatively for up to this many milliseconds, polling the
    /// cancel token every millisecond. With a deadline shorter than the
    /// stall the watchdog cancels first and the attempt times out;
    /// without one the stall simply elapses and the attempt falls
    /// through as a timeout-free NaN (see [`FaultPlan::apply`]).
    StallMs(u64),
    /// Return `f64::NAN`.
    Nan,
    /// Return `f64::INFINITY`.
    Inf,
    /// Kill the worker *process* evaluating the point (the worker calls
    /// `std::process::abort()`, so not even `catch_unwind` sees it).
    /// Only the out-of-process backend can express this; the in-process
    /// paths treat it as a no-op ([`FaultPlan::apply`] returns `None` and
    /// the real evaluation runs), which is exactly what makes a
    /// `KillWorker` run comparable bit-for-bit against a thread-backend
    /// run: the broker re-dispatches the point transparently and the
    /// observed value is the same either way.
    KillWorker,
}

/// One planned fault: evaluation `index` misbehaves with `kind` on its
/// first `attempts` attempts (`None` = every attempt, i.e. persistent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// Global evaluation index the fault applies to.
    pub index: usize,
    /// What the fault does.
    pub kind: InjectedFault,
    /// Number of attempts that fail (`None` = all of them).
    pub attempts: Option<u32>,
}

/// A deterministic schedule of evaluation faults. Plain data — cloneable,
/// comparable, and independent of wall clock and scheduling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a persistent fault: evaluation `index` fails with `kind` on
    /// every attempt.
    pub fn fail(mut self, index: usize, kind: InjectedFault) -> Self {
        self.faults.push(PlannedFault {
            index,
            kind,
            attempts: None,
        });
        self
    }

    /// Adds a transient fault: evaluation `index` fails with `kind` on
    /// its first `attempts` attempts, then behaves normally — the
    /// retry-path test vehicle.
    pub fn fail_first(mut self, index: usize, kind: InjectedFault, attempts: u32) -> Self {
        self.faults.push(PlannedFault {
            index,
            kind,
            attempts: Some(attempts),
        });
        self
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned faults, in insertion order.
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }

    /// The fault scheduled for `(index, attempt)`, if any. First match
    /// in insertion order wins (an earlier fault on the same index can
    /// therefore mask a later one, [`InjectedFault::KillWorker`]
    /// included).
    pub fn lookup(&self, index: usize, attempt: u32) -> Option<InjectedFault> {
        self.faults
            .iter()
            .find(|f| f.index == index && f.attempts.is_none_or(|n| attempt < n))
            .map(|f| f.kind)
    }

    /// Whether a [`InjectedFault::KillWorker`] fault is scheduled for
    /// dispatch number `dispatch` of evaluation `index`. The worker
    /// binary consults this with the broker's *dispatch* counter (not the
    /// supervision attempt), so `fail_first(i, KillWorker, 1)` kills only
    /// the first process that picks the point up and the transparent
    /// re-dispatch then succeeds.
    pub fn kills(&self, index: usize, dispatch: u32) -> bool {
        self.faults.iter().any(|f| {
            f.index == index
                && f.kind == InjectedFault::KillWorker
                && f.attempts.is_none_or(|n| dispatch < n)
        })
    }

    /// Serializes the plan to its compact spec form: faults joined by
    /// `;`, each `index:kind[@attempts]` with kinds `panic`, `nan`,
    /// `inf`, `stall<ms>`, `kill` — the format the worker binary accepts
    /// via `--fault` so a plan survives the process boundary.
    pub fn to_spec(&self) -> String {
        let mut out = String::new();
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(&f.index.to_string());
            out.push(':');
            match f.kind {
                InjectedFault::Panic => out.push_str("panic"),
                InjectedFault::Nan => out.push_str("nan"),
                InjectedFault::Inf => out.push_str("inf"),
                InjectedFault::KillWorker => out.push_str("kill"),
                InjectedFault::StallMs(ms) => {
                    out.push_str("stall");
                    out.push_str(&ms.to_string());
                }
            }
            if let Some(n) = f.attempts {
                out.push('@');
                out.push_str(&n.to_string());
            }
        }
        out
    }

    /// Parses a spec produced by [`to_spec`](Self::to_spec) (an empty
    /// string is the empty plan).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed fault entry.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for part in spec.split(';').filter(|p| !p.is_empty()) {
            let (index_s, rest) = part
                .split_once(':')
                .ok_or_else(|| format!("fault `{part}`: expected index:kind"))?;
            let index: usize = index_s
                .parse()
                .map_err(|e| format!("fault `{part}`: bad index: {e}"))?;
            let (kind_s, attempts) = match rest.split_once('@') {
                Some((k, n)) => (
                    k,
                    Some(
                        n.parse::<u32>()
                            .map_err(|e| format!("fault `{part}`: bad attempt count: {e}"))?,
                    ),
                ),
                None => (rest, None),
            };
            let kind = match kind_s {
                "panic" => InjectedFault::Panic,
                "nan" => InjectedFault::Nan,
                "inf" => InjectedFault::Inf,
                "kill" => InjectedFault::KillWorker,
                s if s.starts_with("stall") => InjectedFault::StallMs(
                    s["stall".len()..]
                        .parse()
                        .map_err(|e| format!("fault `{part}`: bad stall duration: {e}"))?,
                ),
                other => return Err(format!("fault `{part}`: unknown kind `{other}`")),
            };
            plan.faults.push(PlannedFault {
                index,
                kind,
                attempts,
            });
        }
        Ok(plan)
    }

    /// Executes the fault scheduled for `(index, attempt)`, if any:
    /// panics for [`InjectedFault::Panic`], returns a non-finite value
    /// for [`InjectedFault::Nan`]/[`InjectedFault::Inf`], and for
    /// [`InjectedFault::StallMs`] sleeps cooperatively (checking `token`
    /// every millisecond) then returns NaN — the supervisor classifies
    /// the attempt as a timeout when the token fired, or as non-finite
    /// when the stall outlived no deadline.
    ///
    /// Returns `None` when no fault is scheduled, in which case the
    /// caller runs the real evaluation.
    pub fn apply(&self, index: usize, attempt: u32, token: &CancelToken) -> Option<f64> {
        match self.lookup(index, attempt)? {
            InjectedFault::Panic => panic!("injected panic at evaluation {index}"),
            InjectedFault::Nan => Some(f64::NAN),
            InjectedFault::Inf => Some(f64::INFINITY),
            // In-process there is no worker process to kill; the worker
            // binary checks `kills()` before evaluating instead.
            InjectedFault::KillWorker => None,
            InjectedFault::StallMs(ms) => {
                let bound = Duration::from_millis(ms);
                let start = Instant::now();
                while !token.is_cancelled() && start.elapsed() < bound {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Some(f64::NAN)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.lookup(0, 0), None);
        assert!(plan.apply(0, 0, &CancelToken::new()).is_none());
    }

    #[test]
    fn persistent_fault_applies_to_every_attempt() {
        let plan = FaultPlan::new().fail(2, InjectedFault::Nan);
        for attempt in 0..5 {
            assert_eq!(plan.lookup(2, attempt), Some(InjectedFault::Nan));
        }
        assert_eq!(plan.lookup(1, 0), None);
    }

    #[test]
    fn transient_fault_clears_after_n_attempts() {
        let plan = FaultPlan::new().fail_first(4, InjectedFault::Panic, 2);
        assert_eq!(plan.lookup(4, 0), Some(InjectedFault::Panic));
        assert_eq!(plan.lookup(4, 1), Some(InjectedFault::Panic));
        assert_eq!(plan.lookup(4, 2), None);
    }

    #[test]
    fn nan_and_inf_injections_return_nonfinite() {
        let token = CancelToken::new();
        let plan = FaultPlan::new()
            .fail(0, InjectedFault::Nan)
            .fail(1, InjectedFault::Inf);
        assert!(plan.apply(0, 0, &token).unwrap().is_nan());
        assert_eq!(plan.apply(1, 0, &token), Some(f64::INFINITY));
    }

    #[test]
    fn injected_panic_carries_recognizable_payload() {
        let plan = FaultPlan::new().fail(7, InjectedFault::Panic);
        let err = std::panic::catch_unwind(|| plan.apply(7, 0, &CancelToken::new())).unwrap_err();
        let msg = crate::supervisor::panic_message(err.as_ref());
        assert!(msg.contains("injected panic at evaluation 7"));
    }

    #[test]
    fn stall_respects_cancellation() {
        let token = CancelToken::new();
        token.cancel();
        let plan = FaultPlan::new().fail(0, InjectedFault::StallMs(60_000));
        let start = Instant::now();
        let out = plan.apply(0, 0, &token);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(out.unwrap().is_nan());
    }

    #[test]
    fn kill_worker_is_a_noop_in_process_but_visible_via_kills() {
        let plan = FaultPlan::new().fail_first(3, InjectedFault::KillWorker, 1);
        assert!(plan.apply(3, 0, &CancelToken::new()).is_none());
        assert!(plan.kills(3, 0));
        assert!(!plan.kills(3, 1), "only the first dispatch dies");
        assert!(!plan.kills(2, 0));
        assert!(FaultPlan::new()
            .fail(5, InjectedFault::KillWorker)
            .kills(5, 17));
    }

    #[test]
    fn spec_round_trips_every_fault_kind() {
        let plan = FaultPlan::new()
            .fail(0, InjectedFault::Panic)
            .fail_first(1, InjectedFault::Nan, 2)
            .fail(2, InjectedFault::Inf)
            .fail_first(3, InjectedFault::StallMs(250), 1)
            .fail_first(4, InjectedFault::KillWorker, 1);
        let spec = plan.to_spec();
        assert_eq!(spec, "0:panic;1:nan@2;2:inf;3:stall250@1;4:kill@1");
        assert_eq!(FaultPlan::from_spec(&spec).unwrap(), plan);
        assert_eq!(FaultPlan::from_spec("").unwrap(), FaultPlan::new());
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in ["7", "x:panic", "1:frob", "1:stallx", "1:panic@y"] {
            let err = FaultPlan::from_spec(bad).unwrap_err();
            assert!(err.contains("fault `"), "{bad}: {err}");
        }
    }

    #[test]
    fn bounded_stall_elapses_without_cancellation() {
        let token = CancelToken::new();
        let plan = FaultPlan::new().fail(0, InjectedFault::StallMs(5));
        assert!(plan.apply(0, 0, &token).unwrap().is_nan());
    }
}
