//! The parallel batched search executor.
//!
//! [`Executor`] drains batch-`k` suggestions from any
//! [`BlackBoxOptimizer`] through a bounded work queue serviced by a pool
//! of scoped worker threads, feeds results back to the optimizer in
//! **batch order** (so a run's outcome is a deterministic function of
//! `(seed, batch_k)` — never of thread scheduling), journals every
//! evaluation, and aggregates telemetry.
//!
//! With `batch_k = 1` and one worker the executor degenerates to exactly
//! the paper's sequential suggest → evaluate → observe loop, which is how
//! `datamime::search::search()` runs on top of it without changing any
//! result.
//!
//! # Fault tolerance
//!
//! [`supervise`](Executor::supervise) attaches a
//! [`Supervisor`]: evaluations that
//! panic, stall past their deadline, or return a non-finite objective
//! are retried with deterministic backoff and finally *penalized* (a
//! large finite objective is observed and a `fault` record journaled)
//! instead of killing the run. Because all fault bookkeeping —
//! quarantine of repeatedly-failing points, consecutive-failure counting
//! and batch degradation — happens in the engine in **observation
//! order**, a faulty run remains bit-for-bit deterministic across worker
//! counts, and a resumed run (whose replayed fault records drive the
//! same state machine) continues exactly where it would have gone.
//! Without `supervise` the executor keeps its legacy fail-fast behavior.

use crate::journal::{JournalError, JournalWriter, Replay};
use crate::memo::{MemoCache, MemoEntry};
use crate::supervisor::{
    CancelToken, Evaluated, FailedAttempt, FailureKind, FaultInfo, Supervisor, SupervisorConfig,
};
use crate::telemetry::{NullSink, ProgressSink, StageTimes, Telemetry};
use datamime_bayesopt::BlackBoxOptimizer;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// Identity and shape of one run; doubles as the journal header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Human-readable run label (the Datamime search uses the generator
    /// name).
    pub label: String,
    /// Optimizer seed.
    pub seed: u64,
    /// Search-space dimensionality.
    pub dims: usize,
    /// Total number of points to evaluate.
    pub iterations: usize,
    /// Suggestions drawn per optimizer batch.
    pub batch_k: usize,
    /// Worker threads evaluating a batch (does not affect results).
    pub workers: usize,
    /// Optimizer family tag (e.g. `"bayesian"`, `"random"`), used to
    /// refuse resuming a journal under a different optimizer.
    pub optimizer: String,
}

/// One evaluated point.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Zero-based evaluation index (observation order).
    pub index: usize,
    /// Unit-hypercube parameters.
    pub unit: Vec<f64>,
    /// Objective value (the supervisor's penalty when `fault` is set).
    pub error: f64,
    /// Per-stage wall-clock milliseconds (empty for replayed points whose
    /// journal carried none, and for penalized faults).
    pub stage_ms: Vec<(String, f64)>,
    /// The failure behind a penalized observation, if any.
    pub fault: Option<FaultInfo>,
    /// When this observation was served from the evaluation memo cache,
    /// the index of the evaluation that originally produced the value.
    pub cached: Option<usize>,
    /// Worker-process id that evaluated the point (out-of-process backend
    /// only; for a cache hit, the worker that ran the *source*
    /// evaluation). Diagnostic metadata: which worker serviced a point
    /// depends on completion timing, so this field is deliberately
    /// excluded from determinism comparisons (see
    /// [`semantic_eq`](EvalRecord::semantic_eq)).
    pub worker: Option<u64>,
}

impl EvalRecord {
    /// Whether two records describe the same observation — every field
    /// except the scheduling-dependent `worker` metadata. This is the
    /// equality the determinism guarantees are stated in: a proc-backend
    /// run is `semantic_eq` to a thread-backend run, bit for bit, even
    /// though worker ids differ.
    pub fn semantic_eq(&self, other: &EvalRecord) -> bool {
        self.index == other.index
            && self.unit.len() == other.unit.len()
            && self
                .unit
                .iter()
                .zip(&other.unit)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.error.to_bits() == other.error.to_bits()
            && self.fault == other.fault
            && self.cached == other.cached
    }
}

/// The outcome of an executor run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Best (lowest-error) unit parameters found.
    pub best_unit: Vec<f64>,
    /// The best error.
    pub best_error: f64,
    /// Every observation, in order (replayed ones included).
    pub history: Vec<EvalRecord>,
    /// Aggregated timers and counters.
    pub telemetry: Telemetry,
    /// How many leading points came from a journal instead of evaluation.
    pub replayed: usize,
    /// Set when a per-run quota stopped the run before `iterations`
    /// observations: the outcome is the best-so-far, not the full search.
    pub quota: Option<QuotaCause>,
}

/// Which quota ended a run early (see [`Executor::quota`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaCause {
    /// The observation-count budget was reached.
    MaxEvals,
    /// The wall-clock budget elapsed.
    WallClock,
}

impl QuotaCause {
    /// A short stable tag (`max_evals` / `wall_clock_s`), matching the
    /// job-spec keys the serve daemon accepts.
    pub fn as_str(self) -> &'static str {
        match self {
            QuotaCause::MaxEvals => "max_evals",
            QuotaCause::WallClock => "wall_clock_s",
        }
    }
}

/// An executor failure.
#[derive(Debug)]
pub enum ExecError {
    /// Reading or writing the journal failed.
    Journal(JournalError),
    /// The journal being resumed does not match this run's configuration.
    ResumeMismatch(String),
    /// The evaluation backend failed in a way that is not attributable to
    /// any single point (broker setup, worker handshake rejection,
    /// restart budget exhausted while respawning).
    Backend(String),
    /// The run's [`BatchGate`] refused a new batch: the host is draining
    /// for shutdown or the job was cancelled. Every observation made so
    /// far is journaled, so a `Shutdown` stop is resumable in place.
    Stopped(GateClosed),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Journal(e) => write!(f, "{e}"),
            ExecError::ResumeMismatch(why) => write!(f, "cannot resume: {why}"),
            ExecError::Backend(why) => write!(f, "evaluation backend failed: {why}"),
            ExecError::Stopped(GateClosed::Shutdown) => {
                write!(f, "run stopped at a batch boundary: host shutting down")
            }
            ExecError::Stopped(GateClosed::Cancelled) => {
                write!(f, "run stopped at a batch boundary: cancelled")
            }
        }
    }
}

/// Why a [`BatchGate`] refused entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateClosed {
    /// The host is draining: in-flight batches finish, no new batch
    /// starts, and the run can be resumed from its journal later.
    Shutdown,
    /// This run specifically was cancelled; it will not be resumed.
    Cancelled,
}

/// Admission control over batch dispatch — the seam a multi-tenant host
/// (the `datamime-serve` scheduler) uses to interleave many runs over
/// shared evaluation capacity and to stop a run at a safe point.
///
/// The executor calls [`enter`](BatchGate::enter) immediately before
/// dispatching each batch of fresh evaluations and
/// [`leave`](BatchGate::leave) when the batch's verdicts are back.
/// Blocking in `enter` delays the batch (that is the fairness mechanism);
/// returning `Err` stops the run with [`ExecError::Stopped`]. Because the
/// gate only ever *delays or stops* dispatch — it cannot reorder
/// observations or alter values — a gated run that completes is
/// bit-identical to the same run ungated.
///
/// Batches served entirely from the replay prefix or the memo cache skip
/// the gate: they consume no evaluation capacity.
pub trait BatchGate: Send + Sync {
    /// Requests permission to dispatch one batch; may block for fairness.
    ///
    /// # Errors
    ///
    /// [`GateClosed`] stops the run at this batch boundary.
    fn enter(&self) -> Result<(), GateClosed>;

    /// Releases the permission taken by the last successful
    /// [`enter`](BatchGate::enter).
    fn leave(&self) {}
}

/// A cloneable, `Debug`-printable handle around a [`BatchGate`], so gate
/// installation can ride in plain-old-data options structs.
#[derive(Clone)]
pub struct GateHandle(std::sync::Arc<dyn BatchGate>);

impl GateHandle {
    /// Wraps `gate` for installation via [`Executor::gate`].
    pub fn new(gate: std::sync::Arc<dyn BatchGate>) -> Self {
        GateHandle(gate)
    }

    /// The underlying gate.
    pub fn arc(&self) -> std::sync::Arc<dyn BatchGate> {
        std::sync::Arc::clone(&self.0)
    }
}

impl std::fmt::Debug for GateHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("GateHandle(..)")
    }
}

impl std::error::Error for ExecError {}

impl From<JournalError> for ExecError {
    fn from(e: JournalError) -> Self {
        ExecError::Journal(e)
    }
}

/// Evaluates the given `(global index, unit)` jobs, returning one
/// [`Evaluated`] verdict per job in the same order and reporting failed
/// attempts through the callback — the engine's pluggable evaluation
/// backend. An `Err` aborts the run (it means the backend itself broke,
/// not that a point failed — point failures are penalty verdicts).
type Dispatch<'a> = dyn FnMut(&[(usize, Vec<f64>)], &mut dyn FnMut(FailedAttempt)) -> Result<Vec<Evaluated>, ExecError>
    + 'a;

/// A batch evaluation backend the executor can drive through
/// [`Executor::run_backend`] — the seam where out-of-process evaluation
/// (the `datamime-dist` broker) plugs in beside the built-in thread pool.
///
/// Contract: `evaluate_batch` returns exactly one verdict per job, **in
/// job order**, regardless of internal scheduling — the executor commits
/// observations in that order, which is what keeps runs bit-identical
/// across backends and worker counts. Failed attempts (retries included)
/// are reported through `on_attempt` as they happen so the engine can
/// journal them eagerly. Returning `Err` aborts the whole run.
pub trait Backend {
    /// Evaluates one batch of `(global index, unit)` jobs.
    ///
    /// # Errors
    ///
    /// An error means the backend itself failed (lost its workers, could
    /// not respawn within budget) — per-point failures must be returned
    /// as penalty verdicts instead.
    fn evaluate_batch(
        &mut self,
        jobs: &[(usize, Vec<f64>)],
        on_attempt: &mut dyn FnMut(FailedAttempt),
    ) -> Result<Vec<Evaluated>, String>;
}

/// Pure projection from a unit point to the memo-cache key it is cached
/// under (see [`Executor::memoize_keyed`]).
pub type MemoKeyFn = Box<dyn Fn(&[f64]) -> Vec<f64>>;

/// How one batch position gets its record.
enum SlotPlan {
    /// Re-observed from the resumed journal.
    Replayed,
    /// Synthesized penalty: quarantine hit, or a fault whose retries were
    /// journaled before a mid-retry kill.
    Synth(FaultInfo),
    /// Served from the evaluation memo cache: the memoized error and the
    /// index of the evaluation that produced it.
    Memo(MemoEntry),
    /// Dispatched for real evaluation; holds the job-slice position.
    Fresh(usize),
}

/// Builder-style run harness; see the module docs.
pub struct Executor {
    meta: RunMeta,
    checkpoint_every: usize,
    journal: Option<JournalWriter>,
    /// Whether the journal file already contains the replayed prefix (an
    /// appended resume) or needs it rewritten (a fresh file).
    journal_has_prefix: bool,
    resume: Option<Replay>,
    sink: Box<dyn ProgressSink>,
    supervision: Option<SupervisorConfig>,
    memo: Option<MemoCache>,
    /// Projects a unit point onto the memo key space (e.g. the dataset
    /// generator's quantized parameter values, so unit points that
    /// instantiate identical datasets share one cache entry). Identity
    /// when absent. Only ever called on the engine thread.
    memo_key: Option<MemoKeyFn>,
    gate: Option<std::sync::Arc<dyn BatchGate>>,
    quota_evals: Option<usize>,
    quota_wall: Option<std::time::Duration>,
}

impl Executor {
    /// A run with no journal, no progress reporting, and no supervision
    /// (legacy fail-fast behavior).
    ///
    /// # Panics
    ///
    /// Panics if `meta.iterations == 0`, `meta.batch_k == 0`, or
    /// `meta.workers == 0`.
    pub fn new(meta: RunMeta) -> Self {
        assert!(meta.iterations > 0, "need at least one iteration");
        assert!(meta.batch_k > 0, "batch must be positive");
        assert!(meta.workers > 0, "need at least one worker");
        Executor {
            meta,
            checkpoint_every: 25,
            journal: None,
            journal_has_prefix: false,
            resume: None,
            sink: Box::new(NullSink),
            supervision: None,
            memo: None,
            memo_key: None,
            gate: None,
            quota_evals: None,
            quota_wall: None,
        }
    }

    /// The run's metadata.
    pub fn meta(&self) -> &RunMeta {
        &self.meta
    }

    /// Journals every event to `writer`. If the run also resumes from a
    /// replay, pass `has_prefix = true` when `writer` appends to the very
    /// file being replayed (the prefix is already on disk) and `false`
    /// when it is a fresh file (the replayed prefix is rewritten so the
    /// new journal is self-contained).
    #[must_use]
    pub fn journal(mut self, writer: JournalWriter, has_prefix: bool) -> Self {
        self.journal = Some(writer);
        self.journal_has_prefix = has_prefix;
        self
    }

    /// Emits best-so-far checkpoints every `every` fresh evaluations
    /// (0 disables them).
    #[must_use]
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Streams progress to `sink`.
    #[must_use]
    pub fn sink(mut self, sink: Box<dyn ProgressSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Gates every batch dispatch through `gate` (fair scheduling and
    /// graceful stop; see [`BatchGate`]).
    #[must_use]
    pub fn gate(mut self, gate: std::sync::Arc<dyn BatchGate>) -> Self {
        self.gate = Some(gate);
        self
    }

    /// Caps the run: stop gracefully — best-so-far outcome, clean
    /// journal, [`RunOutcome::quota`] set — once `max_evals` observations
    /// exist or `wall_clock` has elapsed. Both are checked only at batch
    /// boundaries, so a capped run never tears a batch.
    ///
    /// `max_evals` counts *observations* (fresh evaluations, memo-cache
    /// hits, and journal-replayed points alike), which is what makes a
    /// capped run deterministic across crash-resume: the replayed prefix
    /// re-counts exactly as the live run counted it, and the quota fires
    /// at the identical boundary with the identical best-so-far. The
    /// wall clock, by contrast, restarts on resume — it bounds *this
    /// process's* effort and is deliberately not part of any determinism
    /// contract.
    #[must_use]
    pub fn quota(
        mut self,
        max_evals: Option<usize>,
        wall_clock: Option<std::time::Duration>,
    ) -> Self {
        self.quota_evals = max_evals;
        self.quota_wall = wall_clock;
        self
    }

    /// Runs every evaluation under a fault-tolerant
    /// [`Supervisor`] built from `cfg`
    /// (seeded with `meta.seed`); see the module docs. Without this the
    /// executor fails fast, exactly as before supervision existed.
    #[must_use]
    pub fn supervise(mut self, cfg: SupervisorConfig) -> Self {
        self.supervision = Some(cfg);
        self
    }

    /// Memoizes successful evaluations in a [`MemoCache`] bound to
    /// `context` (a [`crate::memo::fingerprint`] of whatever fixes the
    /// objective beyond the unit point — machine configuration and seed
    /// for the Datamime search). When the optimizer re-suggests a point
    /// whose canonical bits are already cached, the executor observes the
    /// memoized error without dispatching an evaluation and journals a
    /// `cache_hit` event carrying the source index, so a resumed run
    /// replays the hit bit-identically.
    ///
    /// Because every evaluation is a pure function of `(unit, context)`,
    /// memoization never changes an observed value — only how fast it
    /// arrives — so the run's outcome stays bit-for-bit identical with
    /// the cache on or off, across any worker count. Penalized (faulted)
    /// points are deliberately never memoized: they stay in the
    /// quarantine machinery.
    ///
    /// On resume the cache is rebuilt from the replayed prefix before any
    /// fresh evaluation runs, so hits keep working across restarts.
    #[must_use]
    pub fn memoize(mut self, context: u64) -> Self {
        self.memo = Some(MemoCache::new(context));
        self
    }

    /// Like [`memoize`](Self::memoize), but keys the cache on
    /// `key(unit)` instead of the raw unit point. The Datamime search
    /// passes the generator's denormalization here: parameter
    /// quantization (integer rounding, log scales) maps many unit points
    /// onto one dataset, and all of them share a single evaluation.
    ///
    /// `key` must be pure — called only on the engine thread, in
    /// observation order.
    #[must_use]
    pub fn memoize_keyed(mut self, context: u64, key: MemoKeyFn) -> Self {
        self.memo = Some(MemoCache::new(context));
        self.memo_key = Some(key);
        self
    }

    /// The memo key for `unit`: the projected parameter point when a key
    /// projection is installed, the unit point itself otherwise.
    fn memo_key_of(&self, unit: &[f64]) -> Vec<f64> {
        match &self.memo_key {
            Some(key) => key(unit),
            None => unit.to_vec(),
        }
    }

    /// Resumes from a replayed journal: journaled points are re-suggested
    /// from the optimizer (which, given the same seed, regenerates them
    /// bit-for-bit) and their journaled errors re-observed, so profiling
    /// never re-runs for them; evaluation picks up at the first
    /// un-journaled point. Journaled `fault` records re-observe their
    /// penalty (and re-drive quarantine/degradation) rather than
    /// re-running the failed evaluation, and a point whose journal tail
    /// holds only failed `attempt` records — a mid-retry kill — is
    /// penalized directly under supervision instead of being retried.
    ///
    /// # Errors
    ///
    /// Fails if the journal's header disagrees with this run's `RunMeta`
    /// on anything that shapes the search (label, seed, dims, iterations,
    /// batch_k, optimizer — `workers` may differ freely).
    pub fn resume(mut self, replay: Replay) -> Result<Self, ExecError> {
        let (h, m) = (&replay.meta, &self.meta);
        let mismatch =
            |what: &str, journal: &dyn std::fmt::Display, run: &dyn std::fmt::Display| {
                Err(ExecError::ResumeMismatch(format!(
                    "journal {what} is {journal} but this run uses {run}"
                )))
            };
        if h.label != m.label {
            return mismatch("label", &h.label, &m.label);
        }
        if h.seed != m.seed {
            return mismatch("seed", &h.seed, &m.seed);
        }
        if h.dims != m.dims {
            return mismatch("dims", &h.dims, &m.dims);
        }
        if h.iterations != m.iterations {
            return mismatch("iterations", &h.iterations, &m.iterations);
        }
        if h.batch_k != m.batch_k {
            return mismatch("batch_k", &h.batch_k, &m.batch_k);
        }
        if h.optimizer != m.optimizer {
            return mismatch("optimizer", &h.optimizer, &m.optimizer);
        }
        self.resume = Some(replay);
        Ok(self)
    }

    /// Runs sequentially on the calling thread (no `Sync` bound on the
    /// evaluation), ignoring `meta.workers`. This is the exact legacy
    /// Datamime loop when `batch_k = 1` and no supervision is attached.
    ///
    /// # Errors
    ///
    /// Fails only on journal I/O or a resume/journal mismatch.
    pub fn run_seq(
        mut self,
        optimizer: &mut dyn BlackBoxOptimizer,
        eval: &mut dyn FnMut(&[f64], &mut StageTimes, &CancelToken) -> f64,
    ) -> Result<RunOutcome, ExecError> {
        match self.supervision.clone() {
            Some(cfg) => {
                let sup = Supervisor::new(cfg, self.meta.seed);
                self.engine(optimizer, &mut |jobs, on_attempt| {
                    Ok(jobs
                        .iter()
                        .map(|(index, unit)| sup.evaluate(*index, unit, eval, on_attempt))
                        .collect())
                })
            }
            None => self.engine(optimizer, &mut |jobs, _on_attempt| {
                Ok(jobs
                    .iter()
                    .map(|(_, unit)| {
                        let mut stages = StageTimes::new();
                        let error = eval(unit, &mut stages, &CancelToken::new());
                        Evaluated {
                            error,
                            stages,
                            fault: None,
                            worker: None,
                        }
                    })
                    .collect())
            }),
        }
    }

    /// Runs on a pluggable [`Backend`] — the out-of-process broker, or
    /// anything else that evaluates batches in job order. Supervision
    /// config still shapes the engine-side fault machinery (quarantine,
    /// degradation, penalties for journal-pending points); the backend
    /// itself is responsible for per-point retries and deadlines and for
    /// returning penalty verdicts that match the supervisor's.
    ///
    /// # Errors
    ///
    /// Fails on journal I/O, a resume/journal mismatch, or a backend
    /// failure ([`ExecError::Backend`]).
    pub fn run_backend(
        mut self,
        optimizer: &mut dyn BlackBoxOptimizer,
        backend: &mut dyn Backend,
    ) -> Result<RunOutcome, ExecError> {
        self.engine(optimizer, &mut |jobs, on_attempt| {
            backend
                .evaluate_batch(jobs, on_attempt)
                .map_err(ExecError::Backend)
        })
    }

    /// Runs with `meta.workers` scoped worker threads draining a bounded
    /// work queue. Results are observed in batch order regardless of
    /// completion order, so the outcome is identical to
    /// [`run_seq`](Self::run_seq) for the same `(seed, batch_k)` — with
    /// or without supervision and injected faults.
    ///
    /// # Errors
    ///
    /// Fails only on journal I/O or a resume/journal mismatch.
    ///
    /// # Panics
    ///
    /// Re-raises any panic from `eval` when unsupervised (or when the
    /// supervisor's fail policy is
    /// [`Abort`](crate::supervisor::FailPolicy::Abort)).
    pub fn run(
        mut self,
        optimizer: &mut dyn BlackBoxOptimizer,
        eval: &(dyn Fn(&[f64], &mut StageTimes, &CancelToken) -> f64 + Sync),
    ) -> Result<RunOutcome, ExecError> {
        let workers = self.meta.workers;
        if workers == 1 {
            return self.run_seq(optimizer, &mut |unit, stages, token| {
                eval(unit, stages, token)
            });
        }
        let supervisor = self
            .supervision
            .clone()
            .map(|cfg| Supervisor::new(cfg, self.meta.seed));
        let supervisor = &supervisor;
        // Bounded job queue: the coordinator blocks rather than buffering
        // a whole oversized batch. Created outside the scope so worker
        // borrows outlive every spawned thread.
        let (job_tx, job_rx) = mpsc::sync_channel::<(usize, usize, Vec<f64>)>(2 * workers);
        let job_rx = Mutex::new(job_rx);
        enum WorkerMsg {
            Attempt(FailedAttempt),
            Done(usize, std::thread::Result<Evaluated>),
        }
        let (res_tx, res_rx) = mpsc::channel::<WorkerMsg>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let res_tx = res_tx.clone();
                let job_rx = &job_rx;
                scope.spawn(move || loop {
                    let job = job_rx.lock().expect("job queue poisoned").recv();
                    let Ok((slot, index, unit)) = job else { break };
                    // The outer catch keeps the pool alive so an Abort
                    // re-raise (or an unsupervised panic) propagates via
                    // the coordinator's resume_unwind, not a dead worker.
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || match supervisor {
                                Some(sup) => sup.evaluate(
                                    index,
                                    &unit,
                                    &mut |u, st, t| eval(u, st, t),
                                    &mut |a| {
                                        let _ = res_tx.send(WorkerMsg::Attempt(a));
                                    },
                                ),
                                None => {
                                    let mut stages = StageTimes::new();
                                    let error = eval(&unit, &mut stages, &CancelToken::new());
                                    Evaluated {
                                        error,
                                        stages,
                                        fault: None,
                                        worker: None,
                                    }
                                }
                            },
                        ));
                    if res_tx.send(WorkerMsg::Done(slot, outcome)).is_err() {
                        break;
                    }
                });
            }
            drop(res_tx); // workers hold the only senders now

            // `move` so `dispatch` owns `job_tx`: dropping it below hangs
            // up the job queue and lets the workers exit before the scope
            // joins them.
            let mut dispatch = move |jobs: &[(usize, Vec<f64>)],
                                     on_attempt: &mut dyn FnMut(FailedAttempt)|
                  -> Result<Vec<Evaluated>, ExecError> {
                for (slot, (index, unit)) in jobs.iter().enumerate() {
                    job_tx
                        .send((slot, *index, unit.clone()))
                        .expect("worker pool died before the batch was queued");
                }
                let mut slots: Vec<Option<Evaluated>> = (0..jobs.len()).map(|_| None).collect();
                let mut filled = 0;
                while filled < jobs.len() {
                    let msg = res_rx
                        .recv()
                        .expect("worker pool died before the batch finished");
                    match msg {
                        WorkerMsg::Attempt(a) => on_attempt(a),
                        WorkerMsg::Done(slot, Ok(verdict)) => {
                            slots[slot] = Some(verdict);
                            filled += 1;
                        }
                        WorkerMsg::Done(_, Err(panic)) => std::panic::resume_unwind(panic),
                    }
                }
                Ok(slots
                    .into_iter()
                    .map(|s| s.expect("every slot was filled"))
                    .collect())
            };
            let outcome = self.engine(optimizer, &mut dispatch);
            drop(dispatch);
            outcome
        })
    }

    /// The batch loop shared by the sequential and pooled paths;
    /// `dispatch` evaluates `(index, unit)` jobs and returns verdicts in
    /// the same order.
    ///
    /// All fault bookkeeping lives here, updated in observation order, so
    /// quarantine, degradation, and the outcome itself never depend on
    /// thread scheduling.
    fn engine(
        &mut self,
        optimizer: &mut dyn BlackBoxOptimizer,
        dispatch: &mut Dispatch<'_>,
    ) -> Result<RunOutcome, ExecError> {
        let iterations = self.meta.iterations;
        let mut telemetry = Telemetry::new();
        self.sink.on_start(&self.meta);

        let sup_cfg = self.supervision.clone();
        let (replayed_prefix, mut pending_faults) = match self.resume.take() {
            Some(mut r) => {
                r.evals.truncate(iterations);
                (r.evals, r.fault_attempts)
            }
            None => (Vec::new(), BTreeMap::new()),
        };
        if !replayed_prefix.is_empty() {
            self.sink.on_replay(replayed_prefix.len());
        }

        let mut history: Vec<EvalRecord> = Vec::with_capacity(iterations);
        let mut best: Option<(Vec<f64>, f64)> = None;
        let mut since_checkpoint = 0usize;
        // Fault state machine (supervised runs only); driven by fresh and
        // replayed records alike so resume stays deterministic.
        let mut effective_k = self.meta.batch_k;
        let mut consecutive_failures = 0u32;
        let mut quarantine: Vec<Vec<f64>> = Vec::new();
        // The wall-clock quota only decides *when to stop*, at a batch
        // boundary — it never feeds the optimizer or the journal.
        let quota_started = Instant::now();
        let mut quota: Option<QuotaCause> = None;

        while history.len() < iterations {
            // Quota checks sit at the batch boundary, after at least one
            // observation (so a capped run always has a best-so-far).
            // The eval-count check is deterministic across crash-resume;
            // the wall clock intentionally is not (see `Executor::quota`).
            if !history.is_empty() {
                if self.quota_evals.is_some_and(|q| history.len() >= q) {
                    quota = Some(QuotaCause::MaxEvals);
                    break;
                }
                if self
                    .quota_wall
                    .is_some_and(|d| quota_started.elapsed() >= d)
                {
                    quota = Some(QuotaCause::WallClock);
                    break;
                }
            }
            let done = history.len();
            let k = effective_k.min(iterations - done);
            // Stage timing feeds telemetry only, never the optimizer or
            // the journal.
            let suggest_started = Instant::now();
            let units = optimizer.suggest_batch(k);
            telemetry.record("suggest", suggest_started.elapsed());

            // Split the batch into the journaled prefix (re-observed, not
            // re-evaluated) and the fresh tail.
            let from_journal = replayed_prefix.len().saturating_sub(done).min(k);
            for (i, unit) in units.iter().enumerate().take(from_journal) {
                if replayed_prefix[done + i].unit != *unit {
                    return Err(ExecError::ResumeMismatch(format!(
                        "journaled point {} differs from the optimizer's regenerated \
                         suggestion; the journal came from a different search",
                        done + i
                    )));
                }
            }

            // Plan the fresh tail: quarantined or journal-pending points
            // are penalized without dispatch.
            let mut jobs: Vec<(usize, Vec<f64>)> = Vec::new();
            let mut slots: Vec<SlotPlan> = Vec::with_capacity(units.len());
            for (i, unit) in units.iter().enumerate() {
                let index = done + i;
                if i < from_journal {
                    slots.push(SlotPlan::Replayed);
                    continue;
                }
                if let Some(cfg) = sup_cfg.as_ref() {
                    if let Some(pending) = pending_faults.remove(&index) {
                        slots.push(SlotPlan::Synth(FaultInfo {
                            kind: pending.kind,
                            detail: format!(
                                "penalized from journaled retry attempts: {}",
                                pending.detail
                            ),
                            retries: pending.attempts.saturating_sub(1),
                        }));
                        continue;
                    }
                    if quarantine
                        .iter()
                        .any(|q| within_radius(q, unit, cfg.quarantine_radius))
                    {
                        slots.push(SlotPlan::Synth(FaultInfo {
                            kind: FailureKind::Quarantined,
                            detail: format!(
                                "point matches a quarantined failure within radius {}",
                                cfg.quarantine_radius
                            ),
                            retries: 0,
                        }));
                        continue;
                    }
                }
                if self.memo.is_some() {
                    let key = self.memo_key_of(unit);
                    if let Some(entry) = self.memo.as_ref().and_then(|m| m.lookup(&key)) {
                        slots.push(SlotPlan::Memo(*entry));
                        continue;
                    }
                }
                slots.push(SlotPlan::Fresh(jobs.len()));
                jobs.push((index, unit.clone()));
            }

            let results = if jobs.is_empty() {
                Vec::new()
            } else {
                // Admission control: a multi-tenant host can delay this
                // batch (fairness) or refuse it (drain/cancel). Everything
                // observed so far is already journaled, so a refusal here
                // leaves a cleanly resumable run behind.
                if let Some(gate) = &self.gate {
                    gate.enter().map_err(ExecError::Stopped)?;
                }
                // Failed attempts are journaled eagerly (before their
                // final verdict) so a kill mid-retry leaves evidence the
                // resume path can penalize from. The callback cannot
                // return an error, so journal failures are parked and
                // surfaced right after the batch.
                let mut journal_err: Option<JournalError> = None;
                let results = {
                    let journal = &mut self.journal;
                    let sink = &mut self.sink;
                    let telemetry = &mut telemetry;
                    let mut on_attempt = |a: FailedAttempt| {
                        telemetry.count_failed_attempt();
                        sink.on_attempt(&a);
                        if journal_err.is_none() {
                            if let Some(j) = journal.as_mut() {
                                if let Err(e) = j.attempt(&a) {
                                    journal_err = Some(e);
                                }
                            }
                        }
                    };
                    dispatch(&jobs, &mut on_attempt)
                };
                if let Some(gate) = &self.gate {
                    gate.leave();
                }
                if let Some(e) = journal_err {
                    return Err(e.into());
                }
                results?
            };

            for (i, unit) in units.into_iter().enumerate() {
                let index = done + i;
                let is_new = i >= from_journal;
                let rec = match &slots[i] {
                    SlotPlan::Replayed => {
                        telemetry.count_replayed();
                        let mut rec = replayed_prefix[index].clone();
                        rec.unit = unit;
                        rec
                    }
                    SlotPlan::Synth(fault) => EvalRecord {
                        index,
                        unit,
                        error: sup_cfg
                            .as_ref()
                            .expect("synthesized slots only exist under supervision")
                            .penalty,
                        stage_ms: Vec::new(),
                        fault: Some(fault.clone()),
                        cached: None,
                        worker: None,
                    },
                    SlotPlan::Memo(entry) => {
                        telemetry.count_cache_hit();
                        EvalRecord {
                            index,
                            unit,
                            error: entry.error,
                            stage_ms: Vec::new(),
                            fault: None,
                            cached: Some(entry.source),
                            worker: entry.worker,
                        }
                    }
                    SlotPlan::Fresh(j) => {
                        let verdict = &results[*j];
                        telemetry.absorb(&verdict.stages);
                        telemetry.count_evaluated();
                        EvalRecord {
                            index,
                            unit,
                            error: verdict.error,
                            stage_ms: verdict.stages.to_millis(),
                            fault: verdict.fault.clone(),
                            cached: None,
                            worker: verdict.worker,
                        }
                    }
                };

                // Memoize every successful first-time value — fresh or
                // replayed — on the observation path, so the cache's
                // contents never depend on thread scheduling and a
                // resumed run rebuilds it from its journaled prefix.
                if rec.fault.is_none() && rec.cached.is_none() && self.memo.is_some() {
                    let key = self.memo_key_of(&rec.unit);
                    if let Some(memo) = self.memo.as_mut() {
                        memo.insert(&key, rec.error, rec.index, rec.worker);
                    }
                }

                // Fault bookkeeping, in observation order.
                if let Some(cfg) = sup_cfg.as_ref() {
                    match &rec.fault {
                        Some(f) if f.kind == FailureKind::Quarantined => {
                            telemetry.count_quarantine_hit();
                        }
                        Some(f) => {
                            telemetry.count_fault(f.kind);
                            if !quarantine
                                .iter()
                                .any(|q| within_radius(q, &rec.unit, cfg.quarantine_radius))
                            {
                                quarantine.push(rec.unit.clone());
                            }
                            consecutive_failures += 1;
                            if cfg.degrade_after > 0
                                && consecutive_failures >= cfg.degrade_after
                                && effective_k > 1
                            {
                                let from = effective_k;
                                effective_k = (effective_k / 2).max(1);
                                consecutive_failures = 0;
                                telemetry.count_degradation();
                                self.sink.on_degrade(from, effective_k);
                            }
                        }
                        None => consecutive_failures = 0,
                    }
                }

                optimizer.observe(rec.unit.clone(), rec.error);
                if best.as_ref().is_none_or(|(_, be)| rec.error < *be) {
                    best = Some((rec.unit.clone(), rec.error));
                }
                if let Some(journal) = &mut self.journal {
                    if is_new || !self.journal_has_prefix {
                        if rec.fault.is_some() {
                            journal.fault(&rec)?;
                        } else if rec.cached.is_some() {
                            journal.cache_hit(&rec)?;
                        } else {
                            journal.eval(&rec)?;
                        }
                    }
                }
                if is_new {
                    let (_, best_error) = best.as_ref().expect("best was just set");
                    self.sink.on_eval(index, rec.error, *best_error);
                    if let Some(fault) = &rec.fault {
                        self.sink.on_fault(index, fault);
                    }
                    if let Some(source) = rec.cached {
                        self.sink.on_cache_hit(index, source);
                    }
                    since_checkpoint += 1;
                    if self.checkpoint_every > 0 && since_checkpoint >= self.checkpoint_every {
                        since_checkpoint = 0;
                        if let Some(journal) = &mut self.journal {
                            let (bu, be) = best.as_ref().expect("best was just set");
                            journal.checkpoint(index + 1, *be, bu)?;
                        }
                    }
                }
                history.push(rec);
            }
        }

        let (best_unit, best_error) = best.expect("at least one iteration ran");
        if let Some(journal) = &mut self.journal {
            // A quota stop still writes `done`: the journal records the
            // observations that exist plus the best over them, which is
            // exactly what a re-run under the same quota reproduces.
            journal.done(history.len(), best_error, &best_unit)?;
        }
        self.sink.on_finish(best_error, &telemetry);
        let replayed = replayed_prefix.len();
        Ok(RunOutcome {
            best_unit,
            best_error,
            history,
            telemetry,
            replayed,
            quota,
        })
    }
}

/// L∞ proximity test for the quarantine set.
fn within_radius(a: &[f64], b: &[f64], radius: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= radius)
}
