//! The parallel batched search executor.
//!
//! [`Executor`] drains batch-`k` suggestions from any
//! [`BlackBoxOptimizer`] through a bounded work queue serviced by a pool
//! of scoped worker threads, feeds results back to the optimizer in
//! **batch order** (so a run's outcome is a deterministic function of
//! `(seed, batch_k)` — never of thread scheduling), journals every
//! evaluation, and aggregates telemetry.
//!
//! With `batch_k = 1` and one worker the executor degenerates to exactly
//! the paper's sequential suggest → evaluate → observe loop, which is how
//! `datamime::search::search()` runs on top of it without changing any
//! result.

use crate::journal::{JournalError, JournalWriter, Replay};
use crate::telemetry::{NullSink, ProgressSink, StageTimes, Telemetry};
use datamime_bayesopt::BlackBoxOptimizer;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// Identity and shape of one run; doubles as the journal header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Human-readable run label (the Datamime search uses the generator
    /// name).
    pub label: String,
    /// Optimizer seed.
    pub seed: u64,
    /// Search-space dimensionality.
    pub dims: usize,
    /// Total number of points to evaluate.
    pub iterations: usize,
    /// Suggestions drawn per optimizer batch.
    pub batch_k: usize,
    /// Worker threads evaluating a batch (does not affect results).
    pub workers: usize,
    /// Optimizer family tag (e.g. `"bayesian"`, `"random"`), used to
    /// refuse resuming a journal under a different optimizer.
    pub optimizer: String,
}

/// One evaluated point.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Zero-based evaluation index (observation order).
    pub index: usize,
    /// Unit-hypercube parameters.
    pub unit: Vec<f64>,
    /// Objective value.
    pub error: f64,
    /// Per-stage wall-clock milliseconds (empty for replayed points whose
    /// journal carried none).
    pub stage_ms: Vec<(String, f64)>,
}

/// The outcome of an executor run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Best (lowest-error) unit parameters found.
    pub best_unit: Vec<f64>,
    /// The best error.
    pub best_error: f64,
    /// Every observation, in order (replayed ones included).
    pub history: Vec<EvalRecord>,
    /// Aggregated timers and counters.
    pub telemetry: Telemetry,
    /// How many leading points came from a journal instead of evaluation.
    pub replayed: usize,
}

/// An executor failure.
#[derive(Debug)]
pub enum ExecError {
    /// Reading or writing the journal failed.
    Journal(JournalError),
    /// The journal being resumed does not match this run's configuration.
    ResumeMismatch(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Journal(e) => write!(f, "{e}"),
            ExecError::ResumeMismatch(why) => write!(f, "cannot resume: {why}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<JournalError> for ExecError {
    fn from(e: JournalError) -> Self {
        ExecError::Journal(e)
    }
}

/// Evaluates a slice of units, returning `(error, stage times)` per unit
/// in the same order — the engine's pluggable evaluation backend.
type Dispatch<'a> = dyn FnMut(&[Vec<f64>]) -> Vec<(f64, StageTimes)> + 'a;

/// Builder-style run harness; see the module docs.
pub struct Executor {
    meta: RunMeta,
    checkpoint_every: usize,
    journal: Option<JournalWriter>,
    /// Whether the journal file already contains the replayed prefix (an
    /// appended resume) or needs it rewritten (a fresh file).
    journal_has_prefix: bool,
    resume: Option<Replay>,
    sink: Box<dyn ProgressSink>,
}

impl Executor {
    /// A run with no journal and no progress reporting.
    ///
    /// # Panics
    ///
    /// Panics if `meta.iterations == 0`, `meta.batch_k == 0`, or
    /// `meta.workers == 0`.
    pub fn new(meta: RunMeta) -> Self {
        assert!(meta.iterations > 0, "need at least one iteration");
        assert!(meta.batch_k > 0, "batch must be positive");
        assert!(meta.workers > 0, "need at least one worker");
        Executor {
            meta,
            checkpoint_every: 25,
            journal: None,
            journal_has_prefix: false,
            resume: None,
            sink: Box::new(NullSink),
        }
    }

    /// The run's metadata.
    pub fn meta(&self) -> &RunMeta {
        &self.meta
    }

    /// Journals every event to `writer`. If the run also resumes from a
    /// replay, pass `has_prefix = true` when `writer` appends to the very
    /// file being replayed (the prefix is already on disk) and `false`
    /// when it is a fresh file (the replayed prefix is rewritten so the
    /// new journal is self-contained).
    #[must_use]
    pub fn journal(mut self, writer: JournalWriter, has_prefix: bool) -> Self {
        self.journal = Some(writer);
        self.journal_has_prefix = has_prefix;
        self
    }

    /// Emits best-so-far checkpoints every `every` fresh evaluations
    /// (0 disables them).
    #[must_use]
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Streams progress to `sink`.
    #[must_use]
    pub fn sink(mut self, sink: Box<dyn ProgressSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Resumes from a replayed journal: journaled points are re-suggested
    /// from the optimizer (which, given the same seed, regenerates them
    /// bit-for-bit) and their journaled errors re-observed, so profiling
    /// never re-runs for them; evaluation picks up at the first
    /// un-journaled point.
    ///
    /// # Errors
    ///
    /// Fails if the journal's header disagrees with this run's `RunMeta`
    /// on anything that shapes the search (label, seed, dims, iterations,
    /// batch_k, optimizer — `workers` may differ freely).
    pub fn resume(mut self, replay: Replay) -> Result<Self, ExecError> {
        let (h, m) = (&replay.meta, &self.meta);
        let mismatch =
            |what: &str, journal: &dyn std::fmt::Display, run: &dyn std::fmt::Display| {
                Err(ExecError::ResumeMismatch(format!(
                    "journal {what} is {journal} but this run uses {run}"
                )))
            };
        if h.label != m.label {
            return mismatch("label", &h.label, &m.label);
        }
        if h.seed != m.seed {
            return mismatch("seed", &h.seed, &m.seed);
        }
        if h.dims != m.dims {
            return mismatch("dims", &h.dims, &m.dims);
        }
        if h.iterations != m.iterations {
            return mismatch("iterations", &h.iterations, &m.iterations);
        }
        if h.batch_k != m.batch_k {
            return mismatch("batch_k", &h.batch_k, &m.batch_k);
        }
        if h.optimizer != m.optimizer {
            return mismatch("optimizer", &h.optimizer, &m.optimizer);
        }
        self.resume = Some(replay);
        Ok(self)
    }

    /// Runs sequentially on the calling thread (no `Sync` bound on the
    /// evaluation), ignoring `meta.workers`. This is the exact legacy
    /// Datamime loop when `batch_k = 1`.
    ///
    /// # Errors
    ///
    /// Fails only on journal I/O or a resume/journal mismatch.
    pub fn run_seq(
        mut self,
        optimizer: &mut dyn BlackBoxOptimizer,
        eval: &mut dyn FnMut(&[f64], &mut StageTimes) -> f64,
    ) -> Result<RunOutcome, ExecError> {
        self.engine(optimizer, &mut |units| {
            units
                .iter()
                .map(|unit| {
                    let mut stages = StageTimes::new();
                    let error = eval(unit, &mut stages);
                    (error, stages)
                })
                .collect()
        })
    }

    /// Runs with `meta.workers` scoped worker threads draining a bounded
    /// work queue. Results are observed in batch order regardless of
    /// completion order, so the outcome is identical to
    /// [`run_seq`](Self::run_seq) for the same `(seed, batch_k)`.
    ///
    /// # Errors
    ///
    /// Fails only on journal I/O or a resume/journal mismatch.
    ///
    /// # Panics
    ///
    /// Re-raises any panic from `eval`.
    pub fn run(
        mut self,
        optimizer: &mut dyn BlackBoxOptimizer,
        eval: &(dyn Fn(&[f64], &mut StageTimes) -> f64 + Sync),
    ) -> Result<RunOutcome, ExecError> {
        let workers = self.meta.workers;
        if workers == 1 {
            return self.run_seq(optimizer, &mut |unit, stages| eval(unit, stages));
        }
        // Bounded job queue: the coordinator blocks rather than buffering
        // a whole oversized batch. Created outside the scope so worker
        // borrows outlive every spawned thread.
        let (job_tx, job_rx) = mpsc::sync_channel::<(usize, Vec<f64>)>(2 * workers);
        let job_rx = Mutex::new(job_rx);
        type EvalResult = std::thread::Result<(f64, StageTimes)>;
        let (res_tx, res_rx) = mpsc::channel::<(usize, EvalResult)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let res_tx = res_tx.clone();
                let job_rx = &job_rx;
                scope.spawn(move || loop {
                    let job = job_rx.lock().expect("job queue poisoned").recv();
                    let Ok((slot, unit)) = job else { break };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut stages = StageTimes::new();
                        let error = eval(&unit, &mut stages);
                        (error, stages)
                    }));
                    if res_tx.send((slot, outcome)).is_err() {
                        break;
                    }
                });
            }
            drop(res_tx); // workers hold the only senders now

            // `move` so `dispatch` owns `job_tx`: dropping it below hangs
            // up the job queue and lets the workers exit before the scope
            // joins them.
            let mut dispatch = move |units: &[Vec<f64>]| -> Vec<(f64, StageTimes)> {
                for (slot, unit) in units.iter().enumerate() {
                    job_tx
                        .send((slot, unit.clone()))
                        .expect("worker pool died before the batch was queued");
                }
                let mut slots: Vec<Option<(f64, StageTimes)>> = vec![None; units.len()];
                for _ in 0..units.len() {
                    let (slot, outcome) = res_rx
                        .recv()
                        .expect("worker pool died before the batch finished");
                    match outcome {
                        Ok(done) => slots[slot] = Some(done),
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
                slots
                    .into_iter()
                    .map(|s| s.expect("every slot was filled"))
                    .collect()
            };
            let outcome = self.engine(optimizer, &mut dispatch);
            drop(dispatch);
            outcome
        })
    }

    /// The batch loop shared by the sequential and pooled paths;
    /// `dispatch` evaluates a slice of units and returns results in the
    /// same order.
    fn engine(
        &mut self,
        optimizer: &mut dyn BlackBoxOptimizer,
        dispatch: &mut Dispatch<'_>,
    ) -> Result<RunOutcome, ExecError> {
        let iterations = self.meta.iterations;
        let mut telemetry = Telemetry::new();
        self.sink.on_start(&self.meta);

        let replayed_prefix: Vec<EvalRecord> = self
            .resume
            .take()
            .map(|mut r| {
                r.evals.truncate(iterations);
                r.evals
            })
            .unwrap_or_default();
        if !replayed_prefix.is_empty() {
            self.sink.on_replay(replayed_prefix.len());
        }

        let mut history: Vec<EvalRecord> = Vec::with_capacity(iterations);
        let mut best: Option<(Vec<f64>, f64)> = None;
        let mut since_checkpoint = 0usize;
        while history.len() < iterations {
            let done = history.len();
            let k = self.meta.batch_k.min(iterations - done);
            let suggest_started = Instant::now();
            let units = optimizer.suggest_batch(k);
            telemetry.record("suggest", suggest_started.elapsed());

            // Split the batch into the journaled prefix (re-observed, not
            // re-evaluated) and the fresh tail.
            let from_journal = replayed_prefix.len().saturating_sub(done).min(k);
            for (i, unit) in units.iter().enumerate().take(from_journal) {
                if replayed_prefix[done + i].unit != *unit {
                    return Err(ExecError::ResumeMismatch(format!(
                        "journaled point {} differs from the optimizer's regenerated \
                         suggestion; the journal came from a different search",
                        done + i
                    )));
                }
            }
            let results = if from_journal < k {
                dispatch(&units[from_journal..])
            } else {
                Vec::new()
            };

            for (i, unit) in units.into_iter().enumerate() {
                let index = done + i;
                let is_new = i >= from_journal;
                let rec = if is_new {
                    let (error, stages) = &results[i - from_journal];
                    telemetry.absorb(stages);
                    telemetry.count_evaluated();
                    EvalRecord {
                        index,
                        unit,
                        error: *error,
                        stage_ms: stages.to_millis(),
                    }
                } else {
                    telemetry.count_replayed();
                    let mut rec = replayed_prefix[index].clone();
                    rec.unit = unit;
                    rec
                };
                optimizer.observe(rec.unit.clone(), rec.error);
                if best.as_ref().is_none_or(|(_, be)| rec.error < *be) {
                    best = Some((rec.unit.clone(), rec.error));
                }
                if let Some(journal) = &mut self.journal {
                    if is_new || !self.journal_has_prefix {
                        journal.eval(&rec)?;
                    }
                }
                if is_new {
                    let (_, best_error) = best.as_ref().expect("best was just set");
                    self.sink.on_eval(index, rec.error, *best_error);
                    since_checkpoint += 1;
                    if self.checkpoint_every > 0 && since_checkpoint >= self.checkpoint_every {
                        since_checkpoint = 0;
                        if let Some(journal) = &mut self.journal {
                            let (bu, be) = best.as_ref().expect("best was just set");
                            journal.checkpoint(index + 1, *be, bu)?;
                        }
                    }
                }
                history.push(rec);
            }
        }

        let (best_unit, best_error) = best.expect("at least one iteration ran");
        if let Some(journal) = &mut self.journal {
            journal.done(history.len(), best_error, &best_unit)?;
        }
        self.sink.on_finish(best_error, &telemetry);
        let replayed = replayed_prefix.len();
        Ok(RunOutcome {
            best_unit,
            best_error,
            history,
            telemetry,
            replayed,
        })
    }
}
