//! Deterministic disk-fault injection for the durability plane.
//!
//! A [`DiskFaultPlan`] is pure data, exactly like the evaluation-side
//! [`crate::faultinject::FaultPlan`]: it names *which append operation*
//! on *which durability surface* must misbehave, and how. A
//! [`DiskFaultInjector`] wraps a plan with per-target operation counters;
//! writers on the durability path (the serve daemon's manifest WAL and
//! checkpoints, the run journal, the GC directory sweep) consult it once
//! per logical operation, so the same plan produces the same failure at
//! the same boundary on every run.
//!
//! Fault kinds model the disk failures that matter for a write-ahead
//! log:
//!
//! - **no-space** (`enospc`) — the append fails up front with the OS
//!   `ENOSPC` error and nothing reaches the file;
//! - **short write** (`short`) — half the record reaches the file before
//!   the error, leaving exactly the torn tail the replay path repairs;
//! - **fsync failure** (`syncfail`) — the bytes are written but
//!   durability is never acknowledged, so the caller must treat the
//!   record as lost even though it may survive;
//! - **crash** (`crash`) — the process aborts *at* the boundary
//!   (`std::process::abort`, no unwinding, no destructors), which is how
//!   the crash-matrix harness SIGKILLs a daemon at every WAL append,
//!   rotation, checkpoint, and GC edge without racing a signal.
//!
//! The module is always compiled (an absent injector costs one `Option`
//! check per append); the cargo feature `faultinject` only gates the
//! long-running torture tests that use it.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// Environment variable carrying a [`DiskFaultPlan`] spec into the
/// `datamime-served` binary (tests spawn the daemon with it set).
pub const DISK_FAULT_ENV: &str = "DATAMIME_DISK_FAULT";

/// The raw OS error code injected for no-space faults (`ENOSPC`).
pub const ENOSPC_CODE: i32 = 28;

/// What an injected disk fault does to the targeted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// The write fails with `ENOSPC` before any byte reaches the file.
    NoSpace,
    /// Half the record is written, then the operation errors — a torn
    /// final line, as a real short write or mid-write crash leaves.
    ShortWrite,
    /// The bytes are written but the flush/fsync reports failure, so
    /// durability was never acknowledged.
    SyncFail,
    /// The process aborts at the boundary (before the write).
    Crash,
}

/// Which durability surface an injected fault targets. Each target has
/// its own operation counter inside the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskTarget {
    /// Manifest WAL appends (one lifecycle event each).
    Manifest,
    /// Manifest checkpoint writes (one per checkpoint attempt).
    Checkpoint,
    /// Run-journal appends (one event line each).
    Journal,
    /// GC directory removals (one per job directory).
    GcDir,
}

impl DiskTarget {
    fn index(self) -> usize {
        match self {
            DiskTarget::Manifest => 0,
            DiskTarget::Checkpoint => 1,
            DiskTarget::Journal => 2,
            DiskTarget::GcDir => 3,
        }
    }

    fn name(self) -> &'static str {
        match self {
            DiskTarget::Manifest => "manifest",
            DiskTarget::Checkpoint => "checkpoint",
            DiskTarget::Journal => "journal",
            DiskTarget::GcDir => "gcdir",
        }
    }
}

/// One planned disk fault: operation number `nth` (zero-based, counted
/// per target) fails with `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedDiskFault {
    /// The durability surface the fault hits.
    pub target: DiskTarget,
    /// Zero-based operation number on that surface.
    pub nth: u64,
    /// What happens.
    pub kind: DiskFaultKind,
}

/// A deterministic schedule of disk faults. Plain data — cloneable,
/// comparable, string-serializable, independent of wall clock and
/// scheduling (given a deterministic sequence of operations per target,
/// which single-writer logs guarantee).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    faults: Vec<PlannedDiskFault>,
}

impl DiskFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        DiskFaultPlan::default()
    }

    /// Adds a fault: operation `nth` on `target` fails with `kind`.
    #[must_use]
    pub fn fail(mut self, target: DiskTarget, nth: u64, kind: DiskFaultKind) -> Self {
        self.faults.push(PlannedDiskFault { target, nth, kind });
        self
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned faults, in insertion order.
    pub fn faults(&self) -> &[PlannedDiskFault] {
        &self.faults
    }

    /// The fault scheduled for operation `nth` on `target`, if any.
    /// First match in insertion order wins.
    pub fn lookup(&self, target: DiskTarget, nth: u64) -> Option<DiskFaultKind> {
        self.faults
            .iter()
            .find(|f| f.target == target && f.nth == nth)
            .map(|f| f.kind)
    }

    /// Serializes the plan to its compact spec form: faults joined by
    /// `;`, each `target:nth:kind` with targets `manifest`, `checkpoint`,
    /// `journal`, `gcdir` and kinds `enospc`, `short`, `syncfail`,
    /// `crash` — the format the daemon accepts via `--disk-fault` or the
    /// [`DISK_FAULT_ENV`] environment variable.
    pub fn to_spec(&self) -> String {
        let mut out = String::new();
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(f.target.name());
            out.push(':');
            out.push_str(&f.nth.to_string());
            out.push(':');
            out.push_str(match f.kind {
                DiskFaultKind::NoSpace => "enospc",
                DiskFaultKind::ShortWrite => "short",
                DiskFaultKind::SyncFail => "syncfail",
                DiskFaultKind::Crash => "crash",
            });
        }
        out
    }

    /// Parses a spec produced by [`to_spec`](Self::to_spec) (an empty
    /// string is the empty plan).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed fault entry.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = DiskFaultPlan::new();
        for part in spec.split(';').filter(|p| !p.is_empty()) {
            let mut it = part.split(':');
            let (Some(target_s), Some(nth_s), Some(kind_s), None) =
                (it.next(), it.next(), it.next(), it.next())
            else {
                return Err(format!("disk fault `{part}`: expected target:nth:kind"));
            };
            let target = match target_s {
                "manifest" => DiskTarget::Manifest,
                "checkpoint" => DiskTarget::Checkpoint,
                "journal" => DiskTarget::Journal,
                "gcdir" => DiskTarget::GcDir,
                other => return Err(format!("disk fault `{part}`: unknown target `{other}`")),
            };
            let nth: u64 = nth_s
                .parse()
                .map_err(|e| format!("disk fault `{part}`: bad operation number: {e}"))?;
            let kind = match kind_s {
                "enospc" => DiskFaultKind::NoSpace,
                "short" => DiskFaultKind::ShortWrite,
                "syncfail" => DiskFaultKind::SyncFail,
                "crash" => DiskFaultKind::Crash,
                other => return Err(format!("disk fault `{part}`: unknown kind `{other}`")),
            };
            plan.faults.push(PlannedDiskFault { target, nth, kind });
        }
        Ok(plan)
    }
}

/// The per-target counting state behind a [`DiskFaultInjector`].
#[derive(Debug)]
struct InjectorState {
    plan: DiskFaultPlan,
    /// Operations seen so far per [`DiskTarget::index`].
    counts: [u64; 4],
}

/// A [`DiskFaultPlan`] armed with per-target operation counters, shared
/// (cheaply cloneable) across every writer of one daemon or run.
///
/// Each call to [`next`](DiskFaultInjector::next) consumes one operation
/// number on the given target. [`DiskFaultKind::Crash`] faults abort the
/// process *inside* `next`, so every instrumented boundary is a crash
/// point without any caller cooperation — which is why in-process tests
/// must only use crash faults against an out-of-process daemon.
#[derive(Debug, Clone)]
pub struct DiskFaultInjector {
    inner: Arc<Mutex<InjectorState>>,
}

impl DiskFaultInjector {
    /// Arms `plan` with zeroed counters.
    pub fn new(plan: DiskFaultPlan) -> Self {
        DiskFaultInjector {
            inner: Arc::new(Mutex::new(InjectorState {
                plan,
                counts: [0; 4],
            })),
        }
    }

    /// Builds an injector from the [`DISK_FAULT_ENV`] environment
    /// variable, if set (`None` when absent or empty).
    ///
    /// # Errors
    ///
    /// Fails on a malformed spec, naming the offending entry.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(DISK_FAULT_ENV) {
            Ok(spec) if !spec.trim().is_empty() => Ok(Some(DiskFaultInjector::new(
                DiskFaultPlan::from_spec(spec.trim())?,
            ))),
            _ => Ok(None),
        }
    }

    /// Counts one operation on `target` and returns the fault scheduled
    /// for it, if any. A scheduled [`DiskFaultKind::Crash`] aborts the
    /// process here and never returns.
    pub fn next(&self, target: DiskTarget) -> Option<DiskFaultKind> {
        let mut state = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let nth = state.counts[target.index()];
        state.counts[target.index()] += 1;
        let fault = state.plan.lookup(target, nth);
        if fault == Some(DiskFaultKind::Crash) {
            // Abort, not exit: no unwinding, no atexit hooks, no flushes
            // — indistinguishable from SIGKILL at this exact boundary.
            std::process::abort();
        }
        fault
    }

    /// Operations counted so far on `target` (tests and diagnostics).
    pub fn count(&self, target: DiskTarget) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .counts[target.index()]
    }
}

/// The injected `ENOSPC` I/O error.
pub fn no_space_error() -> io::Error {
    io::Error::from_raw_os_error(ENOSPC_CODE)
}

/// Whether `e` is a no-space condition (real or injected) — the error
/// class that flips the serve daemon into draining read-only mode.
pub fn is_no_space(e: &io::Error) -> bool {
    e.raw_os_error() == Some(ENOSPC_CODE)
}

impl DiskFaultKind {
    /// Applies this fault to an append of `bytes` through `w`, returning
    /// the error the real failure would produce. [`DiskFaultKind::ShortWrite`]
    /// writes (and flushes) the first half of `bytes` first, so the file
    /// is left with exactly the torn tail the repair path must handle;
    /// [`DiskFaultKind::SyncFail`] writes everything but reports that
    /// durability was not achieved.
    pub fn corrupt_append<W: Write>(self, w: &mut W, bytes: &[u8]) -> io::Error {
        match self {
            DiskFaultKind::NoSpace => no_space_error(),
            DiskFaultKind::ShortWrite => {
                // audit:allow(swallowed-result): fault injection deliberately tears this write — the error it returns is the product
                let _ = w.write_all(&bytes[..bytes.len() / 2]);
                let _ = w.flush();
                io::Error::new(io::ErrorKind::WriteZero, "injected short write")
            }
            DiskFaultKind::SyncFail => {
                // audit:allow(swallowed-result): fault injection deliberately tears this write — the error it returns is the product
                let _ = w.write_all(bytes);
                let _ = w.flush();
                io::Error::other("injected fsync failure")
            }
            // Crash faults abort inside `DiskFaultInjector::next`; a
            // direct call is defense in depth, not a reachable path.
            DiskFaultKind::Crash => std::process::abort(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_every_target_and_kind() {
        let plan = DiskFaultPlan::new()
            .fail(DiskTarget::Manifest, 3, DiskFaultKind::NoSpace)
            .fail(DiskTarget::Checkpoint, 0, DiskFaultKind::Crash)
            .fail(DiskTarget::Journal, 7, DiskFaultKind::ShortWrite)
            .fail(DiskTarget::GcDir, 1, DiskFaultKind::SyncFail);
        let spec = plan.to_spec();
        assert_eq!(
            spec,
            "manifest:3:enospc;checkpoint:0:crash;journal:7:short;gcdir:1:syncfail"
        );
        assert_eq!(DiskFaultPlan::from_spec(&spec).unwrap(), plan);
        assert_eq!(DiskFaultPlan::from_spec("").unwrap(), DiskFaultPlan::new());
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in [
            "manifest",
            "manifest:x:enospc",
            "manifest:1:frob",
            "floppy:1:enospc",
            "manifest:1:enospc:extra",
        ] {
            let err = DiskFaultPlan::from_spec(bad).unwrap_err();
            assert!(err.contains("disk fault `"), "{bad}: {err}");
        }
    }

    #[test]
    fn injector_counts_operations_per_target() {
        let plan = DiskFaultPlan::new().fail(DiskTarget::Manifest, 2, DiskFaultKind::NoSpace);
        let inj = DiskFaultInjector::new(plan);
        assert_eq!(inj.next(DiskTarget::Manifest), None); // op 0
        assert_eq!(inj.next(DiskTarget::Journal), None); // separate counter
        assert_eq!(inj.next(DiskTarget::Manifest), None); // op 1
        assert_eq!(inj.next(DiskTarget::Manifest), Some(DiskFaultKind::NoSpace)); // op 2
        assert_eq!(inj.next(DiskTarget::Manifest), None); // op 3
        assert_eq!(inj.count(DiskTarget::Manifest), 4);
        assert_eq!(inj.count(DiskTarget::Journal), 1);
        assert_eq!(inj.count(DiskTarget::GcDir), 0);
    }

    #[test]
    fn clones_share_one_counter() {
        let inj = DiskFaultInjector::new(DiskFaultPlan::new());
        let other = inj.clone();
        other.next(DiskTarget::Journal);
        assert_eq!(inj.count(DiskTarget::Journal), 1);
    }

    #[test]
    fn no_space_error_is_classified() {
        assert!(is_no_space(&no_space_error()));
        assert!(!is_no_space(&io::Error::other("boom")));
    }

    #[test]
    fn short_write_leaves_a_torn_half() {
        let mut buf: Vec<u8> = Vec::new();
        let err = DiskFaultKind::ShortWrite.corrupt_append(&mut buf, b"0123456789");
        assert_eq!(buf, b"01234");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn sync_fail_writes_everything_but_errors() {
        let mut buf: Vec<u8> = Vec::new();
        let err = DiskFaultKind::SyncFail.corrupt_append(&mut buf, b"abc");
        assert_eq!(buf, b"abc");
        assert!(err.to_string().contains("fsync"));
    }

    #[test]
    fn no_space_writes_nothing() {
        let mut buf: Vec<u8> = Vec::new();
        let err = DiskFaultKind::NoSpace.corrupt_append(&mut buf, b"abc");
        assert!(buf.is_empty());
        assert!(is_no_space(&err));
    }

    #[test]
    fn from_env_absent_is_none() {
        // The test environment never sets the variable; a set-and-unset
        // dance would race other tests in this process.
        assert!(DiskFaultInjector::from_env().unwrap().is_none());
    }
}
