//! Run telemetry: per-stage wall-clock timers, evaluation counters, and a
//! pluggable progress sink.
//!
//! The executor times its own `suggest` stage; evaluation callbacks
//! record their internal stages (the Datamime search records
//! `instantiate` / `profile` / `error`) into a per-evaluation
//! [`StageTimes`], which the executor folds into the run-wide
//! [`Telemetry`].

use crate::executor::RunMeta;
use crate::supervisor::{FailedAttempt, FailureKind, FaultInfo};
use std::time::{Duration, Instant};

/// Wall-clock time of each named stage of one evaluation, in the order
/// the stages were recorded.
#[derive(Debug, Clone, Default)]
pub struct StageTimes {
    entries: Vec<(&'static str, Duration)>,
}

impl StageTimes {
    /// An empty record.
    pub fn new() -> Self {
        StageTimes::default()
    }

    /// Records that `stage` took `elapsed` (accumulates on repeats).
    pub fn record(&mut self, stage: &'static str, elapsed: Duration) {
        if let Some((_, total)) = self.entries.iter_mut().find(|(name, _)| *name == stage) {
            *total += elapsed;
        } else {
            self.entries.push((stage, elapsed));
        }
    }

    /// Runs `f`, recording its wall-clock time under `stage`.
    pub fn time<T>(&mut self, stage: &'static str, f: impl FnOnce() -> T) -> T {
        let started = Instant::now();
        let out = f();
        self.record(stage, started.elapsed());
        out
    }

    /// The recorded `(stage, duration)` pairs.
    pub fn entries(&self) -> &[(&'static str, Duration)] {
        &self.entries
    }

    /// The recorded stages as `(name, milliseconds)` pairs (the journal's
    /// `stage_ms` representation).
    pub fn to_millis(&self) -> Vec<(String, f64)> {
        self.entries
            .iter()
            .map(|(name, d)| ((*name).to_string(), d.as_secs_f64() * 1e3))
            .collect()
    }
}

/// Aggregated counters and timers for a whole run.
#[derive(Debug, Clone)]
pub struct Telemetry {
    stages: Vec<(String, Duration, u64)>,
    evaluated: usize,
    replayed: usize,
    cache_hits: usize,
    faults: Vec<(FailureKind, usize)>,
    failed_attempts: usize,
    quarantine_hits: usize,
    degradations: usize,
    started: Instant,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// Starts the run-wide wall clock.
    pub fn new() -> Self {
        Telemetry {
            stages: Vec::new(),
            evaluated: 0,
            replayed: 0,
            cache_hits: 0,
            faults: Vec::new(),
            failed_attempts: 0,
            quarantine_hits: 0,
            degradations: 0,
            started: Instant::now(),
        }
    }

    /// Adds `elapsed` to `stage`'s total.
    pub fn record(&mut self, stage: &str, elapsed: Duration) {
        if let Some((_, total, count)) = self.stages.iter_mut().find(|(name, _, _)| name == stage) {
            *total += elapsed;
            *count += 1;
        } else {
            self.stages.push((stage.to_string(), elapsed, 1));
        }
    }

    /// Folds one evaluation's stage times into the run totals.
    pub fn absorb(&mut self, stages: &StageTimes) {
        for (name, elapsed) in stages.entries() {
            self.record(name, *elapsed);
        }
    }

    /// Counts one freshly evaluated point.
    pub fn count_evaluated(&mut self) {
        self.evaluated += 1;
    }

    /// Counts one point re-observed from a journal.
    pub fn count_replayed(&mut self) {
        self.replayed += 1;
    }

    /// Points actually evaluated (excluding journal replays).
    pub fn evaluated(&self) -> usize {
        self.evaluated
    }

    /// Points re-observed from a journal without re-evaluation.
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// Counts one point observed from the evaluation memo cache.
    pub fn count_cache_hit(&mut self) {
        self.cache_hits += 1;
    }

    /// Points served from the evaluation memo cache without dispatching
    /// an evaluation.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Counts one penalized evaluation of failure kind `kind` (quarantine
    /// hits are counted separately via
    /// [`count_quarantine_hit`](Self::count_quarantine_hit)).
    pub fn count_fault(&mut self, kind: FailureKind) {
        if let Some((_, n)) = self.faults.iter_mut().find(|(k, _)| *k == kind) {
            *n += 1;
        } else {
            self.faults.push((kind, 1));
        }
    }

    /// Counts one failed evaluation attempt (retries included).
    pub fn count_failed_attempt(&mut self) {
        self.failed_attempts += 1;
    }

    /// Counts one point penalized without evaluation because it matched
    /// the quarantine set.
    pub fn count_quarantine_hit(&mut self) {
        self.quarantine_hits += 1;
    }

    /// Counts one graceful batch degradation.
    pub fn count_degradation(&mut self) {
        self.degradations += 1;
    }

    /// Total penalized evaluations (excluding quarantine hits).
    pub fn faults_total(&self) -> usize {
        self.faults.iter().map(|(_, n)| n).sum()
    }

    /// Penalized evaluations of one failure kind.
    pub fn faults_of(&self, kind: FailureKind) -> usize {
        self.faults
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, n)| *n)
    }

    /// Failed evaluation attempts, retries included.
    pub fn failed_attempts(&self) -> usize {
        self.failed_attempts
    }

    /// Points penalized without evaluation by the quarantine set.
    pub fn quarantine_hits(&self) -> usize {
        self.quarantine_hits
    }

    /// Graceful batch degradations.
    pub fn degradations(&self) -> usize {
        self.degradations
    }

    /// Total time recorded for `stage`, if any evaluation recorded it.
    pub fn stage_total(&self, stage: &str) -> Option<Duration> {
        self.stages
            .iter()
            .find(|(name, _, _)| name == stage)
            .map(|(_, total, _)| *total)
    }

    /// Wall-clock time since the run started.
    pub fn wall(&self) -> Duration {
        self.started.elapsed()
    }

    /// A compact human-readable summary (one line per stage).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "evaluated {} point(s) ({} replayed from journal, {} memo cache hit(s)) in {:.2?}",
            self.evaluated,
            self.replayed,
            self.cache_hits,
            self.wall()
        );
        for (name, total, count) in &self.stages {
            let mean = *total / (*count).max(1) as u32;
            let _ = writeln!(
                out,
                "  {name:<12} total {total:>10.2?}  mean {mean:>9.2?}  x{count}"
            );
        }
        if self.faults_total() + self.failed_attempts + self.quarantine_hits + self.degradations > 0
        {
            let by_kind: Vec<String> = self
                .faults
                .iter()
                .map(|(k, n)| format!("{} x{n}", k.tag()))
                .collect();
            let _ = writeln!(
                out,
                "  faults: {} penalized ({}), {} failed attempt(s), \
                 {} quarantine hit(s), {} degradation(s)",
                self.faults_total(),
                if by_kind.is_empty() {
                    "none".to_string()
                } else {
                    by_kind.join(", ")
                },
                self.failed_attempts,
                self.quarantine_hits,
                self.degradations
            );
        }
        out
    }
}

/// Observer of run progress; implement to stream progress wherever you
/// need it (the CLI uses [`StderrSink`], tests use [`NullSink`] or a
/// recording sink).
pub trait ProgressSink {
    /// The run is starting.
    fn on_start(&mut self, meta: &RunMeta) {
        let _ = meta;
    }

    /// `count` journaled points were re-observed instead of re-evaluated.
    fn on_replay(&mut self, count: usize) {
        let _ = count;
    }

    /// Point `index` was evaluated to `error`; `best_error` is the
    /// incumbent after this observation.
    fn on_eval(&mut self, index: usize, error: f64, best_error: f64) {
        let _ = (index, error, best_error);
    }

    /// One evaluation attempt failed (retries may still follow).
    fn on_attempt(&mut self, attempt: &FailedAttempt) {
        let _ = attempt;
    }

    /// Point `index` was observed from the evaluation memo cache; its
    /// value came from evaluation `source`.
    fn on_cache_hit(&mut self, index: usize, source: usize) {
        let _ = (index, source);
    }

    /// Point `index` was penalized: every attempt failed, or the point
    /// matched the quarantine set.
    fn on_fault(&mut self, index: usize, fault: &FaultInfo) {
        let _ = (index, fault);
    }

    /// The executor shrank its evaluation batch from `from_k` to `to_k`
    /// after repeated consecutive failures (graceful degradation).
    fn on_degrade(&mut self, from_k: usize, to_k: usize) {
        let _ = (from_k, to_k);
    }

    /// The run finished.
    fn on_finish(&mut self, best_error: f64, telemetry: &Telemetry) {
        let _ = (best_error, telemetry);
    }
}

/// A sink that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ProgressSink for NullSink {}

/// Reports progress on stderr, one line every `every` evaluations.
#[derive(Debug, Clone)]
pub struct StderrSink {
    every: usize,
    iterations: usize,
}

impl StderrSink {
    /// Reports every `every` evaluations (clamped to at least 1).
    pub fn new(every: usize) -> Self {
        StderrSink {
            every: every.max(1),
            iterations: 0,
        }
    }
}

impl Default for StderrSink {
    fn default() -> Self {
        StderrSink::new(10)
    }
}

impl ProgressSink for StderrSink {
    fn on_start(&mut self, meta: &RunMeta) {
        self.iterations = meta.iterations;
        eprintln!(
            "run {}: {} iterations, batch {}, {} worker(s), seed {:#x}, {} dims",
            meta.label, meta.iterations, meta.batch_k, meta.workers, meta.seed, meta.dims
        );
    }

    fn on_replay(&mut self, count: usize) {
        eprintln!("resumed from journal: {count} point(s) re-observed without re-evaluation");
    }

    fn on_eval(&mut self, index: usize, error: f64, best_error: f64) {
        if (index + 1).is_multiple_of(self.every) || index + 1 == self.iterations {
            eprintln!(
                "[{:>4}/{}] error {error:.4}  best {best_error:.4}",
                index + 1,
                self.iterations
            );
        }
    }

    fn on_attempt(&mut self, attempt: &FailedAttempt) {
        eprintln!(
            "warning: evaluation {} attempt {} failed ({}): {}",
            attempt.index, attempt.attempt, attempt.kind, attempt.detail
        );
    }

    fn on_fault(&mut self, index: usize, fault: &FaultInfo) {
        eprintln!(
            "warning: evaluation {index} penalized ({}, {} retr{}): {}",
            fault.kind,
            fault.retries,
            if fault.retries == 1 { "y" } else { "ies" },
            fault.detail
        );
    }

    fn on_degrade(&mut self, from_k: usize, to_k: usize) {
        eprintln!("warning: repeated failures — shrinking evaluation batch {from_k} -> {to_k}");
    }

    fn on_finish(&mut self, best_error: f64, telemetry: &Telemetry) {
        eprint!("best error {best_error:.4}; {}", telemetry.summary());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_times_accumulate_per_stage() {
        let mut st = StageTimes::new();
        st.record("profile", Duration::from_millis(10));
        st.record("profile", Duration::from_millis(5));
        st.record("error", Duration::from_millis(1));
        assert_eq!(st.entries().len(), 2);
        assert_eq!(st.entries()[0].1, Duration::from_millis(15));
        let ms = st.to_millis();
        assert_eq!(ms[0].0, "profile");
        assert!((ms[0].1 - 15.0).abs() < 1e-9);
    }

    #[test]
    fn telemetry_aggregates_counts_and_totals() {
        let mut t = Telemetry::new();
        let mut st = StageTimes::new();
        st.record("profile", Duration::from_millis(2));
        t.absorb(&st);
        t.absorb(&st);
        t.record("suggest", Duration::from_millis(7));
        t.count_evaluated();
        t.count_replayed();
        assert_eq!(t.stage_total("profile"), Some(Duration::from_millis(4)));
        assert_eq!(t.stage_total("suggest"), Some(Duration::from_millis(7)));
        assert_eq!(t.stage_total("nope"), None);
        assert_eq!((t.evaluated(), t.replayed()), (1, 1));
        let s = t.summary();
        assert!(s.contains("profile") && s.contains("suggest"), "{s}");
    }

    #[test]
    fn time_wraps_and_records() {
        let mut st = StageTimes::new();
        let v = st.time("compute", || 21 * 2);
        assert_eq!(v, 42);
        assert_eq!(st.entries().len(), 1);
        assert_eq!(st.entries()[0].0, "compute");
    }
}
