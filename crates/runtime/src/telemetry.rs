//! Run telemetry: per-stage wall-clock timers, evaluation counters, and a
//! pluggable progress sink.
//!
//! The executor times its own `suggest` stage; evaluation callbacks
//! record their internal stages (the Datamime search records
//! `instantiate` / `profile` / `error`) into a per-evaluation
//! [`StageTimes`], which the executor folds into the run-wide
//! [`Telemetry`].

use crate::executor::RunMeta;
use crate::metrics::MetricsRegistry;
use crate::supervisor::{FailedAttempt, FailureKind, FaultInfo};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Wall-clock time of each named stage of one evaluation, in the order
/// the stages were recorded.
#[derive(Debug, Clone, Default)]
pub struct StageTimes {
    entries: Vec<(&'static str, Duration)>,
}

impl StageTimes {
    /// An empty record.
    pub fn new() -> Self {
        StageTimes::default()
    }

    /// Records that `stage` took `elapsed` (accumulates on repeats).
    pub fn record(&mut self, stage: &'static str, elapsed: Duration) {
        if let Some((_, total)) = self.entries.iter_mut().find(|(name, _)| *name == stage) {
            *total += elapsed;
        } else {
            self.entries.push((stage, elapsed));
        }
    }

    /// Runs `f`, recording its wall-clock time under `stage`.
    pub fn time<T>(&mut self, stage: &'static str, f: impl FnOnce() -> T) -> T {
        let started = Instant::now();
        let out = f();
        self.record(stage, started.elapsed());
        out
    }

    /// The recorded `(stage, duration)` pairs.
    pub fn entries(&self) -> &[(&'static str, Duration)] {
        &self.entries
    }

    /// The recorded stages as `(name, milliseconds)` pairs (the journal's
    /// `stage_ms` representation).
    pub fn to_millis(&self) -> Vec<(String, f64)> {
        self.entries
            .iter()
            .map(|(name, d)| ((*name).to_string(), d.as_secs_f64() * 1e3))
            .collect()
    }
}

/// Aggregated counters and timers for a whole run.
///
/// The counters are backed by a [`MetricsRegistry`], so every count has
/// a stable string name (`evaluated`, `replayed`, `cache_hits`,
/// `failed_attempts`, `quarantine_hits`, `degradations`, and one
/// `fault_<tag>` per [`FailureKind`]) and the whole set can be folded
/// into a long-lived stats registry via
/// [`MetricsRegistry::absorb`]. The typed accessors below are unchanged.
#[derive(Debug, Clone)]
pub struct Telemetry {
    stages: Vec<(String, Duration, u64)>,
    counters: MetricsRegistry,
    started: Instant,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

/// Registry prefix for per-failure-kind counters.
const FAULT_PREFIX: &str = "fault_";

impl Telemetry {
    /// Starts the run-wide wall clock.
    pub fn new() -> Self {
        Telemetry {
            stages: Vec::new(),
            counters: MetricsRegistry::new(),
            started: Instant::now(),
        }
    }

    /// Adds `elapsed` to `stage`'s total.
    pub fn record(&mut self, stage: &str, elapsed: Duration) {
        if let Some((_, total, count)) = self.stages.iter_mut().find(|(name, _, _)| name == stage) {
            *total += elapsed;
            *count += 1;
        } else {
            self.stages.push((stage.to_string(), elapsed, 1));
        }
    }

    /// Folds one evaluation's stage times into the run totals.
    pub fn absorb(&mut self, stages: &StageTimes) {
        for (name, elapsed) in stages.entries() {
            self.record(name, *elapsed);
        }
    }

    /// Counts one freshly evaluated point.
    pub fn count_evaluated(&mut self) {
        self.counters.incr("evaluated");
    }

    /// Counts one point re-observed from a journal.
    pub fn count_replayed(&mut self) {
        self.counters.incr("replayed");
    }

    /// Points actually evaluated (excluding journal replays).
    pub fn evaluated(&self) -> usize {
        self.counters.get("evaluated") as usize
    }

    /// Points re-observed from a journal without re-evaluation.
    pub fn replayed(&self) -> usize {
        self.counters.get("replayed") as usize
    }

    /// Counts one point observed from the evaluation memo cache.
    pub fn count_cache_hit(&mut self) {
        self.counters.incr("cache_hits");
    }

    /// Points served from the evaluation memo cache without dispatching
    /// an evaluation.
    pub fn cache_hits(&self) -> usize {
        self.counters.get("cache_hits") as usize
    }

    /// Counts one penalized evaluation of failure kind `kind` (quarantine
    /// hits are counted separately via
    /// [`count_quarantine_hit`](Self::count_quarantine_hit)).
    pub fn count_fault(&mut self, kind: FailureKind) {
        self.counters.incr(&format!("{FAULT_PREFIX}{}", kind.tag()));
    }

    /// Counts one failed evaluation attempt (retries included).
    pub fn count_failed_attempt(&mut self) {
        self.counters.incr("failed_attempts");
    }

    /// Counts one point penalized without evaluation because it matched
    /// the quarantine set.
    pub fn count_quarantine_hit(&mut self) {
        self.counters.incr("quarantine_hits");
    }

    /// Counts one graceful batch degradation.
    pub fn count_degradation(&mut self) {
        self.counters.incr("degradations");
    }

    /// Total penalized evaluations (excluding quarantine hits).
    pub fn faults_total(&self) -> usize {
        self.counters
            .snapshot()
            .iter()
            .filter(|(name, _)| name.starts_with(FAULT_PREFIX))
            .map(|(_, n)| *n as usize)
            .sum()
    }

    /// Penalized evaluations of one failure kind.
    pub fn faults_of(&self, kind: FailureKind) -> usize {
        self.counters.get(&format!("{FAULT_PREFIX}{}", kind.tag())) as usize
    }

    /// Failed evaluation attempts, retries included.
    pub fn failed_attempts(&self) -> usize {
        self.counters.get("failed_attempts") as usize
    }

    /// Points penalized without evaluation by the quarantine set.
    pub fn quarantine_hits(&self) -> usize {
        self.counters.get("quarantine_hits") as usize
    }

    /// Graceful batch degradations.
    pub fn degradations(&self) -> usize {
        self.counters.get("degradations") as usize
    }

    /// The run's counters as a registry, for folding into a long-lived
    /// stats surface (`registry.absorb(telemetry.counters())`).
    pub fn counters(&self) -> &MetricsRegistry {
        &self.counters
    }

    /// The per-stage `(name, total, count)` timer rows, in the order the
    /// stages were first recorded.
    pub fn stages(&self) -> &[(String, Duration, u64)] {
        &self.stages
    }

    /// Total time recorded for `stage`, if any evaluation recorded it.
    pub fn stage_total(&self, stage: &str) -> Option<Duration> {
        self.stages
            .iter()
            .find(|(name, _, _)| name == stage)
            .map(|(_, total, _)| *total)
    }

    /// Wall-clock time since the run started.
    pub fn wall(&self) -> Duration {
        self.started.elapsed()
    }

    /// A compact human-readable summary (one line per stage).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "evaluated {} point(s) ({} replayed from journal, {} memo cache hit(s)) in {:.2?}",
            self.evaluated(),
            self.replayed(),
            self.cache_hits(),
            self.wall()
        );
        for (name, total, count) in &self.stages {
            let mean = *total / (*count).max(1) as u32;
            let _ = writeln!(
                out,
                "  {name:<12} total {total:>10.2?}  mean {mean:>9.2?}  x{count}"
            );
        }
        if self.faults_total()
            + self.failed_attempts()
            + self.quarantine_hits()
            + self.degradations()
            > 0
        {
            let by_kind: Vec<String> = self
                .counters
                .snapshot()
                .iter()
                .filter(|(name, _)| name.starts_with(FAULT_PREFIX))
                .map(|(name, n)| format!("{} x{n}", &name[FAULT_PREFIX.len()..]))
                .collect();
            let _ = writeln!(
                out,
                "  faults: {} penalized ({}), {} failed attempt(s), \
                 {} quarantine hit(s), {} degradation(s)",
                self.faults_total(),
                if by_kind.is_empty() {
                    "none".to_string()
                } else {
                    by_kind.join(", ")
                },
                self.failed_attempts(),
                self.quarantine_hits(),
                self.degradations()
            );
        }
        out
    }
}

/// Observer of run progress; implement to stream progress wherever you
/// need it (the CLI uses [`StderrSink`], tests use [`NullSink`] or a
/// recording sink).
pub trait ProgressSink {
    /// The run is starting.
    fn on_start(&mut self, meta: &RunMeta) {
        let _ = meta;
    }

    /// `count` journaled points were re-observed instead of re-evaluated.
    fn on_replay(&mut self, count: usize) {
        let _ = count;
    }

    /// Point `index` was evaluated to `error`; `best_error` is the
    /// incumbent after this observation.
    fn on_eval(&mut self, index: usize, error: f64, best_error: f64) {
        let _ = (index, error, best_error);
    }

    /// One evaluation attempt failed (retries may still follow).
    fn on_attempt(&mut self, attempt: &FailedAttempt) {
        let _ = attempt;
    }

    /// Point `index` was observed from the evaluation memo cache; its
    /// value came from evaluation `source`.
    fn on_cache_hit(&mut self, index: usize, source: usize) {
        let _ = (index, source);
    }

    /// Point `index` was penalized: every attempt failed, or the point
    /// matched the quarantine set.
    fn on_fault(&mut self, index: usize, fault: &FaultInfo) {
        let _ = (index, fault);
    }

    /// The executor shrank its evaluation batch from `from_k` to `to_k`
    /// after repeated consecutive failures (graceful degradation).
    fn on_degrade(&mut self, from_k: usize, to_k: usize) {
        let _ = (from_k, to_k);
    }

    /// The run finished.
    fn on_finish(&mut self, best_error: f64, telemetry: &Telemetry) {
        let _ = (best_error, telemetry);
    }
}

/// A sink that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ProgressSink for NullSink {}

/// A cloneable, thread-safe handle around any [`ProgressSink`], so one
/// sink can be installed from outside an executor-owning API (the serve
/// daemon hands one to each job's search) while the caller keeps a
/// reference of its own.
#[derive(Clone)]
pub struct SharedSink(Arc<Mutex<Box<dyn ProgressSink + Send>>>);

impl SharedSink {
    /// Wraps `sink` for shared use.
    pub fn new(sink: impl ProgressSink + Send + 'static) -> Self {
        SharedSink(Arc::new(Mutex::new(Box::new(sink))))
    }

    /// Progress events never leave a sink half-updated in a way later
    /// events cannot tolerate, so a poisoned lock (a panic inside some
    /// other event) is recovered rather than propagated.
    fn lock(&self) -> MutexGuard<'_, Box<dyn ProgressSink + Send>> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedSink(..)")
    }
}

impl ProgressSink for SharedSink {
    fn on_start(&mut self, meta: &RunMeta) {
        self.lock().on_start(meta);
    }

    fn on_replay(&mut self, count: usize) {
        self.lock().on_replay(count);
    }

    fn on_eval(&mut self, index: usize, error: f64, best_error: f64) {
        self.lock().on_eval(index, error, best_error);
    }

    fn on_attempt(&mut self, attempt: &FailedAttempt) {
        self.lock().on_attempt(attempt);
    }

    fn on_cache_hit(&mut self, index: usize, source: usize) {
        self.lock().on_cache_hit(index, source);
    }

    fn on_fault(&mut self, index: usize, fault: &FaultInfo) {
        self.lock().on_fault(index, fault);
    }

    fn on_degrade(&mut self, from_k: usize, to_k: usize) {
        self.lock().on_degrade(from_k, to_k);
    }

    fn on_finish(&mut self, best_error: f64, telemetry: &Telemetry) {
        self.lock().on_finish(best_error, telemetry);
    }
}

/// Broadcasts every progress event to each attached sink, in attachment
/// order — how the CLI's stderr reporting and a metrics feed coexist on
/// one run.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Box<dyn ProgressSink>>,
}

impl FanoutSink {
    /// An empty fanout (equivalent to [`NullSink`] until sinks attach).
    pub fn new() -> Self {
        FanoutSink::default()
    }

    /// Attaches one more sink.
    pub fn push(&mut self, sink: Box<dyn ProgressSink>) {
        self.sinks.push(sink);
    }

    /// How many sinks are attached.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl ProgressSink for FanoutSink {
    fn on_start(&mut self, meta: &RunMeta) {
        for s in &mut self.sinks {
            s.on_start(meta);
        }
    }

    fn on_replay(&mut self, count: usize) {
        for s in &mut self.sinks {
            s.on_replay(count);
        }
    }

    fn on_eval(&mut self, index: usize, error: f64, best_error: f64) {
        for s in &mut self.sinks {
            s.on_eval(index, error, best_error);
        }
    }

    fn on_attempt(&mut self, attempt: &FailedAttempt) {
        for s in &mut self.sinks {
            s.on_attempt(attempt);
        }
    }

    fn on_cache_hit(&mut self, index: usize, source: usize) {
        for s in &mut self.sinks {
            s.on_cache_hit(index, source);
        }
    }

    fn on_fault(&mut self, index: usize, fault: &FaultInfo) {
        for s in &mut self.sinks {
            s.on_fault(index, fault);
        }
    }

    fn on_degrade(&mut self, from_k: usize, to_k: usize) {
        for s in &mut self.sinks {
            s.on_degrade(from_k, to_k);
        }
    }

    fn on_finish(&mut self, best_error: f64, telemetry: &Telemetry) {
        for s in &mut self.sinks {
            s.on_finish(best_error, telemetry);
        }
    }
}

/// Reports progress on stderr, one line every `every` evaluations.
#[derive(Debug, Clone)]
pub struct StderrSink {
    every: usize,
    iterations: usize,
}

impl StderrSink {
    /// Reports every `every` evaluations (clamped to at least 1).
    pub fn new(every: usize) -> Self {
        StderrSink {
            every: every.max(1),
            iterations: 0,
        }
    }
}

impl Default for StderrSink {
    fn default() -> Self {
        StderrSink::new(10)
    }
}

impl ProgressSink for StderrSink {
    fn on_start(&mut self, meta: &RunMeta) {
        self.iterations = meta.iterations;
        eprintln!(
            "run {}: {} iterations, batch {}, {} worker(s), seed {:#x}, {} dims",
            meta.label, meta.iterations, meta.batch_k, meta.workers, meta.seed, meta.dims
        );
    }

    fn on_replay(&mut self, count: usize) {
        eprintln!("resumed from journal: {count} point(s) re-observed without re-evaluation");
    }

    fn on_eval(&mut self, index: usize, error: f64, best_error: f64) {
        if (index + 1).is_multiple_of(self.every) || index + 1 == self.iterations {
            eprintln!(
                "[{:>4}/{}] error {error:.4}  best {best_error:.4}",
                index + 1,
                self.iterations
            );
        }
    }

    fn on_attempt(&mut self, attempt: &FailedAttempt) {
        eprintln!(
            "warning: evaluation {} attempt {} failed ({}): {}",
            attempt.index, attempt.attempt, attempt.kind, attempt.detail
        );
    }

    fn on_fault(&mut self, index: usize, fault: &FaultInfo) {
        eprintln!(
            "warning: evaluation {index} penalized ({}, {} retr{}): {}",
            fault.kind,
            fault.retries,
            if fault.retries == 1 { "y" } else { "ies" },
            fault.detail
        );
    }

    fn on_degrade(&mut self, from_k: usize, to_k: usize) {
        eprintln!("warning: repeated failures — shrinking evaluation batch {from_k} -> {to_k}");
    }

    fn on_finish(&mut self, best_error: f64, telemetry: &Telemetry) {
        eprint!("best error {best_error:.4}; {}", telemetry.summary());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_times_accumulate_per_stage() {
        let mut st = StageTimes::new();
        st.record("profile", Duration::from_millis(10));
        st.record("profile", Duration::from_millis(5));
        st.record("error", Duration::from_millis(1));
        assert_eq!(st.entries().len(), 2);
        assert_eq!(st.entries()[0].1, Duration::from_millis(15));
        let ms = st.to_millis();
        assert_eq!(ms[0].0, "profile");
        assert!((ms[0].1 - 15.0).abs() < 1e-9);
    }

    #[test]
    fn telemetry_aggregates_counts_and_totals() {
        let mut t = Telemetry::new();
        let mut st = StageTimes::new();
        st.record("profile", Duration::from_millis(2));
        t.absorb(&st);
        t.absorb(&st);
        t.record("suggest", Duration::from_millis(7));
        t.count_evaluated();
        t.count_replayed();
        assert_eq!(t.stage_total("profile"), Some(Duration::from_millis(4)));
        assert_eq!(t.stage_total("suggest"), Some(Duration::from_millis(7)));
        assert_eq!(t.stage_total("nope"), None);
        assert_eq!((t.evaluated(), t.replayed()), (1, 1));
        let s = t.summary();
        assert!(s.contains("profile") && s.contains("suggest"), "{s}");
    }

    #[test]
    fn time_wraps_and_records() {
        let mut st = StageTimes::new();
        let v = st.time("compute", || 21 * 2);
        assert_eq!(v, 42);
        assert_eq!(st.entries().len(), 1);
        assert_eq!(st.entries()[0].0, "compute");
    }
}
