//! datamime-runtime: the run harness under the Datamime search loop.
//!
//! Three layers, each usable on its own:
//!
//! - [`executor`] — a worker pool draining batch-`k` suggestions from any
//!   [`datamime_bayesopt::BlackBoxOptimizer`] through a bounded work
//!   queue, with seed-stable deterministic ordering;
//! - [`journal`] — an append-only JSONL run journal plus [`replay`] for
//!   crash-safe resume;
//! - [`telemetry`] — per-stage wall-clock timers, eval counters, and a
//!   pluggable [`ProgressSink`].
//!
//! The crate is std-only by necessity (the build environment has no
//! crates.io access), which is why [`json`] hand-rolls the small JSON
//! subset the journal needs.

#![warn(missing_docs)]

pub mod executor;
pub mod journal;
pub mod json;
pub mod telemetry;

pub use executor::{EvalRecord, ExecError, Executor, RunMeta, RunOutcome};
pub use journal::{replay, JournalError, JournalWriter, Replay, JOURNAL_VERSION};
pub use telemetry::{NullSink, ProgressSink, StageTimes, StderrSink, Telemetry};
