//! datamime-runtime: the run harness under the Datamime search loop.
//!
//! Five layers, each usable on its own:
//!
//! - [`executor`] — a worker pool draining batch-`k` suggestions from any
//!   [`datamime_bayesopt::BlackBoxOptimizer`] through a bounded work
//!   queue, with seed-stable deterministic ordering;
//! - [`supervisor`] — fault-tolerant evaluation: panic containment,
//!   watchdog deadlines via a cooperative [`CancelToken`], bounded retry
//!   with deterministic backoff, and penalty verdicts the executor
//!   quarantines and degrades on;
//! - [`faultinject`] — a deterministic [`FaultPlan`] that makes chosen
//!   evaluations panic, stall, or return NaN/Inf so every failure path is
//!   testable in CI (the `faultinject` cargo feature only gates extra
//!   stress tests — the module is always available);
//! - [`diskfault`] — the durability-plane counterpart: a deterministic
//!   [`DiskFaultPlan`] that makes the Nth append on a chosen write
//!   surface (manifest WAL, checkpoint, run journal, GC sweep) hit
//!   ENOSPC, tear short, fail its fsync, or abort the process at the
//!   boundary;
//! - [`journal`] — an append-only JSONL run journal plus [`replay`] for
//!   crash-safe resume, with `fault`/`attempt` events that replay
//!   failures faithfully and `cache_hit` events that replay memoized
//!   observations;
//! - [`memo`] — a deterministic evaluation memo cache keyed by the
//!   canonical bit pattern of the parameter point under a machine-config
//!   + seed fingerprint, so re-suggested points skip the simulator;
//! - [`telemetry`] — per-stage wall-clock timers, eval/fault counters,
//!   and a pluggable [`ProgressSink`];
//! - [`metrics`] — a registry of named monotonic counters/gauges with
//!   deterministic snapshot ordering, backing both [`Telemetry`] and
//!   long-lived stats surfaces (the serve daemon's admin plane);
//! - [`termsig`] — cooperative SIGTERM/SIGINT observation without
//!   `unsafe`, via a sentinel file and an optional `/bin/sh` trampoline.
//!
//! The crate is std-only by necessity (the build environment has no
//! crates.io access), which is why [`json`] hand-rolls the small JSON
//! subset the journal needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diskfault;
pub mod executor;
pub mod faultinject;
pub mod journal;
pub mod json;
pub mod memo;
pub mod metrics;
pub mod supervisor;
pub mod telemetry;
pub mod termsig;

pub use diskfault::{
    DiskFaultInjector, DiskFaultKind, DiskFaultPlan, DiskTarget, PlannedDiskFault, DISK_FAULT_ENV,
};
pub use executor::{
    Backend, BatchGate, EvalRecord, ExecError, Executor, GateClosed, GateHandle, MemoKeyFn,
    QuotaCause, RunMeta, RunOutcome,
};
pub use faultinject::{FaultPlan, InjectedFault, PlannedFault};
pub use journal::{
    replay, JournalError, JournalWriter, PendingFault, Replay, JOURNAL_VERSION,
    OLDEST_READABLE_VERSION,
};
pub use memo::{canonical_bits, fingerprint, MemoCache, MemoEntry};
pub use metrics::{MetricsRegistry, MetricsSink};
pub use supervisor::{
    retry_backoff, CancelToken, Evaluated, FailPolicy, FailedAttempt, FailureKind, FaultInfo,
    Supervisor, SupervisorConfig, Watchdog,
};
pub use telemetry::{
    FanoutSink, NullSink, ProgressSink, SharedSink, StageTimes, StderrSink, Telemetry,
};
pub use termsig::{TermSignal, NO_TRAP_ENV, TERM_SENTINEL_ENV};
