//! The crash-safe run journal: an append-only JSONL event log of one
//! search run, written with a flush per event so an interrupted process
//! loses at most the line being written — which [`replay`] tolerates.
//!
//! Event schema (one JSON object per line; see `crates/runtime/README.md`
//! for the full field reference):
//!
//! - `header` — run configuration: label, seed, dims, iterations,
//!   batch_k, workers, optimizer, format version;
//! - `eval` — one evaluated point: index, unit params, error, stage
//!   timings in milliseconds;
//! - `fault` — one *penalized* point (since version 2): index, unit
//!   params, the finite penalty observed, failure kind, detail, and
//!   retry count;
//! - `attempt` — one failed evaluation attempt (since version 2),
//!   written *before* the final verdict so a process killed mid-retry
//!   leaves evidence the resume path can penalize from;
//! - `cache_hit` — one point observed from the evaluation memo cache
//!   (since version 2): index, unit params, the memoized error, and the
//!   `source` index of the evaluation that originally produced it. Lives
//!   in the same contiguous observation stream as `eval`/`fault`;
//! - `checkpoint` — periodic best-so-far marker;
//! - `done` — final outcome.
//!
//! Resume does **not** re-run profiling for journaled points: the
//! executor re-suggests them from the (deterministic, equally-seeded)
//! optimizer and re-observes the journaled errors — including the
//! penalties of `fault` records, which therefore replay failures
//! faithfully — reconstructing the optimizer state bit-for-bit before
//! continuing with fresh evaluations.

use crate::diskfault::{DiskFaultInjector, DiskTarget};
use crate::executor::{EvalRecord, RunMeta};
use crate::json::{push_f64, push_f64_array, push_str_escaped, Json};
use crate::supervisor::{FailedAttempt, FailureKind};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Journal format version written into the header. Version 2 added the
/// `fault`, `attempt`, and `cache_hit` events; [`replay`] accepts
/// versions 1 and 2 (a v1 journal simply contains no fault or cache-hit
/// events).
pub const JOURNAL_VERSION: u64 = 2;

/// The oldest journal version [`replay`] still reads.
pub const OLDEST_READABLE_VERSION: u64 = 1;

/// Every `event` value a journal line may carry. This registry is a
/// wire surface: the audit's `wire-compat` rule locks it in
/// `audit.wire.lock`, so adding, removing, or renaming a kind without
/// bumping [`JOURNAL_VERSION`] fails CI.
pub const JOURNAL_EVENT_KINDS: [&str; 5] = ["header", "eval", "cache_hit", "fault", "attempt"];

/// A failure reading or writing a journal.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file has no parseable header line.
    BadHeader(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadHeader(why) => write!(f, "invalid journal header: {why}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Writes journal events, flushing after each so a crash can lose at most
/// a partial final line.
#[derive(Debug)]
pub struct JournalWriter {
    out: BufWriter<File>,
    /// Deterministic disk-fault injection on the append path (tests and
    /// torture harnesses only; `None` in production).
    faults: Option<DiskFaultInjector>,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path` and writes the header.
    pub fn create(path: &Path, meta: &RunMeta) -> Result<Self, JournalError> {
        let mut w = JournalWriter {
            out: BufWriter::new(File::create(path)?),
            faults: None,
        };
        let mut line = String::from("{\"event\":\"header\",\"version\":");
        push_f64(&mut line, JOURNAL_VERSION as f64);
        line.push_str(",\"label\":");
        push_str_escaped(&mut line, &meta.label);
        // The seed is written as a decimal string: JSON numbers are f64,
        // which silently corrupts u64 seeds above 2^53.
        line.push_str(",\"seed\":");
        push_str_escaped(&mut line, &meta.seed.to_string());
        line.push_str(",\"dims\":");
        push_f64(&mut line, meta.dims as f64);
        line.push_str(",\"iterations\":");
        push_f64(&mut line, meta.iterations as f64);
        line.push_str(",\"batch_k\":");
        push_f64(&mut line, meta.batch_k as f64);
        line.push_str(",\"workers\":");
        push_f64(&mut line, meta.workers as f64);
        line.push_str(",\"optimizer\":");
        push_str_escaped(&mut line, &meta.optimizer);
        line.push('}');
        w.write_line(&line)?;
        Ok(w)
    }

    /// Opens an existing journal for appending (no header is written).
    pub fn append(path: &Path) -> Result<Self, JournalError> {
        Ok(JournalWriter {
            out: BufWriter::new(OpenOptions::new().append(true).open(path)?),
            faults: None,
        })
    }

    /// Routes every subsequent append through `injector`
    /// ([`DiskTarget::Journal`] operations), so seeded ENOSPC / short
    /// write / fsync-failure / crash plans exercise the journal's failure
    /// handling deterministically.
    #[must_use]
    pub fn with_faults(mut self, injector: DiskFaultInjector) -> Self {
        self.faults = Some(injector);
        self
    }

    fn write_line(&mut self, line: &str) -> Result<(), JournalError> {
        if let Some(inj) = &self.faults {
            if let Some(kind) = inj.next(DiskTarget::Journal) {
                let mut bytes = Vec::with_capacity(line.len() + 1);
                bytes.extend_from_slice(line.as_bytes());
                bytes.push(b'\n');
                return Err(JournalError::Io(kind.corrupt_append(&mut self.out, &bytes)));
            }
        }
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        Ok(())
    }

    /// Appends one evaluated point.
    pub fn eval(&mut self, rec: &EvalRecord) -> Result<(), JournalError> {
        let mut line = String::from("{\"event\":\"eval\",\"index\":");
        push_f64(&mut line, rec.index as f64);
        line.push_str(",\"unit\":");
        push_f64_array(&mut line, &rec.unit);
        line.push_str(",\"error\":");
        push_f64(&mut line, rec.error);
        line.push_str(",\"stage_ms\":{");
        for (i, (name, ms)) in rec.stage_ms.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            push_str_escaped(&mut line, name);
            line.push(':');
            push_f64(&mut line, *ms);
        }
        line.push('}');
        push_worker(&mut line, rec.worker);
        line.push('}');
        self.write_line(&line)
    }

    /// Appends one penalized point; `rec.fault` must be set.
    ///
    /// # Panics
    ///
    /// Panics if `rec.fault` is `None` — faults are journaled through
    /// this method precisely because they carry the failure metadata.
    pub fn fault(&mut self, rec: &EvalRecord) -> Result<(), JournalError> {
        let info = rec
            .fault
            .as_ref()
            .expect("fault records must carry FaultInfo");
        let mut line = String::from("{\"event\":\"fault\",\"index\":");
        push_f64(&mut line, rec.index as f64);
        line.push_str(",\"unit\":");
        push_f64_array(&mut line, &rec.unit);
        line.push_str(",\"penalty\":");
        push_f64(&mut line, rec.error);
        line.push_str(",\"kind\":");
        push_str_escaped(&mut line, info.kind.tag());
        line.push_str(",\"detail\":");
        push_str_escaped(&mut line, &info.detail);
        line.push_str(",\"retries\":");
        push_f64(&mut line, f64::from(info.retries));
        push_worker(&mut line, rec.worker);
        line.push('}');
        self.write_line(&line)
    }

    /// Appends one memo-cache hit; `rec.cached` must be set.
    ///
    /// # Panics
    ///
    /// Panics if `rec.cached` is `None` — cache hits are journaled
    /// through this method precisely because they carry the source index.
    pub fn cache_hit(&mut self, rec: &EvalRecord) -> Result<(), JournalError> {
        let source = rec
            .cached
            .expect("cache_hit records must carry a source index");
        let mut line = String::from("{\"event\":\"cache_hit\",\"index\":");
        push_f64(&mut line, rec.index as f64);
        line.push_str(",\"unit\":");
        push_f64_array(&mut line, &rec.unit);
        line.push_str(",\"error\":");
        push_f64(&mut line, rec.error);
        line.push_str(",\"source\":");
        push_f64(&mut line, source as f64);
        push_worker(&mut line, rec.worker);
        line.push('}');
        self.write_line(&line)
    }

    /// Appends one failed evaluation attempt (retries may still follow).
    pub fn attempt(&mut self, a: &FailedAttempt) -> Result<(), JournalError> {
        let mut line = String::from("{\"event\":\"attempt\",\"index\":");
        push_f64(&mut line, a.index as f64);
        line.push_str(",\"attempt\":");
        push_f64(&mut line, f64::from(a.attempt));
        line.push_str(",\"kind\":");
        push_str_escaped(&mut line, a.kind.tag());
        line.push_str(",\"detail\":");
        push_str_escaped(&mut line, &a.detail);
        push_worker(&mut line, a.worker);
        line.push('}');
        self.write_line(&line)
    }

    /// Appends a best-so-far checkpoint after `evals` total observations.
    pub fn checkpoint(
        &mut self,
        evals: usize,
        best_error: f64,
        best_unit: &[f64],
    ) -> Result<(), JournalError> {
        let mut line = String::from("{\"event\":\"checkpoint\",\"evals\":");
        push_f64(&mut line, evals as f64);
        line.push_str(",\"best_error\":");
        push_f64(&mut line, best_error);
        line.push_str(",\"best_unit\":");
        push_f64_array(&mut line, best_unit);
        line.push('}');
        self.write_line(&line)
    }

    /// Appends the final outcome.
    pub fn done(
        &mut self,
        evals: usize,
        best_error: f64,
        best_unit: &[f64],
    ) -> Result<(), JournalError> {
        let mut line = String::from("{\"event\":\"done\",\"evals\":");
        push_f64(&mut line, evals as f64);
        line.push_str(",\"best_error\":");
        push_f64(&mut line, best_error);
        line.push_str(",\"best_unit\":");
        push_f64_array(&mut line, best_unit);
        line.push('}');
        self.write_line(&line)
    }
}

/// Appends the optional `worker` field (out-of-process runs only). The
/// field is additive — version-2 readers that predate it ignore unknown
/// fields, so JOURNAL_VERSION stays at 2.
fn push_worker(line: &mut String, worker: Option<u64>) {
    if let Some(w) = worker {
        line.push_str(",\"worker\":");
        push_f64(line, w as f64);
    }
}

/// Failed attempts journaled for a point that never got a final record —
/// the trace a mid-retry kill leaves behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingFault {
    /// Failure kind of the latest journaled attempt.
    pub kind: FailureKind,
    /// Detail of the latest journaled attempt.
    pub detail: String,
    /// Number of attempts journaled (latest attempt number + 1).
    pub attempts: u32,
}

/// The readable state of a journal file.
#[derive(Debug, Clone)]
pub struct Replay {
    /// The run configuration from the header.
    pub meta: RunMeta,
    /// Evaluated points, a contiguous index-ordered prefix of the run
    /// (penalized `fault` records included, with their `fault` set).
    pub evals: Vec<EvalRecord>,
    /// Failed attempts for points *beyond* the evaluated prefix: the
    /// journal recorded retries in flight but no final verdict. A
    /// supervised resume penalizes these points instead of re-running
    /// them.
    pub fault_attempts: BTreeMap<usize, PendingFault>,
    /// Whether a `done` event was seen (the run finished cleanly).
    pub complete: bool,
    /// Lines dropped as malformed or out-of-order (a crash mid-write
    /// leaves at most one).
    pub dropped_lines: usize,
}

/// Reads a journal back, tolerating a truncated or corrupt tail: parsing
/// stops at the first malformed or out-of-order line and everything
/// before it is kept.
pub fn replay(path: &Path) -> Result<Replay, JournalError> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines
        .next()
        .ok_or_else(|| JournalError::BadHeader("empty journal".to_string()))?;
    let header = Json::parse(header_line)
        .map_err(|e| JournalError::BadHeader(format!("unparseable first line: {e}")))?;
    let meta = parse_header(&header)?;

    let mut evals = Vec::new();
    let mut fault_attempts: BTreeMap<usize, PendingFault> = BTreeMap::new();
    let mut complete = false;
    let mut dropped_lines = 0;
    for line in lines {
        match parse_event(line, evals.len(), meta.dims) {
            Some(LineEvent::Eval(rec)) => evals.push(rec),
            Some(LineEvent::Attempt {
                index,
                attempt,
                kind,
                detail,
            }) => {
                let entry = fault_attempts.entry(index).or_insert(PendingFault {
                    kind,
                    detail: String::new(),
                    attempts: 0,
                });
                if attempt + 1 >= entry.attempts {
                    entry.kind = kind;
                    entry.detail = detail;
                    entry.attempts = attempt + 1;
                }
            }
            Some(LineEvent::Checkpoint) => {}
            Some(LineEvent::Done) => complete = true,
            None => {
                // Corrupt tail: drop this and everything after it.
                dropped_lines += 1;
                break;
            }
        }
    }
    // Attempts whose point later got a final record are resolved; only
    // in-flight ones (index beyond the prefix) matter to resume.
    fault_attempts.retain(|index, _| *index >= evals.len());
    Ok(Replay {
        meta,
        evals,
        fault_attempts,
        complete,
        dropped_lines,
    })
}

fn parse_header(v: &Json) -> Result<RunMeta, JournalError> {
    let bad = |what: &str| JournalError::BadHeader(what.to_string());
    if v.get("event").and_then(Json::as_str) != Some("header") {
        return Err(bad("first event is not a header"));
    }
    let version = v
        .get("version")
        .and_then(Json::as_usize)
        .ok_or_else(|| bad("missing version"))?;
    if !(OLDEST_READABLE_VERSION..=JOURNAL_VERSION).contains(&(version as u64)) {
        return Err(bad("unsupported journal version"));
    }
    let seed = v
        .get("seed")
        .and_then(Json::as_str)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("missing or invalid seed"))?;
    Ok(RunMeta {
        label: v
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing label"))?
            .to_string(),
        seed,
        dims: v
            .get("dims")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("missing dims"))?,
        iterations: v
            .get("iterations")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("missing iterations"))?,
        batch_k: v
            .get("batch_k")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("missing batch_k"))?,
        workers: v
            .get("workers")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("missing workers"))?,
        optimizer: v
            .get("optimizer")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing optimizer"))?
            .to_string(),
    })
}

enum LineEvent {
    Eval(EvalRecord),
    Attempt {
        index: usize,
        attempt: u32,
        kind: FailureKind,
        detail: String,
    },
    Checkpoint,
    Done,
}

/// Parses one post-header line; `None` means "corrupt from here on".
fn parse_event(line: &str, expect_index: usize, dims: usize) -> Option<LineEvent> {
    let v = Json::parse(line).ok()?;
    let parse_unit = |v: &Json| -> Option<Vec<f64>> {
        let unit: Vec<f64> = v
            .get("unit")
            .and_then(Json::as_arr)?
            .iter()
            .map(Json::as_f64)
            .collect::<Option<_>>()?;
        (unit.len() == dims).then_some(unit)
    };
    let parse_worker = |v: &Json| v.get("worker").and_then(Json::as_usize).map(|w| w as u64);
    match v.get("event").and_then(Json::as_str)? {
        "eval" => {
            let index = v.get("index").and_then(Json::as_usize)?;
            if index != expect_index {
                return None;
            }
            let unit = parse_unit(&v)?;
            let error = v.get("error").and_then(Json::as_f64)?;
            if !error.is_finite() {
                return None;
            }
            let stage_ms = match v.get("stage_ms") {
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .map(|(name, ms)| Some((name.clone(), ms.as_f64()?)))
                    .collect::<Option<_>>()?,
                _ => Vec::new(),
            };
            Some(LineEvent::Eval(EvalRecord {
                index,
                unit,
                error,
                stage_ms,
                fault: None,
                cached: None,
                worker: parse_worker(&v),
            }))
        }
        "cache_hit" => {
            // Cache hits live in the same contiguous observation stream
            // as evals — the memoized error *was* observed at this index.
            let index = v.get("index").and_then(Json::as_usize)?;
            if index != expect_index {
                return None;
            }
            let unit = parse_unit(&v)?;
            let error = v.get("error").and_then(Json::as_f64)?;
            if !error.is_finite() {
                return None;
            }
            let source = v.get("source").and_then(Json::as_usize)?;
            Some(LineEvent::Eval(EvalRecord {
                index,
                unit,
                error,
                stage_ms: Vec::new(),
                fault: None,
                cached: Some(source),
                worker: parse_worker(&v),
            }))
        }
        "fault" => {
            // Faults live in the same contiguous observation stream as
            // evals — the penalty *was* observed at this index.
            let index = v.get("index").and_then(Json::as_usize)?;
            if index != expect_index {
                return None;
            }
            let unit = parse_unit(&v)?;
            let penalty = v.get("penalty").and_then(Json::as_f64)?;
            if !penalty.is_finite() {
                return None;
            }
            let kind = FailureKind::from_tag(v.get("kind").and_then(Json::as_str)?)?;
            let detail = v.get("detail").and_then(Json::as_str)?.to_string();
            let retries = v.get("retries").and_then(Json::as_usize)?;
            Some(LineEvent::Eval(EvalRecord {
                index,
                unit,
                error: penalty,
                stage_ms: Vec::new(),
                fault: Some(crate::supervisor::FaultInfo {
                    kind,
                    detail,
                    retries: retries as u32,
                }),
                cached: None,
                worker: parse_worker(&v),
            }))
        }
        "attempt" => {
            // Attempts are not index-contiguous: a parallel batch journals
            // them as they happen, ahead of the batch's final records.
            let index = v.get("index").and_then(Json::as_usize)?;
            let attempt = v.get("attempt").and_then(Json::as_usize)? as u32;
            let kind = FailureKind::from_tag(v.get("kind").and_then(Json::as_str)?)?;
            let detail = v.get("detail").and_then(Json::as_str)?.to_string();
            Some(LineEvent::Attempt {
                index,
                attempt,
                kind,
                detail,
            })
        }
        "checkpoint" => Some(LineEvent::Checkpoint),
        "done" => Some(LineEvent::Done),
        _ => None,
    }
}
