//! From-scratch Bayesian optimization for the Datamime reproduction.
//!
//! The paper's dataset search (Sec. III-C) is a noisy, expensive,
//! black-box minimization in ≤ ~20 dimensions solved with Bayesian
//! optimization. The Rust BO ecosystem is thin, so this crate implements
//! the standard pipeline directly:
//!
//! - [`GaussianProcess`]: exact GP regression (Cholesky), standardized
//!   targets, marginal-likelihood hyperparameter fitting via multi-start
//!   Nelder–Mead ([`neldermead`]);
//! - [`Kernel`]: ARD Matérn-5/2 (default) and squared-exponential;
//! - [`acquisition`]: expected improvement and a confidence-bound
//!   alternative;
//! - [`BayesOpt`]: the suggest/observe loop with a Latin-hypercube initial
//!   design ([`latin_hypercube`]); [`RandomSearch`] as the ablation
//!   baseline, both behind [`BlackBoxOptimizer`].
//!
//! # Examples
//!
//! ```
//! use datamime_bayesopt::{BayesOpt, BlackBoxOptimizer, BoConfig};
//!
//! let mut bo = BayesOpt::new(BoConfig::for_dims(2), 7);
//! for _ in 0..25 {
//!     let x = bo.suggest();
//!     let y = (x[0] - 0.25f64).powi(2) + (x[1] - 0.75f64).powi(2);
//!     bo.observe(x, y);
//! }
//! assert!(bo.best().unwrap().1 < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquisition;
mod gp;
mod kernel;
mod linalg;
pub mod neldermead;
mod optimizer;

pub use gp::{GaussianProcess, GpError};
pub use kernel::Kernel;
pub use linalg::{Cholesky, NotPositiveDefiniteError, SquareMatrix};
pub use optimizer::{
    latin_hypercube, sanitize_objective, Acquisition, BayesOpt, BlackBoxOptimizer, BoConfig,
    RandomSearch, PENALTY_OBJECTIVE,
};
