//! The Bayesian optimization loop (and a random-search baseline).
//!
//! Datamime's search (paper Sec. III-C) is a minimization of a noisy,
//! expensive, black-box error function over a unit-normalized parameter
//! space of ≤ ~20 dimensions, run for ~200 iterations. [`BayesOpt`]
//! implements the standard recipe: Latin-hypercube initial design, a
//! Matérn-5/2 GP surrogate with periodic hyperparameter refits, and
//! expected-improvement acquisition maximized over random + local
//! candidates.

use crate::acquisition::{expected_improvement, lower_confidence_bound};
use crate::gp::GaussianProcess;
use crate::kernel::Kernel;
use datamime_stats::Rng;

/// The finite penalty observed in place of a non-finite objective.
///
/// Datamime evaluations can fail (a profiling run panics, stalls past
/// its deadline, or produces NaN/Inf error); a single such failure must
/// not poison the surrogate or abort a multi-hour search. This constant
/// is large enough that the optimizer is steered away from the failed
/// region but finite so GP fitting stays well-conditioned. It matches
/// the cap used by the constant-liar batch strategy.
pub const PENALTY_OBJECTIVE: f64 = 1e6;

/// Sanitizes a raw objective value before it enters an optimizer's
/// history: finite values pass through unchanged, while NaN and ±Inf —
/// which always indicate a failed or diverged evaluation, never a
/// genuinely good point — are clamped to [`PENALTY_OBJECTIVE`].
///
/// `-Inf` is deliberately mapped to the *penalty* (not a reward):
/// under minimization a `-Inf` observation would otherwise become the
/// permanent incumbent and pin the whole search onto a broken point.
pub fn sanitize_objective(y: f64) -> f64 {
    if y.is_finite() {
        y
    } else {
        PENALTY_OBJECTIVE
    }
}

/// Samples an `n × dims` Latin hypercube design on the unit cube: each
/// dimension is stratified into `n` equal bins with one sample per bin.
///
/// # Panics
///
/// Panics if `n == 0` or `dims == 0`.
pub fn latin_hypercube(n: usize, dims: usize, rng: &mut Rng) -> Vec<Vec<f64>> {
    assert!(n > 0 && dims > 0, "degenerate design");
    let mut design = vec![vec![0.0; dims]; n];
    let mut bins: Vec<usize> = (0..n).collect();
    for d in 0..dims {
        rng.shuffle(&mut bins);
        for (row, &bin) in design.iter_mut().zip(bins.iter()) {
            row[d] = (bin as f64 + rng.f64()) / n as f64;
        }
    }
    design
}

/// A black-box minimizer over the unit hypercube, with a
/// suggest–evaluate–observe interface.
///
/// This is object-safe so experiment code can swap optimizers for the
/// BO-vs-random ablation.
pub trait BlackBoxOptimizer {
    /// Proposes the next point to evaluate, in `[0, 1]^dims`.
    fn suggest(&mut self) -> Vec<f64>;

    /// Proposes a *batch* of `k` points for parallel evaluation.
    ///
    /// The default simply calls [`suggest`](Self::suggest) `k` times, which
    /// is correct for optimizers whose proposals do not depend on pending
    /// observations (e.g. [`RandomSearch`]). Model-based optimizers should
    /// override this with a batch strategy (see [`BayesOpt`]'s
    /// constant-liar implementation).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    fn suggest_batch(&mut self, k: usize) -> Vec<Vec<f64>> {
        assert!(k > 0, "batch must be non-empty");
        (0..k).map(|_| self.suggest()).collect()
    }

    /// Records an evaluated point.
    fn observe(&mut self, x: Vec<f64>, y: f64);

    /// The best observation so far, if any.
    fn best(&self) -> Option<(&[f64], f64)>;

    /// All observations, in evaluation order.
    fn history(&self) -> &[(Vec<f64>, f64)];
}

/// Acquisition function selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquisition {
    /// Expected improvement (the default).
    ExpectedImprovement,
    /// Lower confidence bound (for the acquisition ablation).
    LowerConfidenceBound,
}

/// Configuration of a [`BayesOpt`] run.
#[derive(Debug, Clone)]
pub struct BoConfig {
    /// Size of the Latin-hypercube initial design.
    pub init_points: usize,
    /// Number of random candidates scored by the acquisition per round.
    pub candidates: usize,
    /// Number of local (perturbation-of-best) candidates per round.
    pub local_candidates: usize,
    /// Refit GP hyperparameters every this many observations.
    pub refit_every: usize,
    /// Acquisition function.
    pub acquisition: Acquisition,
    /// Kernel family (lengthscales/variance are refit).
    pub kernel: Kernel,
    /// EI exploration margin.
    pub xi: f64,
}

impl BoConfig {
    /// A sensible default configuration for `dims` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn for_dims(dims: usize) -> Self {
        assert!(dims > 0, "need at least one dimension");
        BoConfig {
            init_points: (2 * dims).clamp(6, 20),
            candidates: 1024,
            local_candidates: 256,
            refit_every: 10,
            acquisition: Acquisition::ExpectedImprovement,
            kernel: Kernel::matern52(dims, 0.3),
            xi: 0.01,
        }
    }
}

/// Gaussian-process Bayesian optimization (minimization) on the unit cube.
///
/// # Examples
///
/// ```
/// use datamime_bayesopt::{BayesOpt, BlackBoxOptimizer, BoConfig};
///
/// // Minimize a noisy quadratic with minimum at (0.3, 0.7).
/// let mut bo = BayesOpt::new(BoConfig::for_dims(2), 1);
/// for _ in 0..30 {
///     let x = bo.suggest();
///     let y = (x[0] - 0.3f64).powi(2) + (x[1] - 0.7f64).powi(2);
///     bo.observe(x, y);
/// }
/// let (xb, yb) = bo.best().unwrap();
/// assert!(yb < 0.05, "best {yb} at {xb:?}");
/// ```
#[derive(Debug)]
pub struct BayesOpt {
    cfg: BoConfig,
    dims: usize,
    rng: Rng,
    init_design: Vec<Vec<f64>>,
    history: Vec<(Vec<f64>, f64)>,
    /// Pending constant-liar pseudo-observations from [`suggest_batch`]
    /// (one per suggested-but-not-yet-observed point). They join the real
    /// history for surrogate fitting so in-flight points repel new
    /// suggestions, and each is replaced by the matching real observation
    /// in [`observe`]. Never exposed through [`history`] or [`best`].
    ///
    /// [`suggest_batch`]: BlackBoxOptimizer::suggest_batch
    /// [`observe`]: BlackBoxOptimizer::observe
    /// [`history`]: BlackBoxOptimizer::history
    /// [`best`]: BlackBoxOptimizer::best
    fantasies: Vec<(Vec<f64>, f64)>,
    gp: Option<GaussianProcess>,
    observed_since_fit: usize,
}

impl BayesOpt {
    /// Creates an optimizer with the given configuration and seed.
    pub fn new(cfg: BoConfig, seed: u64) -> Self {
        let dims = cfg.kernel.dims();
        let mut rng = Rng::with_seed(seed);
        let mut init_design = latin_hypercube(cfg.init_points, dims, &mut rng);
        init_design.reverse(); // pop() yields the design in order
        BayesOpt {
            cfg,
            dims,
            rng,
            init_design,
            history: Vec::new(),
            fantasies: Vec::new(),
            gp: None,
            observed_since_fit: 0,
        }
    }

    /// Number of dimensions searched.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Real observations plus pending constant-liar fantasies, in order —
    /// the surrogate's training set.
    fn training_set(&self) -> impl Iterator<Item = &(Vec<f64>, f64)> {
        self.history.iter().chain(self.fantasies.iter())
    }

    fn refit(&mut self) {
        let xs: Vec<Vec<f64>> = self.training_set().map(|(x, _)| x.clone()).collect();
        let ys: Vec<f64> = self.training_set().map(|(_, y)| *y).collect();
        let need_hyper_fit = self.gp.is_none()
            || self.observed_since_fit + self.fantasies.len() >= self.cfg.refit_every;
        let gp = if need_hyper_fit {
            self.observed_since_fit = 0;
            GaussianProcess::fit_hyperparams(self.cfg.kernel.clone(), xs, ys, &mut self.rng).ok()
        } else if let Some(prev) = &self.gp {
            GaussianProcess::fit(prev.kernel().clone(), prev.noise(), xs, ys).ok()
        } else {
            None
        };
        if let Some(gp) = gp {
            self.gp = Some(gp);
        }
    }

    fn score(&self, gp: &GaussianProcess, x: &[f64], best: f64) -> f64 {
        let (mean, var) = gp.predict(x);
        match self.cfg.acquisition {
            Acquisition::ExpectedImprovement => expected_improvement(mean, var, best, self.cfg.xi),
            // LCB: lower is better, so negate to keep "higher is better".
            Acquisition::LowerConfidenceBound => -lower_confidence_bound(mean, var, 2.0),
        }
    }
}

impl BlackBoxOptimizer for BayesOpt {
    fn suggest(&mut self) -> Vec<f64> {
        // Initial design first.
        if let Some(x) = self.init_design.pop() {
            return x;
        }
        self.refit();
        let Some(gp) = &self.gp else {
            // Surrogate fit failed: fall back to random.
            return (0..self.dims).map(|_| self.rng.f64()).collect();
        };
        let (best_x, best_y) = self
            .training_set()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(x, y)| (x.clone(), *y))
            .expect("history is non-empty after the initial design");

        let mut best_cand: Option<(f64, Vec<f64>)> = None;
        let n_global = self.cfg.candidates;
        let n_local = self.cfg.local_candidates;
        for i in 0..n_global + n_local {
            let cand: Vec<f64> = if i < n_global {
                (0..self.dims).map(|_| self.rng.f64()).collect()
            } else {
                // Gaussian perturbation of the incumbent.
                best_x
                    .iter()
                    .map(|&v| {
                        let u1 = 1.0 - self.rng.f64();
                        let u2 = self.rng.f64();
                        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                        (v + 0.05 * z).clamp(0.0, 1.0)
                    })
                    .collect()
            };
            let s = self.score(gp, &cand, best_y);
            if best_cand.as_ref().is_none_or(|(bs, _)| s > *bs) {
                best_cand = Some((s, cand));
            }
        }
        best_cand.expect("at least one candidate").1
    }

    /// Proposes a batch using the constant-liar strategy: each suggested
    /// point is recorded as a pending *fantasy* observation at the
    /// incumbent value, so subsequent suggestions (in this batch and any
    /// overlapping one) spread out instead of piling onto one optimum.
    /// The matching real [`observe`](BlackBoxOptimizer::observe) call
    /// replaces each fantasy, so the real history never contains lies.
    ///
    /// The lie is the best observed value, capped at `1e6`. With an empty
    /// history the cap itself is used; the concrete value is irrelevant
    /// there because suggestions still come from the Latin-hypercube
    /// initial design, which ignores observations.
    ///
    /// This is the parallel-Bayesian-optimization extension the paper
    /// defers to future work (Sec. IV cites batch BO as the mechanism).
    fn suggest_batch(&mut self, k: usize) -> Vec<Vec<f64>> {
        assert!(k > 0, "batch must be non-empty");
        let lie = self
            .history
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::INFINITY, f64::min)
            .min(1e6);
        (0..k)
            .map(|_| {
                let x = self.suggest();
                self.fantasies.push((x.clone(), lie));
                x
            })
            .collect()
    }

    /// Records an evaluated point. Non-finite objectives are sanitized to
    /// [`PENALTY_OBJECTIVE`] (see [`sanitize_objective`]) rather than
    /// asserted on: a failed evaluation penalizes its region instead of
    /// aborting the search.
    fn observe(&mut self, x: Vec<f64>, y: f64) {
        assert_eq!(x.len(), self.dims, "observation dimension mismatch");
        let y = sanitize_objective(y);
        // A real observation supersedes its pending constant-liar fantasy.
        if let Some(pos) = self.fantasies.iter().position(|(fx, _)| fx == &x) {
            self.fantasies.remove(pos);
        }
        self.history.push((x, y));
        self.observed_since_fit += 1;
    }

    fn best(&self) -> Option<(&[f64], f64)> {
        self.history
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(x, y)| (x.as_slice(), *y))
    }

    fn history(&self) -> &[(Vec<f64>, f64)] {
        &self.history
    }
}

/// Uniform random search — the baseline the paper's optimizer is implicitly
/// compared against (and our convergence-ablation comparator).
#[derive(Debug)]
pub struct RandomSearch {
    dims: usize,
    rng: Rng,
    history: Vec<(Vec<f64>, f64)>,
}

impl RandomSearch {
    /// Creates a random searcher over `dims` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn new(dims: usize, seed: u64) -> Self {
        assert!(dims > 0, "need at least one dimension");
        RandomSearch {
            dims,
            rng: Rng::with_seed(seed),
            history: Vec::new(),
        }
    }
}

impl BlackBoxOptimizer for RandomSearch {
    fn suggest(&mut self) -> Vec<f64> {
        (0..self.dims).map(|_| self.rng.f64()).collect()
    }

    fn observe(&mut self, x: Vec<f64>, y: f64) {
        assert_eq!(x.len(), self.dims, "observation dimension mismatch");
        self.history.push((x, sanitize_objective(y)));
    }

    fn best(&self) -> Option<(&[f64], f64)> {
        self.history
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(x, y)| (x.as_slice(), *y))
    }

    fn history(&self) -> &[(Vec<f64>, f64)] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<O: BlackBoxOptimizer>(opt: &mut O, f: impl Fn(&[f64]) -> f64, iters: usize) -> f64 {
        for _ in 0..iters {
            let x = opt.suggest();
            let y = f(&x);
            opt.observe(x, y);
        }
        opt.best().unwrap().1
    }

    #[test]
    fn latin_hypercube_stratifies() {
        let mut rng = Rng::with_seed(1);
        let d = latin_hypercube(10, 2, &mut rng);
        assert_eq!(d.len(), 10);
        for dim in 0..2 {
            let mut bins = [false; 10];
            for x in &d {
                assert!((0.0..1.0).contains(&x[dim]));
                bins[(x[dim] * 10.0) as usize] = true;
            }
            assert!(bins.iter().all(|&b| b), "each bin occupied in dim {dim}");
        }
    }

    #[test]
    fn bo_finds_quadratic_minimum() {
        let f = |x: &[f64]| (x[0] - 0.6f64).powi(2) + (x[1] - 0.2f64).powi(2);
        let mut bo = BayesOpt::new(BoConfig::for_dims(2), 3);
        let best = run(&mut bo, f, 35);
        assert!(best < 0.01, "best {best}");
        let (x, _) = bo.best().unwrap();
        assert!(
            (x[0] - 0.6).abs() < 0.15 && (x[1] - 0.2).abs() < 0.15,
            "{x:?}"
        );
    }

    #[test]
    fn bo_beats_random_search_on_smooth_function() {
        // Branin-like smooth 2-D function; average over seeds.
        let f = |x: &[f64]| {
            let (a, b) = (x[0] * 3.0 - 1.0, x[1] * 3.0 - 1.0);
            (a * a + b - 1.1).powi(2) + (a + b * b - 0.7).powi(2)
        };
        let mut bo_wins = 0;
        for seed in 0..5 {
            let mut bo = BayesOpt::new(BoConfig::for_dims(2), seed);
            let mut rs = RandomSearch::new(2, seed + 100);
            let b = run(&mut bo, f, 30);
            let r = run(&mut rs, f, 30);
            if b <= r {
                bo_wins += 1;
            }
        }
        assert!(
            bo_wins >= 3,
            "BO won only {bo_wins}/5 against random search"
        );
    }

    #[test]
    fn bo_handles_noisy_objective() {
        let mut noise_rng = Rng::with_seed(77);
        let mut bo = BayesOpt::new(BoConfig::for_dims(1), 5);
        for _ in 0..30 {
            let x = bo.suggest();
            let y = (x[0] - 0.5f64).powi(2) + 0.01 * (noise_rng.f64() - 0.5);
            bo.observe(x, y);
        }
        let (x, _) = bo.best().unwrap();
        assert!((x[0] - 0.5).abs() < 0.2, "{x:?}");
    }

    #[test]
    fn bo_handles_higher_dimensions() {
        // 8-D sphere: the paper notes BO handles up to ~20 dims.
        let f = |x: &[f64]| x.iter().map(|v| (v - 0.5).powi(2)).sum::<f64>();
        let mut bo = BayesOpt::new(BoConfig::for_dims(8), 9);
        let best = run(&mut bo, f, 60);
        let mut rs = RandomSearch::new(8, 9);
        let rand_best = run(&mut rs, f, 60);
        assert!(best < rand_best, "bo {best} vs random {rand_best}");
    }

    #[test]
    fn lcb_acquisition_also_converges() {
        let mut cfg = BoConfig::for_dims(2);
        cfg.acquisition = Acquisition::LowerConfidenceBound;
        let f = |x: &[f64]| (x[0] - 0.4f64).powi(2) + (x[1] - 0.6f64).powi(2);
        let mut bo = BayesOpt::new(cfg, 11);
        let best = run(&mut bo, f, 35);
        assert!(best < 0.02, "best {best}");
    }

    #[test]
    fn suggestions_stay_in_unit_cube() {
        let mut bo = BayesOpt::new(BoConfig::for_dims(3), 13);
        for i in 0..25 {
            let x = bo.suggest();
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)), "iter {i}: {x:?}");
            bo.observe(x, (i as f64).sin().abs());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let f = |x: &[f64]| (x[0] - 0.3f64).powi(2);
        let mut a = BayesOpt::new(BoConfig::for_dims(1), 21);
        let mut b = BayesOpt::new(BoConfig::for_dims(1), 21);
        for _ in 0..15 {
            let xa = a.suggest();
            let xb = b.suggest();
            assert_eq!(xa, xb);
            a.observe(xa.clone(), f(&xa));
            b.observe(xb.clone(), f(&xb));
        }
    }

    #[test]
    fn non_finite_observations_are_sanitized_to_penalty() {
        let mut bo = BayesOpt::new(BoConfig::for_dims(1), 1);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let x = bo.suggest();
            bo.observe(x, bad);
        }
        assert_eq!(bo.history().len(), 3);
        assert!(bo.history().iter().all(|(_, y)| *y == PENALTY_OBJECTIVE));
        // -Inf must not become the incumbent: best is the finite penalty.
        assert_eq!(bo.best().unwrap().1, PENALTY_OBJECTIVE);
        // The optimizer keeps working after sanitized failures.
        let x = bo.suggest();
        assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
        bo.observe(x, 0.5);
        assert_eq!(bo.best().unwrap().1, 0.5);
    }

    #[test]
    fn sanitize_passes_finite_values_through() {
        assert_eq!(sanitize_objective(1.25), 1.25);
        assert_eq!(sanitize_objective(-3.0), -3.0);
        assert_eq!(sanitize_objective(f64::NAN), PENALTY_OBJECTIVE);
        assert_eq!(sanitize_objective(f64::INFINITY), PENALTY_OBJECTIVE);
        assert_eq!(sanitize_objective(f64::NEG_INFINITY), PENALTY_OBJECTIVE);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    #[test]
    fn batch_points_are_diverse_and_in_bounds() {
        let mut bo = BayesOpt::new(BoConfig::for_dims(2), 31);
        // Seed with some observations first.
        for _ in 0..12 {
            let x = bo.suggest();
            let y = (x[0] - 0.5f64).powi(2) + (x[1] - 0.5f64).powi(2);
            bo.observe(x, y);
        }
        let batch = bo.suggest_batch(4);
        assert_eq!(batch.len(), 4);
        for x in &batch {
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        // Constant liar must prevent identical suggestions.
        for i in 0..batch.len() {
            for j in i + 1..batch.len() {
                let d: f64 = batch[i]
                    .iter()
                    .zip(&batch[j])
                    .map(|(a, b)| (a - b).powi(2))
                    .sum::<f64>()
                    .sqrt();
                assert!(d > 1e-6, "batch points {i} and {j} identical");
            }
        }
        // History was restored (no lies left behind).
        assert_eq!(bo.history().len(), 12);
    }

    #[test]
    fn batched_optimization_still_converges() {
        let mut bo = BayesOpt::new(BoConfig::for_dims(2), 33);
        for _ in 0..10 {
            let batch = bo.suggest_batch(3);
            for x in batch {
                let y = (x[0] - 0.7f64).powi(2) + (x[1] - 0.3f64).powi(2);
                bo.observe(x, y);
            }
        }
        assert!(bo.best().unwrap().1 < 0.02, "best {}", bo.best().unwrap().1);
    }

    #[test]
    fn batch_works_during_initial_design() {
        let mut bo = BayesOpt::new(BoConfig::for_dims(3), 35);
        let batch = bo.suggest_batch(5);
        assert_eq!(batch.len(), 5);
        assert!(bo.history().is_empty());
    }

    #[test]
    #[should_panic(expected = "batch must be non-empty")]
    fn empty_batch_panics() {
        BayesOpt::new(BoConfig::for_dims(1), 1).suggest_batch(0);
    }

    #[test]
    fn observe_replaces_fantasies_so_history_has_only_real_points() {
        // Regression: constant-liar fantasies must never leak into
        // `history()` — after a full suggest_batch/observe cycle the
        // history holds exactly the real observations, with no duplicated
        // points and no leftover lies polluting later fits.
        let mut bo = BayesOpt::new(BoConfig::for_dims(2), 41);
        for _ in 0..10 {
            let x = bo.suggest();
            let y = (x[0] - 0.4f64).powi(2) + (x[1] - 0.6f64).powi(2);
            bo.observe(x, y);
        }
        for round in 0..3 {
            let batch = bo.suggest_batch(4);
            for x in batch {
                let y = (x[0] - 0.4f64).powi(2) + (x[1] - 0.6f64).powi(2);
                bo.observe(x, y);
            }
            assert_eq!(bo.history().len(), 10 + 4 * (round + 1));
        }
        // No point appears twice (a lie paired with its real observation
        // would duplicate the x vector).
        let h = bo.history();
        for i in 0..h.len() {
            for j in i + 1..h.len() {
                assert_ne!(h[i].0, h[j].0, "history entries {i} and {j} duplicated");
            }
        }
        // Lies are the incumbent value, so none may undercut the real best.
        let real_best = bo.best().unwrap().1;
        assert!(h.iter().all(|(_, y)| *y >= real_best));
    }

    #[test]
    fn pending_fantasies_repel_the_next_suggestion() {
        // While a batch is in flight, its fantasy observations must steer
        // later suggestions away from the pending points.
        let mut bo = BayesOpt::new(BoConfig::for_dims(2), 43);
        for _ in 0..12 {
            let x = bo.suggest();
            let y = (x[0] - 0.5f64).powi(2) + (x[1] - 0.5f64).powi(2);
            bo.observe(x, y);
        }
        let batch = bo.suggest_batch(3);
        let next = bo.suggest(); // fantasies still pending
        for (i, x) in batch.iter().enumerate() {
            let d: f64 = x
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(d > 1e-6, "suggestion collided with pending point {i}");
        }
    }

    #[test]
    fn default_trait_batch_matches_repeated_suggest() {
        let mut a = RandomSearch::new(3, 7);
        let mut b = RandomSearch::new(3, 7);
        let batch = a.suggest_batch(5);
        let singles: Vec<Vec<f64>> = (0..5).map(|_| b.suggest()).collect();
        assert_eq!(batch, singles);
    }
}
