//! Acquisition functions for Bayesian optimization.

/// Error function approximation (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal PDF.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (std::f64::consts::TAU).sqrt()
}

/// Expected improvement of a *minimization* objective at a point with
/// posterior `(mean, var)`, relative to the incumbent `best`.
///
/// `xi` is the exploration margin (typically `0.01`).
///
/// # Examples
///
/// ```
/// use datamime_bayesopt::acquisition::expected_improvement;
/// // A point predicted well below the incumbent with some uncertainty has
/// // high EI; one far above with no uncertainty has none.
/// assert!(expected_improvement(0.2, 0.05, 1.0, 0.01) >
///         expected_improvement(2.0, 1e-12, 1.0, 0.01));
/// ```
pub fn expected_improvement(mean: f64, var: f64, best: f64, xi: f64) -> f64 {
    let sigma = var.max(0.0).sqrt();
    let improvement = best - mean - xi;
    if sigma < 1e-12 {
        return improvement.max(0.0);
    }
    let z = improvement / sigma;
    improvement * normal_cdf(z) + sigma * normal_pdf(z)
}

/// Lower confidence bound (for minimization): `mean − beta · sigma`.
/// Lower is better; provided for the acquisition ablation.
pub fn lower_confidence_bound(mean: f64, var: f64, beta: f64) -> f64 {
    mean - beta * var.max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_properties() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!(normal_cdf(3.0) > 0.998);
        assert!(normal_cdf(-3.0) < 0.002);
    }

    #[test]
    fn ei_is_nonnegative() {
        for mean in [-1.0, 0.0, 2.0] {
            for var in [0.0, 0.1, 2.0] {
                assert!(expected_improvement(mean, var, 0.5, 0.01) >= 0.0);
            }
        }
    }

    #[test]
    fn ei_prefers_lower_mean_at_equal_variance() {
        let lo = expected_improvement(0.2, 0.1, 1.0, 0.01);
        let hi = expected_improvement(0.8, 0.1, 1.0, 0.01);
        assert!(lo > hi);
    }

    #[test]
    fn ei_values_exploration_at_equal_mean() {
        let certain = expected_improvement(1.0, 1e-6, 1.0, 0.01);
        let uncertain = expected_improvement(1.0, 1.0, 1.0, 0.01);
        assert!(uncertain > certain);
    }

    #[test]
    fn lcb_drops_with_uncertainty() {
        assert!(lower_confidence_bound(1.0, 1.0, 2.0) < lower_confidence_bound(1.0, 0.01, 2.0));
    }
}
