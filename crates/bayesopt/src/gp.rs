//! Gaussian-process regression with marginal-likelihood hyperparameter
//! fitting.

use crate::kernel::Kernel;
use crate::linalg::{dot, Cholesky, SquareMatrix};
use crate::neldermead::nelder_mead;
use datamime_stats::Rng;
use std::fmt;

/// Error returned when a GP cannot be fit.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// No observations were provided.
    NoData,
    /// Observation dimensions are inconsistent with the kernel.
    DimensionMismatch {
        /// Expected input dimension.
        expected: usize,
        /// Dimension found in the data.
        found: usize,
    },
    /// The covariance matrix was not positive definite even after jitter.
    IllConditioned,
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::NoData => write!(f, "gaussian process requires at least one observation"),
            GpError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "input dimension mismatch: expected {expected}, found {found}"
                )
            }
            GpError::IllConditioned => write!(f, "covariance matrix is ill-conditioned"),
        }
    }
}

impl std::error::Error for GpError {}

/// A fitted Gaussian-process posterior over a standardized target.
///
/// Targets are standardized internally (zero mean, unit variance), so the
/// kernel's unit signal variance is a sensible default and predictions are
/// returned on the original scale.
///
/// # Examples
///
/// ```
/// use datamime_bayesopt::{GaussianProcess, Kernel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
/// let ys = vec![0.0, 1.0, 0.0];
/// let gp = GaussianProcess::fit(Kernel::matern52(1, 0.5), 1e-6, xs, ys)?;
/// let (mean, var) = gp.predict(&[0.5]);
/// assert!((mean - 1.0).abs() < 0.05);
/// assert!(var >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    noise: f64,
    xs: Vec<Vec<f64>>,
    y_mean: f64,
    y_std: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
    lml: f64,
}

impl GaussianProcess {
    /// Fits a GP with fixed hyperparameters.
    ///
    /// # Errors
    ///
    /// Returns an error if the data is empty, dimensions mismatch, or the
    /// covariance matrix cannot be factorized even with jitter.
    pub fn fit(
        kernel: Kernel,
        noise: f64,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
    ) -> Result<Self, GpError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(GpError::NoData);
        }
        let dims = kernel.dims();
        if let Some(bad) = xs.iter().find(|x| x.len() != dims) {
            return Err(GpError::DimensionMismatch {
                expected: dims,
                found: bad.len(),
            });
        }
        let n = xs.len();
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let var = ys.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n as f64;
        let y_std = var.sqrt().max(1e-9);
        let y_norm: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();

        let mut k = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let v = kernel.eval(&xs[i], &xs[j]);
                k.set(i, j, v);
                k.set(j, i, v);
            }
        }
        k.add_diagonal(noise.max(1e-10));

        // Retry with growing jitter if needed.
        let mut jitter = 1e-10;
        let chol = loop {
            match Cholesky::new(&k) {
                Ok(c) => break c,
                Err(_) if jitter < 1e-2 => {
                    k.add_diagonal(jitter);
                    jitter *= 10.0;
                }
                Err(_) => return Err(GpError::IllConditioned),
            }
        };
        let alpha = chol.solve(&y_norm);
        // log p(y) = -0.5 yᵀ α − 0.5 log|K| − n/2 log 2π  (standardized y).
        let lml = -0.5 * dot(&y_norm, &alpha)
            - 0.5 * chol.log_determinant()
            - 0.5 * n as f64 * (std::f64::consts::TAU).ln();

        Ok(GaussianProcess {
            kernel,
            noise,
            xs,
            y_mean,
            y_std,
            chol,
            alpha,
            lml,
        })
    }

    /// Fits hyperparameters (log lengthscales, log variance, log noise) by
    /// maximizing the log marginal likelihood with multi-start Nelder–Mead,
    /// then returns the GP fit at the best parameters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GaussianProcess::fit`].
    pub fn fit_hyperparams(
        kernel_family: Kernel,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        rng: &mut Rng,
    ) -> Result<Self, GpError> {
        let dims = kernel_family.dims();
        let objective = |theta: &[f64]| -> f64 {
            // theta = [log ls_0.. log ls_d-1, log var, log noise]
            let ls: Vec<f64> = theta[..dims]
                .iter()
                .map(|t| t.exp().clamp(1e-3, 1e3))
                .collect();
            let var = theta[dims].exp().clamp(1e-4, 1e4);
            let noise = theta[dims + 1].exp().clamp(1e-8, 1.0);
            let k = kernel_family.with_params(var, ls);
            match GaussianProcess::fit(k, noise, xs.clone(), ys.clone()) {
                Ok(gp) => -gp.lml, // minimize negative LML
                Err(_) => 1e12,
            }
        };

        let mut best: Option<(f64, Vec<f64>)> = None;
        for start in 0..4 {
            let mut x0 = vec![0.0; dims + 2];
            for (d, v) in x0.iter_mut().enumerate().take(dims) {
                *v = if start == 0 {
                    (0.3f64).ln()
                } else {
                    (0.05 + rng.f64() * 1.5).ln()
                };
                let _ = d;
            }
            x0[dims] = 0.0; // log var = 0
            x0[dims + 1] = (1e-3f64).ln();
            let (xopt, fopt) = nelder_mead(&objective, &x0, 0.5, 120);
            if best.as_ref().is_none_or(|(bf, _)| fopt < *bf) {
                best = Some((fopt, xopt));
            }
        }
        let (_, theta) = best.expect("at least one start");
        let ls: Vec<f64> = theta[..dims]
            .iter()
            .map(|t| t.exp().clamp(1e-3, 1e3))
            .collect();
        let var = theta[dims].exp().clamp(1e-4, 1e4);
        let noise = theta[dims + 1].exp().clamp(1e-8, 1.0);
        GaussianProcess::fit(kernel_family.with_params(var, ls), noise, xs, ys)
    }

    /// Posterior mean and variance at `x`, on the original target scale.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.kernel.dims(), "query dimension mismatch");
        let kx: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(x, xi)).collect();
        let mean_std = dot(&kx, &self.alpha);
        let v = self.chol.solve_lower(&kx);
        let var_std = (self.kernel.variance() + self.noise - dot(&v, &v)).max(0.0);
        (
            self.y_mean + self.y_std * mean_std,
            var_std * self.y_std * self.y_std,
        )
    }

    /// Log marginal likelihood of the (standardized) observations.
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.lml
    }

    /// The fitted kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Observation noise variance.
    pub fn noise(&self) -> f64 {
        self.noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points_with_low_noise() {
        let xs = grid_1d(6);
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 6.0).sin()).collect();
        let gp =
            GaussianProcess::fit(Kernel::matern52(1, 0.3), 1e-8, xs.clone(), ys.clone()).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            assert!((m - y).abs() < 1e-3, "mean {m} vs {y}");
            assert!(v < 1e-3, "var {v}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let xs = vec![vec![0.2], vec![0.4]];
        let ys = vec![1.0, 2.0];
        let gp = GaussianProcess::fit(Kernel::matern52(1, 0.15), 1e-6, xs, ys).unwrap();
        let (_, v_near) = gp.predict(&[0.3]);
        let (_, v_far) = gp.predict(&[0.95]);
        assert!(v_far > v_near * 3.0, "far {v_far} near {v_near}");
    }

    #[test]
    fn prediction_reverts_to_prior_mean_far_away() {
        let xs = vec![vec![0.1]];
        let ys = vec![5.0];
        let gp = GaussianProcess::fit(Kernel::matern52(1, 0.05), 1e-6, xs, ys).unwrap();
        let (m, _) = gp.predict(&[0.99]);
        assert!((m - 5.0).abs() < 0.2, "reverts to the data mean, got {m}");
    }

    #[test]
    fn hyperparameter_fitting_improves_lml() {
        let mut rng = Rng::with_seed(5);
        let xs: Vec<Vec<f64>> = (0..20).map(|_| vec![rng.f64()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 12.0).sin() + 0.05).collect();
        let fixed =
            GaussianProcess::fit(Kernel::matern52(1, 5.0), 1e-2, xs.clone(), ys.clone()).unwrap();
        let fitted =
            GaussianProcess::fit_hyperparams(Kernel::matern52(1, 1.0), xs, ys, &mut rng).unwrap();
        assert!(
            fitted.log_marginal_likelihood() > fixed.log_marginal_likelihood(),
            "fitted {} vs fixed {}",
            fitted.log_marginal_likelihood(),
            fixed.log_marginal_likelihood()
        );
    }

    #[test]
    fn fitted_gp_generalizes() {
        let mut rng = Rng::with_seed(9);
        let xs: Vec<Vec<f64>> = (0..25).map(|_| vec![rng.f64()]).collect();
        let f = |x: f64| (x * 7.0).sin() * 2.0 + 1.0;
        let ys: Vec<f64> = xs.iter().map(|x| f(x[0])).collect();
        let gp =
            GaussianProcess::fit_hyperparams(Kernel::matern52(1, 1.0), xs, ys, &mut rng).unwrap();
        let mut max_err: f64 = 0.0;
        for i in 0..50 {
            let x = i as f64 / 49.0;
            let (m, _) = gp.predict(&[x]);
            max_err = max_err.max((m - f(x)).abs());
        }
        assert!(max_err < 0.5, "max interpolation error {max_err}");
    }

    #[test]
    fn noisy_duplicate_observations_are_handled() {
        // Same x with different y: only possible with a noise term.
        let xs = vec![vec![0.5], vec![0.5], vec![0.5]];
        let ys = vec![1.0, 1.2, 0.8];
        let gp = GaussianProcess::fit(Kernel::matern52(1, 0.3), 1e-2, xs, ys).unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!(
            (m - 1.0).abs() < 0.05,
            "mean of noisy observations, got {m}"
        );
    }

    #[test]
    fn empty_data_is_error() {
        assert_eq!(
            GaussianProcess::fit(Kernel::matern52(1, 0.3), 1e-6, vec![], vec![]).unwrap_err(),
            GpError::NoData
        );
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let err = GaussianProcess::fit(Kernel::matern52(2, 0.3), 1e-6, vec![vec![0.1]], vec![1.0])
            .unwrap_err();
        assert!(matches!(
            err,
            GpError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        ));
    }
}
