//! Derivative-free Nelder–Mead simplex minimization, used to fit GP
//! hyperparameters (the marginal likelihood has no cheap exact gradient in
//! this implementation).

/// Minimizes `f` starting from `x0`, returning `(argmin, min)`.
///
/// `step` sets the initial simplex size; `max_iters` bounds the number of
/// reflection/expansion/contraction steps. Standard coefficients
/// (α=1, γ=2, ρ=0.5, σ=0.5) are used.
///
/// # Panics
///
/// Panics if `x0` is empty, or `step`/`max_iters` are not positive.
pub fn nelder_mead<F>(f: &F, x0: &[f64], step: f64, max_iters: usize) -> (Vec<f64>, f64)
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!x0.is_empty(), "need at least one dimension");
    assert!(step > 0.0 && max_iters > 0, "invalid optimizer settings");
    let n = x0.len();
    // Initial simplex: x0 plus one perturbed vertex per dimension.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    simplex.push((x0.to_vec(), f(x0)));
    for d in 0..n {
        let mut x = x0.to_vec();
        x[d] += step;
        let fx = f(&x);
        simplex.push((x, fx));
    }

    for _ in 0..max_iters {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        // Converged only when both the function spread and the simplex
        // extent are tiny (a symmetric simplex can have equal f values
        // while straddling the minimum).
        let extent: f64 = (0..n)
            .map(|d| {
                let lo = simplex
                    .iter()
                    .map(|(x, _)| x[d])
                    .fold(f64::INFINITY, f64::min);
                let hi = simplex
                    .iter()
                    .map(|(x, _)| x[d])
                    .fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            })
            .fold(0.0, f64::max);
        if (worst - best).abs() < 1e-10 * (1.0 + best.abs()) && extent < 1e-8 {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &simplex[..n] {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / n as f64;
            }
        }
        let worst_x = simplex[n].0.clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst_x)
            .map(|(c, w)| c + (c - w))
            .collect();
        let fr = f(&reflect);

        if fr < simplex[0].1 {
            // Try expansion.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&worst_x)
                .map(|(c, w)| c + 2.0 * (c - w))
                .collect();
            let fe = f(&expand);
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflect, fr);
        } else {
            // Contraction.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst_x)
                .map(|(c, w)| c + 0.5 * (w - c))
                .collect();
            let fc = f(&contract);
            if fc < simplex[n].1 {
                simplex[n] = (contract, fc);
            } else {
                // Shrink toward the best vertex.
                let best_x = simplex[0].0.clone();
                for v in simplex.iter_mut().skip(1) {
                    let x: Vec<f64> = best_x
                        .iter()
                        .zip(&v.0)
                        .map(|(b, x)| b + 0.5 * (x - b))
                        .collect();
                    let fx = f(&x);
                    *v = (x, fx);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    simplex.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let (x, fx) = nelder_mead(&f, &[0.0, 0.0], 1.0, 300);
        assert!((x[0] - 3.0).abs() < 1e-3, "{x:?}");
        assert!((x[1] + 1.0).abs() < 1e-3);
        assert!(fx < 1e-6);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let (x, fx) = nelder_mead(&f, &[-1.2, 1.0], 0.5, 2000);
        assert!(fx < 1e-4, "f {fx} at {x:?}");
    }

    #[test]
    fn handles_one_dimension() {
        let f = |x: &[f64]| (x[0] - 0.25).powi(2);
        let (x, _) = nelder_mead(&f, &[5.0], 1.0, 200);
        assert!((x[0] - 0.25).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_start_panics() {
        nelder_mead(&|_: &[f64]| 0.0, &[], 1.0, 10);
    }
}
