//! Covariance kernels for Gaussian-process regression.

/// A stationary covariance kernel with ARD (per-dimension) lengthscales.
#[derive(Debug, Clone, PartialEq)]
pub enum Kernel {
    /// Matérn 5/2 — the standard choice for Bayesian optimization (twice
    /// differentiable but not unrealistically smooth).
    Matern52 {
        /// Signal variance σ².
        variance: f64,
        /// Per-dimension lengthscales.
        lengthscales: Vec<f64>,
    },
    /// Squared exponential (RBF) — very smooth; provided for the kernel
    /// ablation.
    SquaredExp {
        /// Signal variance σ².
        variance: f64,
        /// Per-dimension lengthscales.
        lengthscales: Vec<f64>,
    },
}

impl Kernel {
    /// A Matérn 5/2 kernel with unit variance and a shared lengthscale.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0` or `lengthscale <= 0`.
    pub fn matern52(dims: usize, lengthscale: f64) -> Self {
        assert!(dims > 0 && lengthscale > 0.0, "invalid kernel parameters");
        Kernel::Matern52 {
            variance: 1.0,
            lengthscales: vec![lengthscale; dims],
        }
    }

    /// A squared-exponential kernel with unit variance and a shared
    /// lengthscale.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0` or `lengthscale <= 0`.
    pub fn squared_exp(dims: usize, lengthscale: f64) -> Self {
        assert!(dims > 0 && lengthscale > 0.0, "invalid kernel parameters");
        Kernel::SquaredExp {
            variance: 1.0,
            lengthscales: vec![lengthscale; dims],
        }
    }

    /// Number of input dimensions.
    pub fn dims(&self) -> usize {
        match self {
            Kernel::Matern52 { lengthscales, .. } | Kernel::SquaredExp { lengthscales, .. } => {
                lengthscales.len()
            }
        }
    }

    /// Signal variance σ² (the prior variance at any point).
    pub fn variance(&self) -> f64 {
        match self {
            Kernel::Matern52 { variance, .. } | Kernel::SquaredExp { variance, .. } => *variance,
        }
    }

    /// Scaled distance `r² = Σ ((xᵢ − yᵢ)/ℓᵢ)²`.
    fn r2(&self, x: &[f64], y: &[f64]) -> f64 {
        let ls = match self {
            Kernel::Matern52 { lengthscales, .. } | Kernel::SquaredExp { lengthscales, .. } => {
                lengthscales
            }
        };
        debug_assert_eq!(x.len(), ls.len());
        x.iter()
            .zip(y)
            .zip(ls)
            .map(|((xi, yi), li)| {
                let d = (xi - yi) / li;
                d * d
            })
            .sum()
    }

    /// Evaluates `k(x, y)`.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        let r2 = self.r2(x, y);
        match self {
            Kernel::Matern52 { variance, .. } => {
                let r = r2.sqrt();
                let s = 5.0f64.sqrt() * r;
                variance * (1.0 + s + 5.0 * r2 / 3.0) * (-s).exp()
            }
            Kernel::SquaredExp { variance, .. } => variance * (-0.5 * r2).exp(),
        }
    }

    /// Returns a copy with new hyperparameters (same family).
    ///
    /// # Panics
    ///
    /// Panics if `lengthscales` is empty or any parameter is non-positive.
    pub fn with_params(&self, variance: f64, lengthscales: Vec<f64>) -> Kernel {
        assert!(
            variance > 0.0 && !lengthscales.is_empty(),
            "invalid parameters"
        );
        assert!(
            lengthscales.iter().all(|l| *l > 0.0),
            "lengthscales must be positive"
        );
        match self {
            Kernel::Matern52 { .. } => Kernel::Matern52 {
                variance,
                lengthscales,
            },
            Kernel::SquaredExp { .. } => Kernel::SquaredExp {
                variance,
                lengthscales,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_at_zero_distance_is_variance() {
        let x = [0.3, 0.7];
        for k in [Kernel::matern52(2, 0.5), Kernel::squared_exp(2, 0.5)] {
            assert!((k.eval(&x, &x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kernel_decays_with_distance() {
        let k = Kernel::matern52(1, 0.3);
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[0.9]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn kernel_is_symmetric() {
        let k = Kernel::matern52(3, 0.4);
        let a = [0.1, 0.5, 0.9];
        let b = [0.8, 0.2, 0.3];
        assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn ard_lengthscales_weight_dimensions() {
        let k = Kernel::Matern52 {
            variance: 1.0,
            lengthscales: vec![0.1, 10.0],
        };
        // A move along dim 0 matters; along dim 1 barely does.
        let d0 = k.eval(&[0.0, 0.0], &[0.3, 0.0]);
        let d1 = k.eval(&[0.0, 0.0], &[0.0, 0.3]);
        assert!(d0 < d1 * 0.5, "d0 {d0} d1 {d1}");
    }

    #[test]
    fn squared_exp_smoother_than_matern_at_mid_range() {
        let m = Kernel::matern52(1, 1.0);
        let s = Kernel::squared_exp(1, 1.0);
        // Same variance and lengthscale: SE stays higher at small distances.
        assert!(s.eval(&[0.0], &[0.5]) > m.eval(&[0.0], &[0.5]) - 0.05);
    }

    #[test]
    #[should_panic(expected = "lengthscales must be positive")]
    fn negative_lengthscale_panics() {
        Kernel::matern52(1, 1.0).with_params(1.0, vec![-1.0]);
    }
}
