//! Minimal dense linear algebra for Gaussian-process regression.
//!
//! Only what a GP needs: a symmetric positive-definite solve via Cholesky
//! factorization, with forward/backward triangular substitution. Matrices
//! are row-major `Vec<f64>` with explicit dimension — at the ≤ 200 × 200
//! sizes a 200-iteration Datamime search produces, this outperforms any
//! dependency it would replace.

use std::fmt;

/// A dense, row-major, square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

/// Error returned when a matrix is not positive definite (Cholesky fails).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefiniteError {
    /// Pivot index where factorization failed.
    pub pivot: usize,
}

impl fmt::Display for NotPositiveDefiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefiniteError {}

impl SquareMatrix {
    /// Creates an `n × n` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        SquareMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Adds `v` to the diagonal (jitter / noise term).
    pub fn add_diagonal(&mut self, v: f64) {
        for i in 0..self.n {
            self.data[i * self.n + i] += v;
        }
    }
}

/// The lower-triangular Cholesky factor `L` of a symmetric positive
/// definite matrix `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: SquareMatrix,
}

impl Cholesky {
    /// Factorizes `a` (reads only the lower triangle).
    ///
    /// # Errors
    ///
    /// Returns an error if `a` is not (numerically) positive definite.
    pub fn new(a: &SquareMatrix) -> Result<Self, NotPositiveDefiniteError> {
        let n = a.dim();
        let mut l = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefiniteError { pivot: i });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.l.dim()
    }

    /// Solves `L z = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, zk) in z.iter().enumerate().take(i) {
                sum -= self.l.get(i, k) * zk;
            }
            z[i] = sum / self.l.get(i, i);
        }
        z
    }

    /// Solves `Lᵀ x = z` (backward substitution).
    pub fn solve_upper(&self, z: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(z.len(), n, "rhs length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for (k, xk) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.l.get(k, i) * xk;
            }
            x[i] = sum / self.l.get(i, i);
        }
        x
    }

    /// Solves `A x = b` where `A = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// `log det A = 2 Σ log Lᵢᵢ`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&[f64]]) -> SquareMatrix {
        let n = rows.len();
        let mut m = SquareMatrix::zeros(n);
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    #[test]
    fn cholesky_of_identity() {
        let mut a = SquareMatrix::zeros(3);
        a.add_diagonal(1.0);
        let c = Cholesky::new(&a).unwrap();
        assert_eq!(c.solve(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        assert!((c.log_determinant()).abs() < 1e-12);
    }

    #[test]
    fn cholesky_known_factor() {
        // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
        let a = from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let c = Cholesky::new(&a).unwrap();
        let x = c.solve(&[8.0, 7.0]); // A x = b -> x = [1.25, 1.5]
        assert!((x[0] - 1.25).abs() < 1e-12, "{x:?}");
        assert!((x[1] - 1.5).abs() < 1e-12);
        // det A = 8.
        assert!((c.log_determinant() - 8.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_roundtrip_random_spd() {
        use datamime_stats::Rng;
        let n = 12;
        let mut rng = Rng::with_seed(3);
        // Build SPD as B Bᵀ + n I.
        let b: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.f64() - 0.5).collect())
            .collect();
        let mut a = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, dot(&b[i], &b[j]));
            }
        }
        a.add_diagonal(n as f64);
        let c = Cholesky::new(&a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let rhs: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a.get(i, j) * x_true[j]).sum())
            .collect();
        let x = c.solve(&rhs);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn non_spd_is_rejected() {
        let a = from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        SquareMatrix::zeros(0);
    }
}
