//! Property-based tests of the optimizer stack.

use datamime_bayesopt::{
    latin_hypercube, BayesOpt, BlackBoxOptimizer, BoConfig, GaussianProcess, Kernel,
};
use datamime_stats::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn latin_hypercube_always_stratified(n in 1usize..64, dims in 1usize..8, seed in any::<u64>()) {
        let mut rng = Rng::with_seed(seed);
        let d = latin_hypercube(n, dims, &mut rng);
        prop_assert_eq!(d.len(), n);
        for dim in 0..dims {
            let mut bins = vec![false; n];
            for x in &d {
                prop_assert!((0.0..1.0).contains(&x[dim]));
                bins[((x[dim] * n as f64) as usize).min(n - 1)] = true;
            }
            prop_assert!(bins.iter().all(|&b| b));
        }
    }

    #[test]
    fn gp_interpolates_and_stays_finite(
        ys in prop::collection::vec(-100.0f64..100.0, 3..12),
        probe in 0.0f64..1.0,
    ) {
        let n = ys.len();
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let gp = GaussianProcess::fit(Kernel::matern52(1, 0.2), 1e-6, xs.clone(), ys.clone()).unwrap();
        let (m, v) = gp.predict(&[probe]);
        prop_assert!(m.is_finite() && v.is_finite() && v >= 0.0);
        // Training points are reproduced closely.
        for (x, y) in xs.iter().zip(&ys) {
            let (mi, _) = gp.predict(x);
            prop_assert!((mi - y).abs() < 1e-2 * (1.0 + y.abs()), "{mi} vs {y}");
        }
    }

    #[test]
    fn gp_variance_never_exceeds_prior(
        xs_raw in prop::collection::vec(0.0f64..1.0, 2..10),
        probe in 0.0f64..1.0,
    ) {
        let xs: Vec<Vec<f64>> = xs_raw.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs_raw.iter().map(|x| x.sin()).collect();
        let kernel = Kernel::matern52(1, 0.3);
        let noise = 1e-4;
        let prior_var = kernel.variance() + noise;
        let gp = GaussianProcess::fit(kernel, noise, xs, ys).unwrap();
        let (_, v) = gp.predict(&[probe]);
        // Variance is on the standardized scale times y_std^2; compare on
        // the standardized scale by normalizing out the data variance.
        let n = xs_raw.len() as f64;
        let mean = xs_raw.iter().map(|x| x.sin()).sum::<f64>() / n;
        let y_var = xs_raw.iter().map(|x| (x.sin() - mean).powi(2)).sum::<f64>() / n;
        let y_var = y_var.max(1e-18);
        prop_assert!(v / y_var <= prior_var * 1.01 + 1e-6, "v={v} y_var={y_var}");
    }

    #[test]
    fn bo_suggestions_always_in_unit_cube(dims in 1usize..6, seed in any::<u64>()) {
        let mut bo = BayesOpt::new(BoConfig::for_dims(dims), seed);
        for i in 0..20 {
            let x = bo.suggest();
            prop_assert_eq!(x.len(), dims);
            prop_assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
            let y = x.iter().sum::<f64>() + (i as f64 * 0.37).sin();
            bo.observe(x, y);
        }
    }

    #[test]
    fn bo_best_equals_minimum_of_history(seed in any::<u64>()) {
        let mut bo = BayesOpt::new(BoConfig::for_dims(2), seed);
        for i in 0..15 {
            let x = bo.suggest();
            let y = ((i * 7919) % 13) as f64;
            bo.observe(x, y);
        }
        let best = bo.best().unwrap().1;
        let min = bo
            .history()
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::INFINITY, f64::min);
        prop_assert_eq!(best, min);
    }

    #[test]
    fn kernel_gram_diag_dominates(points in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..8)) {
        // k(x,x) >= |k(x,y)| for PSD stationary kernels with max at 0.
        let k = Kernel::matern52(2, 0.4);
        for (i, a) in points.iter().enumerate() {
            for b in points.iter().skip(i + 1) {
                let xa = [a.0, a.1];
                let xb = [b.0, b.1];
                prop_assert!(k.eval(&xa, &xa) + 1e-12 >= k.eval(&xa, &xb).abs());
            }
        }
    }
}
