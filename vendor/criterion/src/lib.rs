//! An offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides the API surface the workspace's benches use — `Criterion`,
//! `Bencher::iter` / `iter_batched`, `black_box`, `criterion_group!`,
//! `criterion_main!` — with a deliberately simple measurement loop: a
//! short warm-up, then timed iterations until either `sample_size`
//! iterations or the `measurement_time` budget is exhausted, reporting
//! mean per-iteration wall time. No statistics, plots, or baselines.

#![forbid(unsafe_code)]
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How per-iteration inputs are batched in
/// [`Bencher::iter_batched`]; the shim runs every variant identically
/// (one setup per timed iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The benchmark driver: collects named benchmark functions and times them.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Caps the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Caps the wall-clock budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; this shim warms up with a single
    /// untimed iteration regardless of the requested duration.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Times `f` under the name `id` and prints the mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            budget: self.measurement_time,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters > 0 {
            bencher.total / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        println!("{id:<40} {:>12.3?} /iter ({} iters)", mean, bencher.iters);
        self
    }
}

/// Passed to each benchmark function; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    total: Duration,
    iters: usize,
}

impl Bencher {
    /// Times `routine` (its return value is passed through [`black_box`]).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// measured.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up, untimed.
        black_box(routine(setup()));
        let started = Instant::now();
        while self.iters < self.sample_size && started.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a benchmark group: a function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("vec", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(50));
        targets = tiny_bench
    }

    #[test]
    fn group_runs() {
        benches();
    }
}
