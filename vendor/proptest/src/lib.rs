//! An offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the (small) slice of the proptest API the workspace's
//! property tests actually use: the [`proptest!`] test macro, the
//! [`Strategy`] trait with `prop_map`, range/`any`/`Just`/tuple/
//! [`collection::vec`] strategies, [`prop_oneof!`], and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! - **No shrinking.** A failing case reports the case number and the
//!   assertion message; inputs are reproducible because generation is
//!   seeded deterministically from the test's module path and name.
//! - **`prop_assume!` skips** the offending case instead of resampling.
//!
//! Neither difference weakens what the tests check — only how failures
//! are minimized and how rejected samples are replaced.

#![forbid(unsafe_code)]
use std::ops::{Range, RangeInclusive};

/// Number of generated cases when a test block carries no
/// `#![proptest_config(...)]` attribute (overridable via the
/// `PROPTEST_CASES` environment variable, like real proptest).
pub const DEFAULT_CASES: u32 = 64;

/// Per-block configuration; only the field this workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        ProptestConfig { cases }
    }
}

/// The deterministic generator behind every strategy (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator from a test's fully-qualified name so each test
    /// draws a reproducible stream independent of execution order.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of values of one type — proptest's core abstraction,
/// reduced to plain generation (no value tree, no shrinking).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy over a type's whole value domain; see [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Generates arbitrary values of `T` (the types the workspace needs).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;

    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (*self.start() as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(i32, i64, u32, u64, usize, u8, u16, i8, i16);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.f64() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

/// Strategy combinators that need names ([`prop_oneof!`] support).
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Boxes a strategy for storage in a heterogeneous list.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniformly picks one of several strategies per generated value.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "empty union strategy");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A half-open range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    /// Module alias mirroring real proptest's `prelude::prop`.
    pub use crate as prop;
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests; see the crate docs for the
/// differences from real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        // Real proptest has callers write `#[test]` themselves inside the
        // macro, so the metas are passed through verbatim rather than a
        // second `#[test]` being emitted here.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $parm = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), ::std::string::String> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(message) = outcome {
                    panic!("case {} of {}: {}", case, config.cases, message);
                }
            }
        }
    )*};
}

/// Fallible assertion: fails only the current case, with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its precondition does not hold (real
/// proptest resamples instead; see the crate docs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        let holds: bool = $cond;
        if !holds {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Uniformly selects among several strategies of one value type.
/// Weighted variants (`w => strategy`) are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (10i32..20).generate(&mut rng);
            assert!((10..20).contains(&i));
            let u = (5usize..=7).generate(&mut rng);
            assert!((5..=7).contains(&u));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::TestRng::for_test("vecs");
        for _ in 0..200 {
            let v = prop::collection::vec(0.0f64..1.0, 3..6).generate(&mut rng);
            assert!((3..6).contains(&v.len()));
        }
        let exact = prop::collection::vec(any::<u64>(), 4usize).generate(&mut rng);
        assert_eq!(exact.len(), 4);
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("same");
        let mut b = crate::TestRng::for_test("same");
        let s = (0.0f64..1.0, 0u64..100);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_roundtrip(x in 0.0f64..1.0, n in 1usize..4, v in prop::collection::vec(0u32..10, 1..5)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..4).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_eq!(v.len(), v.len());
            prop_assume!(x > 0.0);
            let choice = prop_oneof![Just(1u8), Just(2u8)].generate(&mut crate::TestRng::for_test("inner"));
            prop_assert!(choice == 1 || choice == 2);
        }
    }
}
