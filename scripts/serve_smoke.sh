#!/usr/bin/env bash
# Service-plane smoke (wired into scripts/ci.sh): start datamime-served
# on a throwaway state root, drive a short fixed-seed job through
# `datamime ctl`, assert the admin plane reports live eval and cache-hit
# counters, and drain the daemon via the admin shutdown command.
#
# Expects release binaries (scripts/ci.sh builds them first):
#   target/release/datamime-served, target/release/datamime
set -euo pipefail
cd "$(dirname "$0")/.."

SERVED=target/release/datamime-served
CTL=target/release/datamime

ROOT="$(mktemp -d "${TMPDIR:-/tmp}/datamime-serve-smoke.XXXXXX")"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$ROOT"
}
trap cleanup EXIT

# Setting the sentinel env disables the /bin/sh termination trampoline,
# so the PID we spawn is the daemon itself.
export DATAMIME_TERM_SENTINEL="$ROOT/term.sentinel"
"$SERVED" --root "$ROOT" &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  "$CTL" ctl list --root "$ROOT" >/dev/null 2>&1 && break
  sleep 0.1
done
"$CTL" ctl version --root "$ROOT" | grep -q '^datamime-served '

# Grid-quantized so re-suggested points hit the evaluation memo cache;
# enough iterations that hits actually occur.
JOB=$("$CTL" ctl submit workload=mem-fb iters=48 seed=7 curves=false grid=4 --root "$ROOT")
echo "submitted $JOB"

# The stats endpoint must show a live (nonzero) eval counter while the
# job runs, before completion.
LIVE_EVALS=0
for _ in $(seq 1 600); do
  EVALS=$("$CTL" ctl stats --root "$ROOT" | awk '$2 == "evals" { print $3 }')
  STATE=$("$CTL" ctl status "$JOB" --root "$ROOT" | sed 's/^state=\([a-z]*\).*/\1/')
  if [ "${EVALS:-0}" -gt 0 ] && [ "$STATE" = "running" ]; then
    LIVE_EVALS=$EVALS
    break
  fi
  sleep 0.1
done
[ "$LIVE_EVALS" -gt 0 ] || { echo "no live eval counter appeared"; exit 1; }
echo "live evals: $LIVE_EVALS"

"$CTL" ctl wait "$JOB" --root "$ROOT" --timeout-secs 600
"$CTL" ctl result "$JOB" --root "$ROOT"

STATS=$("$CTL" ctl stats --root "$ROOT")
echo "$STATS" | awk '$2 == "evals" && $3 > 0 { ok = 1 } END { exit !ok }' \
  || { echo "final evals counter is zero"; echo "$STATS"; exit 1; }
echo "$STATS" | awk '$2 == "cache_hits" && $3 > 0 { ok = 1 } END { exit !ok }' \
  || { echo "cache_hits counter is zero"; echo "$STATS"; exit 1; }
echo "$STATS" | awk '$2 == "jobs_completed" && $3 == 1 { ok = 1 } END { exit !ok }' \
  || { echo "jobs_completed != 1"; echo "$STATS"; exit 1; }

"$CTL" ctl shutdown --root "$ROOT"
wait "$DAEMON_PID"
DAEMON_PID=""
echo "serve smoke passed"
