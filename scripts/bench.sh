#!/usr/bin/env bash
# Simulator-kernel benchmark driver (methodology: docs/PERFORMANCE.md).
#
#   scripts/bench.sh                       # measure, write BENCH_sim.json
#   scripts/bench.sh --baseline OLD.json   # also record before/after speedups
#   scripts/bench.sh --check               # CI gate: batched-vs-scalar
#                                          # checksum cross-check, then a
#                                          # 3-rep run gated against the
#                                          # committed BENCH_sim.json —
#                                          # fails on checksum drift OR a
#                                          # >1.6x median regression
#
# Measurements use fixed seeds and report median + IQR ns/op; each kernel
# also emits a counter checksum, and --baseline fails if a checksum moved
# (the optimization changed behaviour, not just speed). A fig10-style
# memo-cache accounting run (memo_fig10, from datamime-experiments) is
# embedded in the report under "memo_fig10".
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_sim.json
ARGS=()
CHECK=0
while [ $# -gt 0 ]; do
  case "$1" in
    --check) CHECK=1 ;;
    --baseline) ARGS+=(--baseline "$2"); shift ;;
    -o) OUT="$2"; shift ;;
    *) echo "bench.sh: unknown argument $1" >&2; exit 2 ;;
  esac
  shift
done

echo "==> cargo build --release -p datamime-bench -p datamime-experiments"
cargo build --release -q -p datamime-bench --bin bench_sim \
  -p datamime-experiments --bin memo_fig10

if [ "$CHECK" = 1 ]; then
  target/release/memo_fig10 --check -o /dev/null
  # Behaviour gate: every batched kernel must fingerprint identically to
  # its scalar RefCache/RefTlb twin.
  target/release/bench_sim --cross-check
  # Speed gate: 3 reps per kernel against the committed baseline (or the
  # one passed via --baseline). bench_sim exits nonzero on checksum drift
  # or on any median beyond the documented regression threshold.
  if [ ${#ARGS[@]} -eq 0 ]; then
    ARGS=(--baseline BENCH_sim.json)
  fi
  exec target/release/bench_sim --check --reps 3 "${ARGS[@]}"
fi

MEMO_JSON="$(mktemp)"
trap 'rm -f "$MEMO_JSON"' EXIT
target/release/memo_fig10 -o "$MEMO_JSON"
exec target/release/bench_sim -o "$OUT" --memo-json "$MEMO_JSON" "${ARGS[@]}"
