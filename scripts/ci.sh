#!/usr/bin/env bash
# Local CI: the tier-1 gate (ROADMAP.md) plus formatting and lints.
#
#   scripts/ci.sh            # run everything
#   SKIP_TESTS=1 scripts/ci.sh   # lints/format only
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

# Formatting and lints first: they fail fast and never depend on a
# release build. Both components can be absent on minimal toolchains,
# in which case they are skipped with a notice rather than failing CI.
if cargo fmt --version >/dev/null 2>&1; then
  run cargo fmt --all --check
else
  echo "==> cargo fmt not installed; skipping format check"
fi

if cargo clippy --version >/dev/null 2>&1; then
  run cargo clippy --workspace --all-targets -- -D warnings
else
  echo "==> cargo clippy not installed; skipping lints"
fi

# Static-analysis gate: determinism, panic-safety, lock-order, layering,
# and unsafe-forbidden invariants (policy in audit.toml, tool in
# crates/audit). Runs before the tests — it is fast and its findings
# usually explain any downstream flakiness.
run cargo run -q -p datamime-audit -- check

# Public-API docs must build warning-free (broken intra-doc links,
# missing docs on public items, invalid doc examples).
echo "==> RUSTDOCFLAGS=\"-D warnings\" cargo doc --workspace --no-deps -q"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# Tier-1 gate.
if [ -z "${SKIP_TESTS:-}" ]; then
  run cargo build --release
  run cargo test -q
  # Fault-injection stress pass: the supervisor must keep runs
  # deterministic and crash-free under injected panics/stalls/NaNs.
  run cargo test -q -p datamime-runtime --features faultinject
  # Benchmark-harness smoke: every sim kernel runs once and fingerprints
  # deterministically, and the memo accounting harness completes.
  run scripts/bench.sh --check
  # Multi-process smoke: a short fig10-style search on the process
  # backend (--backend proc --workers 2, each evaluation in its own
  # datamime-worker OS process) must be checksum-identical to the
  # in-process thread backend.
  run cargo build --release -q -p datamime-experiments --bin dist_smoke
  echo "==> DATAMIME_WORKER=target/release/datamime-worker target/release/dist_smoke --check"
  DATAMIME_WORKER=target/release/datamime-worker target/release/dist_smoke --check
  # Service-plane smoke: a short fixed-seed job submitted to
  # datamime-served through `datamime ctl` must complete, the admin
  # plane must report live eval/cache-hit counters, and the daemon must
  # drain cleanly on the admin shutdown command.
  run cargo build --release -q -p datamime-serve
  run scripts/serve_smoke.sh
  # Durability torture pass: the crash matrix aborts the daemon at every
  # WAL append/rotation/checkpoint/GC boundary and requires bit-identical
  # recovery; the ENOSPC cell requires a graceful read-only drain. The
  # process-backend cells exec datamime-worker, so build it first.
  run cargo build -q -p datamime --bin datamime-worker
  run cargo test -q -p datamime-serve --features faultinject
fi

echo "==> CI passed"
