#!/usr/bin/env bash
# Local CI: the tier-1 gate (ROADMAP.md) plus formatting and lints.
#
#   scripts/ci.sh            # run everything
#   SKIP_TESTS=1 scripts/ci.sh   # lints/format only
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

# Formatting and lints first: they fail fast and never depend on a
# release build. Both components can be absent on minimal toolchains,
# in which case they are skipped with a notice rather than failing CI.
if cargo fmt --version >/dev/null 2>&1; then
  run cargo fmt --all --check
else
  echo "==> cargo fmt not installed; skipping format check"
fi

if cargo clippy --version >/dev/null 2>&1; then
  run cargo clippy --workspace --all-targets -- -D warnings
else
  echo "==> cargo clippy not installed; skipping lints"
fi

# Static-analysis gate: nine rule families — nondet-taint, panic-safety,
# lock-order, layering, unsafe-forbidden, durability-protocol,
# swallowed-result, blocking-in-lock, and wire-compat (policy in
# audit.toml + audit.wire.lock, tool in crates/audit). Runs before the
# tests — it is fast and its findings usually explain any downstream
# flakiness. The fixture suite proves each rule still trips on its
# violating mini-workspace and stays quiet on the clean twin.
run cargo test -q -p datamime-audit --test audit
# Two passes so the log shows the facts cache working: the first may be
# cold, the second must report (nearly) full hits and a small wall time
# in its summary line.
run cargo run -q -p datamime-audit -- check
run cargo run -q -p datamime-audit -- check

# The machine-readable report is a contract (docs/audit.schema.json);
# validate it with the stdlib-only checker when python3 is around.
if command -v python3 >/dev/null 2>&1; then
  echo "==> datamime-audit check --format=json | check_audit_json.py"
  cargo run -q -p datamime-audit -- check --format=json \
    | python3 scripts/check_audit_json.py docs/audit.schema.json
else
  echo "==> python3 not installed; skipping audit json schema validation"
fi

# Public-API docs must build warning-free (broken intra-doc links,
# missing docs on public items, invalid doc examples).
echo "==> RUSTDOCFLAGS=\"-D warnings\" cargo doc --workspace --no-deps -q"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# Tier-1 gate.
if [ -z "${SKIP_TESTS:-}" ]; then
  run cargo build --release
  run cargo test -q
  # Fault-injection stress pass: the supervisor must keep runs
  # deterministic and crash-free under injected panics/stalls/NaNs.
  run cargo test -q -p datamime-runtime --features faultinject
  # bench_smoke: the benchmark-harness gate. Runs the batched-vs-scalar
  # checksum cross-check (every sim/<k> kernel must fingerprint
  # identically to its scalar/<k> RefCache/RefTlb twin), then a short
  # gated measurement against the committed BENCH_sim.json that fails on
  # checksum drift or a median regression beyond the documented
  # threshold (docs/PERFORMANCE.md). The memo accounting harness runs
  # its own smoke first.
  echo "==> bench_smoke"
  run scripts/bench.sh --check
  # Multi-process smoke: a short fig10-style search on the process
  # backend (--backend proc --workers 2, each evaluation in its own
  # datamime-worker OS process) must be checksum-identical to the
  # in-process thread backend.
  run cargo build --release -q -p datamime-experiments --bin dist_smoke
  echo "==> DATAMIME_WORKER=target/release/datamime-worker target/release/dist_smoke --check"
  DATAMIME_WORKER=target/release/datamime-worker target/release/dist_smoke --check
  # Service-plane smoke: a short fixed-seed job submitted to
  # datamime-served through `datamime ctl` must complete, the admin
  # plane must report live eval/cache-hit counters, and the daemon must
  # drain cleanly on the admin shutdown command.
  run cargo build --release -q -p datamime-serve
  run scripts/serve_smoke.sh
  # Durability torture pass: the crash matrix aborts the daemon at every
  # WAL append/rotation/checkpoint/GC boundary and requires bit-identical
  # recovery; the ENOSPC cell requires a graceful read-only drain. The
  # process-backend cells exec datamime-worker, so build it first.
  run cargo build -q -p datamime --bin datamime-worker
  run cargo test -q -p datamime-serve --features faultinject
fi

echo "==> CI passed"
