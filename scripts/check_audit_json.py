#!/usr/bin/env python3
"""Validates `datamime-audit check --format=json` output against
docs/audit.schema.json using only the standard library.

Usage: check_audit_json.py SCHEMA_FILE [REPORT_FILE]

Reads the report from REPORT_FILE, or stdin when omitted. Exits 0 when
the report conforms, 1 with one line per problem when it does not, and
2 on unreadable input. Implements the JSON-Schema subset the checked-in
schema actually uses (type, required, properties, additionalProperties,
items, enum, minimum, minLength) so CI needs no third-party packages.
"""

import json
import sys

TYPES = {
    "array": list,
    "object": dict,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def validate(value, schema, path, problems):
    expected = schema.get("type")
    if expected is not None:
        py = TYPES[expected]
        ok = isinstance(value, py) and not (
            expected in ("integer", "number") and isinstance(value, bool)
        )
        if not ok:
            problems.append(f"{path}: expected {expected}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        problems.append(f"{path}: {value!r} is not one of {schema['enum']}")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            problems.append(f"{path}: {value} is below minimum {schema['minimum']}")
    if isinstance(value, str) and "minLength" in schema:
        if len(value) < schema["minLength"]:
            problems.append(f"{path}: shorter than minLength {schema['minLength']}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", problems)
    if isinstance(value, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in value:
                problems.append(f"{path}: missing required key {key!r}")
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in props:
                    problems.append(f"{path}: unexpected key {key!r}")
        for key, sub in props.items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", problems)


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as f:
            schema = json.load(f)
    except (OSError, ValueError) as e:
        print(f"cannot load schema {argv[1]}: {e}", file=sys.stderr)
        return 2
    try:
        if len(argv) == 3:
            with open(argv[2], encoding="utf-8") as f:
                report = json.load(f)
        else:
            report = json.load(sys.stdin)
    except (OSError, ValueError) as e:
        print(f"cannot load report: {e}", file=sys.stderr)
        return 2
    problems = []
    validate(report, schema, "$", problems)
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        return 1
    print(f"audit json ok ({len(report)} diagnostic(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
