//! Clone the `xapian` search-engine target workload, demonstrating a
//! generator whose parameters shape *structured* data (Sec. III-B): query
//! skew, a term-frequency cap, and the average document length.
//!
//! Run with `cargo run --release --example search_engine_clone`.
//! Set `DATAMIME_ITERS` to change the search length (default 30).

use datamime::error_model::{profile_error, MetricWeights};
use datamime::generator::{DatasetGenerator, XapianGenerator};
use datamime::metrics::{CurveMetric, DistMetric};
use datamime::profiler::profile_workload;
use datamime::search::{search, SearchConfig};
use datamime::workload::Workload;

fn main() {
    let iters: usize = std::env::var("DATAMIME_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let cfg = SearchConfig::fast(iters);

    let target = Workload::xapian_wiki();
    println!(
        "profiling `{}` (Wikipedia-like index, Zipfian queries) ...",
        target.name
    );
    let target_profile = profile_workload(&target, &cfg.machine, &cfg.profiling);

    let generator = XapianGenerator::new();
    println!(
        "searching the StackOverflow-corpus generator ({} params) for {iters} iterations ...",
        generator.dims()
    );
    let outcome = search(&generator, &target_profile, &cfg);

    println!(
        "\nbest error {:.4}; synthesized dataset:",
        outcome.best_error
    );
    for (name, value) in generator.describe(&outcome.best_unit_params) {
        println!("  {name:>16} = {value:.3}");
    }

    let breakdown = profile_error(
        &target_profile,
        &outcome.best_profile,
        &MetricWeights::equal(),
    );
    println!("\nper-metric normalized EMD: {}", breakdown.summary());

    println!("\n{:>14}  {:>8}  {:>9}", "metric", "target", "datamime");
    for m in [
        DistMetric::Ipc,
        DistMetric::L1dMpki,
        DistMetric::LlcMpki,
        DistMetric::BranchMpki,
    ] {
        println!(
            "{:>14}  {:>8.3}  {:>9.3}",
            m.key(),
            target_profile.mean(m),
            outcome.best_profile.mean(m)
        );
    }

    // Cache-sensitivity curves (the Fig. 7 comparison for xapian).
    let t_curve = target_profile.curve_values(CurveMetric::LlcMpkiCurve);
    let b_curve = outcome.best_profile.curve_values(CurveMetric::LlcMpkiCurve);
    if !t_curve.is_empty() {
        println!("\nLLC MPKI vs cache size (target / datamime):");
        for ((p, t), b) in target_profile.curve().iter().zip(&t_curve).zip(&b_curve) {
            println!("  {:>3} MB: {t:.2} / {b:.2}", p.cache_bytes >> 20);
        }
    }
}
