//! Clone a production-like memcached workload (`mem-fb`) and validate the
//! result across microarchitectures, reproducing the paper's headline
//! Fig. 1 experiment end to end:
//!
//! 1. profile the target on Broadwell;
//! 2. run the Datamime search;
//! 3. re-profile target and benchmark on Zen 2 to check that the match
//!    carries across machines;
//! 4. print the comparison next to the unrepresentative public dataset.
//!
//! Run with `cargo run --release --example memcached_clone`.
//! Set `DATAMIME_ITERS` to raise the search length (default 40).

use datamime::generator::{DatasetGenerator, KvGenerator};
use datamime::metrics::DistMetric;
use datamime::profiler::profile_workload;
use datamime::search::{search, SearchConfig};
use datamime::workload::Workload;
use datamime_sim::MachineConfig;

fn main() {
    let iters: usize = std::env::var("DATAMIME_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let cfg = SearchConfig::fast(iters);

    let target = Workload::mem_fb();
    let public = Workload::mem_public();

    println!("== step 1: profile the production target on broadwell ==");
    let target_profile = profile_workload(&target, &cfg.machine, &cfg.profiling);
    let public_profile = profile_workload(&public, &cfg.machine, &cfg.profiling);

    println!("== step 2: datamime search ({iters} iterations) ==");
    let generator = KvGenerator::new();
    let outcome = search(&generator, &target_profile, &cfg);
    println!("best error {:.4}; parameters:", outcome.best_error);
    for (name, value) in generator.describe(&outcome.best_unit_params) {
        println!("  {name:>18} = {value:.2}");
    }

    println!("\n== step 3: cross-microarchitecture validation on zen2 ==");
    let zen2 = MachineConfig::zen2();
    let target_zen2 = profile_workload(&target, &zen2, &cfg.profiling);
    let bench_zen2 = profile_workload(&outcome.best_workload, &zen2, &cfg.profiling);

    println!("\n== results (cf. paper Fig. 1) ==");
    println!(
        "{:>24}  {:>8}  {:>8}  {:>9}",
        "metric", "target", "public", "datamime"
    );
    for m in [DistMetric::Ipc, DistMetric::ICacheMpki, DistMetric::LlcMpki] {
        println!(
            "{:>24}  {:>8.3}  {:>8.3}  {:>9.3}",
            format!("broadwell {}", m.key()),
            target_profile.mean(m),
            public_profile.mean(m),
            outcome.best_profile.mean(m)
        );
    }
    println!(
        "{:>24}  {:>8.3}  {:>8}  {:>9.3}",
        "zen2 ipc",
        target_zen2.mean(DistMetric::Ipc),
        "-",
        bench_zen2.mean(DistMetric::Ipc)
    );

    let ipc_err =
        (outcome.best_profile.mean(DistMetric::Ipc) - target_profile.mean(DistMetric::Ipc)).abs()
            / target_profile.mean(DistMetric::Ipc);
    println!("\nIPC relative error on broadwell: {:.1}%", ipc_err * 100.0);
}
