//! The Sec. V-C case study: clone a workload **with a different program**.
//!
//! The target is `masstree` (a cache-crafted key-value store we do not
//! have a generator for); Datamime uses the *memcached* program and its
//! dataset generator instead, because the two are functionally similar.
//! The paper shows this matches end-to-end metrics (IPC, LLC MPKI) even
//! though code-bound metrics (ICache, branches) cannot match.
//!
//! Run with `cargo run --release --example cross_program`.
//! Set `DATAMIME_ITERS` to change the search length (default 30).

use datamime::generator::{DatasetGenerator, KvGenerator};
use datamime::metrics::DistMetric;
use datamime::profiler::profile_workload;
use datamime::search::{search, SearchConfig};
use datamime::workload::Workload;

fn main() {
    let iters: usize = std::env::var("DATAMIME_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let cfg = SearchConfig::fast(iters);

    let target = Workload::masstree_ycsb();
    println!(
        "profiling target `{}` (program: {}) ...",
        target.name,
        target.app.program()
    );
    let target_profile = profile_workload(&target, &cfg.machine, &cfg.profiling);

    // Deliberate program mismatch: clone masstree with memcached.
    let generator = KvGenerator::new();
    println!(
        "cloning with program `{}` ({iters} iterations) ...",
        generator.name()
    );
    let outcome = search(&generator, &target_profile, &cfg);

    println!("\nbest error {:.4}", outcome.best_error);
    println!(
        "{:>16}  {:>10}  {:>22}",
        "metric", "masstree", "datamime w/ memcached"
    );
    for m in [
        DistMetric::Ipc,
        DistMetric::LlcMpki,
        DistMetric::CpuUtilization,
        DistMetric::BranchMpki,
        DistMetric::ICacheMpki,
        DistMetric::L1dMpki,
        DistMetric::MemoryBandwidth,
    ] {
        println!(
            "{:>16}  {:>10.3}  {:>22.3}",
            m.key(),
            target_profile.mean(m),
            outcome.best_profile.mean(m)
        );
    }
    println!(
        "\nAs in Table IV: end-to-end metrics (IPC, LLC MPKI, utilization) track the\n\
         target, while code-bound metrics (ICache, branch MPKI) reflect memcached's\n\
         code rather than masstree's — the expected limit of cross-program cloning."
    );
}
