//! Quickstart: synthesize a dataset that makes memcached mimic a
//! production-like target workload.
//!
//! Run with `cargo run --release --example quickstart`. This is a scaled
//! down search (few iterations, fast profiling) that finishes in well
//! under a minute; see `memcached_clone.rs` for a full-fidelity run.

use datamime::generator::{DatasetGenerator, KvGenerator};
use datamime::metrics::DistMetric;
use datamime::profiler::profile_workload;
use datamime::search::{search, SearchConfig};
use datamime::workload::Workload;

fn main() {
    // 1. The "production" workload: memcached with a Facebook-like dataset
    //    (Gaussian keys, generalized-Pareto values, 97% GETs).
    let target = Workload::mem_fb();
    let cfg = SearchConfig::fast(20);

    println!(
        "profiling target `{}` on {} ...",
        target.name, cfg.machine.name
    );
    let target_profile = profile_workload(&target, &cfg.machine, &cfg.profiling);
    println!("  target: {}", target_profile.summary());

    // 2. Search the memcached dataset-generator space (Table III: QPS,
    //    GET/SET ratio, key/value size distributions) for a synthetic
    //    dataset whose profile matches.
    let generator = KvGenerator::new();
    println!(
        "searching {} dataset parameters for {} iterations ...",
        generator.dims(),
        cfg.iterations
    );
    let outcome = search(&generator, &target_profile, &cfg);

    println!("  best total EMD error: {:.4}", outcome.best_error);
    println!("  synthesized dataset parameters:");
    for (name, value) in generator.describe(&outcome.best_unit_params) {
        println!("    {name:>18} = {value:.2}");
    }

    // 3. Compare the headline metrics.
    println!("\n{:>16}  {:>8}  {:>9}", "metric", "target", "datamime");
    for m in [
        DistMetric::Ipc,
        DistMetric::ICacheMpki,
        DistMetric::LlcMpki,
        DistMetric::BranchMpki,
        DistMetric::CpuUtilization,
    ] {
        println!(
            "{:>16}  {:>8.3}  {:>9.3}",
            m.key(),
            target_profile.mean(m),
            outcome.best_profile.mean(m)
        );
    }
}
